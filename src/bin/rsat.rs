//! `rsat` — register-saturation command-line tool.
//!
//! ```text
//! rsat analyze  <file.ddg> [--type float|int|branch] [--exact] [--ilp] [--stats] [--threads N]
//! rsat reduce   <file.ddg> --registers N [--type T] [--spill] [--output out.ddg]
//! rsat pipeline <file.ddg> --registers N [--issue 1|4|8]
//! rsat corpus   <dir> [--jobs N] [--mode analyze|reduce|pipeline] [--registers N] [--out dir]
//! rsat dot      <file.ddg>
//! ```
//!
//! `--threads N` runs the exact solvers (`--exact` combinatorial search,
//! `--ilp` intLP branch-and-bound) with `N` parallel workers; the reported
//! saturations are identical for every thread count. `--stats` prints the
//! branch-and-bound solve statistics of each `--ilp` run (nodes, LP
//! solves, incremental dive-tableau solves and hits with the dive basis
//! reinstall count — zero on the incremental engine — pseudocost branch
//! and strong-branching-probe counts, simplex pivots and bound flips, and
//! the relaxation tableau shape).
//!
//! `corpus` walks a directory of `.ddg` files with `--jobs` scoped-thread
//! workers (each with its own warm analysis engine), prints a per-file
//! summary, and writes `corpus.json`/`corpus.txt` under `--out` (default
//! `results/`). Malformed files are reported in the summary and skipped —
//! they do not abort the run or fail the exit code. The summary content is
//! identical for every `--jobs` value.
//!
//! The input format is documented in `rs_core::parse`. Examples live in
//! `examples/data/*.ddg`.

use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::{Ddg, RegType};
use rs_core::parse::{parse_ddg, print_ddg};
use rs_core::reduce::{ReduceOutcome, Reducer};
use rs_core::spill::SpillPass;
use rs_sched::{ListScheduler, RegisterAllocator, Resources};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("rsat: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  rsat analyze  <file.ddg> [--type float|int|branch] [--exact] [--ilp] [--stats] [--threads N]"
            );
            eprintln!(
                "  rsat reduce   <file.ddg> --registers N [--type T] [--spill] [--output out.ddg]"
            );
            eprintln!("  rsat pipeline <file.ddg> --registers N [--issue 1|4|8]");
            eprintln!(
                "  rsat corpus   <dir> [--jobs N] [--mode analyze|reduce|pipeline] [--registers N] [--out dir]"
            );
            eprintln!("  rsat dot      <file.ddg>");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    if cmd == "corpus" {
        return corpus(args);
    }
    let file = args.get(1).ok_or("missing input file")?;
    let input = std::fs::read_to_string(file).map_err(|e| format!("cannot read {file}: {e}"))?;
    let ddg = parse_ddg(&input).map_err(|e| format!("{file}: {e}"))?;

    let reg_type = flag_value(args, "--type")
        .map(|s| match s.as_str() {
            "int" => Ok(RegType::INT),
            "float" => Ok(RegType::FLOAT),
            "branch" => Ok(RegType::BRANCH),
            other => Err(format!("unknown register type `{other}`")),
        })
        .transpose()?;

    let threads = match flag_value(args, "--threads") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| "bad --threads value".to_string())?
            .max(1),
        None => 1,
    };

    match cmd.as_str() {
        "analyze" => analyze(
            &ddg,
            reg_type,
            args.iter().any(|a| a == "--exact"),
            args.iter().any(|a| a == "--ilp"),
            args.iter().any(|a| a == "--stats"),
            threads,
        ),
        "reduce" => reduce(
            ddg,
            reg_type,
            parse_registers(args)?,
            args.iter().any(|a| a == "--spill"),
            flag_value(args, "--output"),
        ),
        "pipeline" => pipeline(
            ddg,
            reg_type,
            parse_registers(args)?,
            flag_value(args, "--issue"),
        ),
        "dot" => {
            println!("{}", ddg.to_dot("ddg", &[]));
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// `rsat corpus <dir>`: the parallel corpus driver of `rs-bench`, with the
/// report plumbing the experiment binaries use. A malformed `.ddg` is
/// reported in the summary and skipped; only driver-level failures
/// (unreadable directory, no corpus files, bad flags) fail the command.
fn corpus(args: &[String]) -> Result<(), String> {
    use rs_bench::corpus::{render_text, run_corpus, CorpusMode, CorpusOptions};

    let dir = args.get(1).ok_or("missing corpus directory")?;
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| "bad --jobs value".to_string())?
            .max(1),
        None => 1,
    };
    let registers = match flag_value(args, "--registers") {
        Some(_) => Some(parse_registers(args)?),
        None => None,
    };
    let mode = match flag_value(args, "--mode").as_deref() {
        None | Some("analyze") => CorpusMode::Analyze,
        Some("reduce") => CorpusMode::Reduce {
            registers: registers.ok_or("--mode reduce requires --registers N")?,
        },
        Some("pipeline") => CorpusMode::Pipeline {
            registers: registers.ok_or("--mode pipeline requires --registers N")?,
        },
        Some(other) => return Err(format!("unknown corpus mode `{other}`")),
    };
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| "results".to_string());

    let summary = run_corpus(std::path::Path::new(dir), &CorpusOptions { jobs, mode })?;
    let text = render_text(&summary);
    print!("{text}");
    rs_bench::common::write_report(std::path::Path::new(&out_dir), "corpus", &text, &summary);
    println!(
        "summary written to {}",
        std::path::Path::new(&out_dir).join("corpus.json").display()
    );
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn parse_registers(args: &[String]) -> Result<usize, String> {
    let n: usize = flag_value(args, "--registers")
        .ok_or("missing --registers N")?
        .parse()
        .map_err(|_| "bad --registers value".to_string())?;
    if n == 0 {
        return Err("--registers must be at least 1".to_string());
    }
    Ok(n)
}

fn types_to_analyse(ddg: &Ddg, requested: Option<RegType>) -> Vec<RegType> {
    match requested {
        Some(t) => vec![t],
        None => ddg.reg_types(),
    }
}

fn analyze(
    ddg: &Ddg,
    reg_type: Option<RegType>,
    exact: bool,
    ilp: bool,
    stats: bool,
    threads: usize,
) -> Result<(), String> {
    println!(
        "{} operations (incl. ⊥), {} edges, critical path {}",
        ddg.num_ops(),
        ddg.graph().edge_count(),
        ddg.critical_path()
    );
    for t in types_to_analyse(ddg, reg_type) {
        let h = GreedyK::new().saturation(ddg, t);
        print!(
            "type {:?}: {} values, RS* = {}",
            t,
            ddg.values(t).len(),
            h.saturation
        );
        if exact {
            let e = ExactRs::with_threads(threads).saturation(ddg, t);
            print!(
                ", exact RS = {}{}",
                e.saturation,
                if e.proven_optimal {
                    ""
                } else {
                    " (budget-limited)"
                }
            );
        }
        let mut ilp_stats = None;
        if ilp {
            match RsIlp::with_threads(threads).saturation(ddg, t) {
                Ok(r) => {
                    print!(
                        ", intLP RS = {}{}",
                        r.saturation,
                        if r.proven_optimal {
                            ""
                        } else {
                            " (budget-limited)"
                        }
                    );
                    ilp_stats = Some(r.milp_stats);
                }
                Err(e) => print!(", intLP failed: {e}"),
            }
        }
        println!();
        if let (true, Some(st)) = (stats, ilp_stats) {
            println!(
                "  intLP stats: {} nodes, {} LP solves ({} warm dives, {} warm hits, \
                 {} dive reinstalls), {} pseudocost branches, {} strong-branch probes, \
                 {} pivots, {} bound flips, tableau {}x{}",
                st.nodes,
                st.lp_solves,
                st.warm_solves,
                st.warm_hits,
                st.dive_reinstalls,
                st.pseudocost_branches,
                st.strong_branch_probes,
                st.pivots,
                st.bound_flips,
                st.rows,
                st.cols
            );
        }
        let names: Vec<String> = h
            .saturating_values
            .iter()
            .map(|&v| ddg.graph().node(v).name.clone())
            .collect();
        println!("  saturating values: {}", names.join(", "));
    }
    Ok(())
}

fn reduce(
    mut ddg: Ddg,
    reg_type: Option<RegType>,
    registers: usize,
    spill: bool,
    output: Option<String>,
) -> Result<(), String> {
    for t in types_to_analyse(&ddg.clone(), reg_type) {
        let out = Reducer::new().reduce(&mut ddg, t, registers);
        match &out {
            ReduceOutcome::AlreadyFits { rs } => {
                println!("type {t:?}: RS = {rs} ≤ {registers}, untouched")
            }
            ReduceOutcome::Reduced {
                rs_before,
                rs_after,
                added_arcs,
                cp_before,
                cp_after,
                ..
            } => println!(
                "type {t:?}: RS {rs_before} -> {rs_after} (+{} arcs, critical path {cp_before} -> {cp_after})",
                added_arcs.len()
            ),
            ReduceOutcome::Failed { rs_before, .. } => {
                if spill {
                    match SpillPass::new().spill_to_fit(&ddg, t, registers) {
                        Some(res) => {
                            println!(
                                "type {t:?}: RS {rs_before} needed spilling: {:?} spilled, final RS = {}",
                                res.spilled_values, res.rs_after
                            );
                            ddg = res.ddg;
                        }
                        None => {
                            return Err(format!(
                                "type {t:?}: cannot reach {registers} registers even with spilling"
                            ))
                        }
                    }
                } else {
                    return Err(format!(
                        "type {t:?}: cannot reduce RS {rs_before} to {registers} by serialization \
                         (try --spill)"
                    ));
                }
            }
        }
    }
    if let Some(path) = output {
        std::fs::write(&path, print_ddg(&ddg)).map_err(|e| format!("cannot write {path}: {e}"))?;
        println!("modified DDG written to {path}");
    }
    Ok(())
}

fn pipeline(
    mut ddg: Ddg,
    reg_type: Option<RegType>,
    registers: usize,
    issue: Option<String>,
) -> Result<(), String> {
    let resources = match issue.as_deref() {
        None | Some("4") => Resources::four_issue(),
        Some("1") => Resources::single_issue(),
        Some("8") => Resources::wide_issue(),
        Some(other) => return Err(format!("unknown issue width `{other}`")),
    };
    let types = types_to_analyse(&ddg, reg_type);
    for &t in &types {
        let out = Reducer::new().reduce(&mut ddg, t, registers);
        if !out.fits() {
            return Err(format!(
                "type {t:?}: budget {registers} infeasible without spilling"
            ));
        }
    }
    let sched = ListScheduler::new(resources).schedule(&ddg);
    println!("schedule makespan: {}", sched.makespan);
    for &t in &types {
        let alloc = RegisterAllocator::new().allocate(&ddg, t, &sched.sigma, registers);
        println!(
            "type {:?}: {} registers used, {} spills",
            t,
            alloc.registers_used,
            alloc.spilled.len()
        );
    }
    Ok(())
}
