//! `rsat` — register-saturation command-line tool.
//!
//! ```text
//! rsat analyze  <file.ddg> [--type float|int|branch] [--exact] [--ilp] [--stats] [--threads N] [--timeout-ms N] [--audit]
//! rsat reduce   <file.ddg> --registers N [--type T] [--spill] [--output out.ddg] [--timeout-ms N]
//! rsat pipeline <file.ddg> --registers N [--issue 1|4|8] [--timeout-ms N]
//! rsat corpus   <dir> [--jobs N] [--mode analyze|reduce|pipeline] [--registers N] [--ilp] [--out dir]
//!               [--timeout-ms N] [--retries N] [--resume PATH] [--faults SPEC]
//! rsat serve    [--workers N] [--queue N] [--cache-capacity N] [--socket PATH] [--grace-ms N]
//!               [--faults SPEC]
//! rsat dot      <file.ddg>
//! rsat lint     [--root DIR] [--out FILE] [--deny] [--list-rules] [--quiet]
//! ```
//!
//! Every subcommand except `dot` speaks the shared request/response schema
//! of [`rs_core::request`]: flags are folded into one [`RsRequest`], executed
//! by the same [`rs_serve::Dispatcher`] that powers `rsat serve` and
//! `rsat corpus`, and the [`rs_core::request::RsResponse`] is rendered for
//! humans here. Errors carry the unified `{code, message}` shape and print
//! as `rsat: error[code]: message`.
//!
//! `--threads N` runs the exact solvers (`--exact` combinatorial search,
//! `--ilp` intLP branch-and-bound) with `N` parallel workers; the reported
//! saturations are identical for every thread count. `--stats` prints the
//! branch-and-bound solve statistics of each `--ilp` run (nodes, LP
//! solves, incremental dive-tableau solves and hits with the dive basis
//! reinstall count — zero on the incremental engine — pseudocost branch
//! and strong-branching-probe counts, simplex pivots with the
//! steepest-edge share, bound flips, cutting planes added with the root
//! round count, propagation fathoms, and the relaxation tableau shape).
//!
//! `corpus` walks a directory of `.ddg` files with `--jobs` scoped-thread
//! workers (each a warm dispatcher), prints a per-file summary, and writes
//! `corpus.json`/`corpus.txt` under `--out` (default `results/`). Malformed
//! files are reported in the summary and skipped — they do not abort the
//! run or fail the exit code. The summary content is identical for every
//! `--jobs` value. `--ilp` adds the exact intLP saturation per file; with
//! `--timeout-ms N --retries K`, a timed-out intLP *resumes* from its
//! checkpoint on the next attempt instead of restarting. `--resume PATH`
//! keeps an atomically-rewritten run checkpoint so a killed corpus run,
//! rerun with the same flag, skips the files it already completed.
//!
//! `serve` is the persistent daemon: newline-delimited JSON requests on
//! stdin (or a Unix socket with `--socket`), one response line per request
//! in request order, warm engines across requests, and a content-keyed
//! memoization cache shared by all workers. A malformed line answers
//! `ok:false` and the daemon keeps serving. Run statistics go to stderr at
//! shutdown (EOF).
//!
//! `--audit` forces the solver's pre-solve static audit on (it defaults to
//! on in debug builds only): models, cut pools, and resume checkpoints are
//! statically checked before any search, and incoherent ones are rejected
//! with a typed `request` error instead of corrupting a solve. `--stats`
//! reports whether a solve was audited.
//!
//! `lint` runs the workspace static-analysis pass (`rs-lint`) over the
//! repository: determinism and soundness rules (no hash-ordered iteration
//! in search code, no wall-clock near committed state, no raw float
//! equality on solver values, no panics on serve request paths, …) with
//! findings written to `results/lint.json`.
//!
//! The input format is documented in `rs_core::parse`. Examples live in
//! `examples/data/*.ddg`.

#![forbid(unsafe_code)]

use rs_core::parse::parse_ddg;
use rs_core::request::{codes, RsError, RsOp, RsRequest, RsResult};
use rs_serve::{serve_io, Dispatcher, FaultPlan, ServeConfig, UnixServer};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rsat: error[{}]: {}", e.code, e.message);
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  rsat analyze  <file.ddg> [--type float|int|branch] [--exact] [--ilp] [--stats] [--threads N] [--timeout-ms N]"
            );
            eprintln!(
                "  rsat reduce   <file.ddg> --registers N [--type T] [--spill] [--output out.ddg] [--timeout-ms N]"
            );
            eprintln!("  rsat pipeline <file.ddg> --registers N [--issue 1|4|8] [--timeout-ms N]");
            eprintln!(
                "  rsat corpus   <dir> [--jobs N] [--mode analyze|reduce|pipeline] [--registers N] [--ilp] [--out dir] [--timeout-ms N] [--retries N] [--resume PATH] [--faults SPEC]"
            );
            eprintln!(
                "  rsat serve    [--workers N] [--queue N] [--cache-capacity N] [--socket PATH] [--grace-ms N] [--faults SPEC]"
            );
            eprintln!("  rsat dot      <file.ddg>");
            eprintln!(
                "  rsat lint     [--root DIR] [--out FILE] [--deny] [--list-rules] [--quiet]"
            );
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), RsError> {
    let cmd = args
        .first()
        .ok_or_else(|| RsError::usage("missing command"))?;
    match cmd.as_str() {
        "analyze" | "reduce" | "pipeline" => one_shot(cmd, args),
        "corpus" => corpus(args),
        "serve" => serve(args),
        "dot" => dot(args),
        "lint" => lint(args),
        other => Err(RsError::usage(format!("unknown command `{other}`"))),
    }
}

/// Runs one `analyze`/`reduce`/`pipeline` invocation through the service
/// dispatch path: flags → [`RsRequest`] → [`Dispatcher`] → rendered
/// response.
fn one_shot(cmd: &str, args: &[String]) -> Result<(), RsError> {
    let file = args
        .get(1)
        .ok_or_else(|| RsError::usage("missing input file"))?;
    let input = std::fs::read_to_string(file)
        .map_err(|e| RsError::new(codes::IO, format!("cannot read {file}: {e}")))?;
    let req = build_request(cmd, input, args)?;
    let resp = Dispatcher::new().dispatch(&req);
    // A timeout response is a degradation, not a failure: it still
    // carries the best partial result, which gets rendered normally
    // (with interruption markers) plus a warning on stderr.
    let timed_out = match (resp.ok, &resp.error) {
        (false, Some(e)) if e.code == codes::TIMEOUT => resp.error.clone(),
        _ => None,
    };
    let result = match (resp.ok || timed_out.is_some(), resp.result) {
        (true, Some(result)) => result,
        _ => {
            let mut e = resp
                .error
                .unwrap_or_else(|| RsError::new(codes::ENGINE, "missing error detail"));
            if e.code == codes::PARSE {
                e.message = format!("{file}: {}", e.message);
            }
            return Err(e);
        }
    };
    let interrupted = timed_out.is_some();
    match req.op {
        RsOp::Analyze => render_analyze(&req, &result),
        RsOp::Reduce => render_reduce(&req, &result, flag_value(args, "--output"), interrupted)?,
        RsOp::Pipeline => render_pipeline(&req, &result, interrupted)?,
    }
    if let Some(e) = timed_out {
        eprintln!("rsat: warning[{}]: {}", e.code, e.message);
    }
    Ok(())
}

/// Folds the one-shot subcommand flags into a service request. The same
/// parameter validation ([`RsRequest::validate`]) applies to CLI runs and
/// daemon requests alike.
fn build_request(cmd: &str, ddg: String, args: &[String]) -> Result<RsRequest, RsError> {
    let op = RsOp::from_name(cmd).expect("caller routes known subcommands");
    let mut req = RsRequest::new(op, ddg);
    req.cache = false; // one-shot process: nothing to warm
    req.reg_type = flag_value(args, "--type");
    req.threads = match flag_value(args, "--threads") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --threads value"))?
            .max(1),
        None => 1,
    };
    req.registers = match flag_value(args, "--registers") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| RsError::usage("bad --registers value"))?,
        ),
        None => None,
    };
    req.issue = match flag_value(args, "--issue") {
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| RsError::usage(format!("unknown issue width `{v}`")))?,
        ),
        None => None,
    };
    req.exact = args.iter().any(|a| a == "--exact");
    req.ilp = args.iter().any(|a| a == "--ilp");
    req.stats = args.iter().any(|a| a == "--stats");
    req.spill = args.iter().any(|a| a == "--spill");
    req.emit_ddg = op == RsOp::Reduce && flag_value(args, "--output").is_some();
    req.timeout_ms = parse_timeout_ms(args)?;
    if args.iter().any(|a| a == "--audit") {
        req.audit = Some(true);
    }
    Ok(req)
}

fn parse_timeout_ms(args: &[String]) -> Result<Option<u64>, RsError> {
    match flag_value(args, "--timeout-ms") {
        Some(v) => Ok(Some(
            v.parse::<u64>()
                .map_err(|_| RsError::usage("bad --timeout-ms value"))?,
        )),
        None => Ok(None),
    }
}

fn render_analyze(req: &RsRequest, result: &RsResult) {
    println!(
        "{} operations (incl. ⊥), {} edges, critical path {}",
        result.ops, result.edges, result.critical_path
    );
    for tr in &result.types {
        let t = &tr.reg_type;
        print!("type {t}: {} values, RS* = {}", tr.values, tr.saturation);
        if let Some(e) = &tr.exact {
            print!(", exact RS = {}{}", e.saturation, solve_qualifier(e));
        }
        if let Some(i) = &tr.ilp {
            print!(", intLP RS = {}{}", i.saturation, solve_qualifier(i));
        }
        if let Some(e) = &tr.ilp_error {
            if e.code == codes::TIMEOUT {
                print!(", intLP interrupted: {}", e.message);
            } else {
                print!(", intLP failed: {e}");
            }
        }
        println!();
        if let (true, Some(st)) = (req.stats, &tr.ilp_stats) {
            println!(
                "  intLP stats: {} nodes, {} LP solves ({} warm dives, {} warm hits, \
                 {} dive reinstalls), {} pseudocost branches, {} strong-branch probes, \
                 {} pivots ({} steepest-edge), {} bound flips, {} cuts in {} rounds, \
                 {} propagation fathoms, tableau {}x{}, trace digest {:016x}",
                st.nodes,
                st.lp_solves,
                st.warm_solves,
                st.warm_hits,
                st.dive_reinstalls,
                st.pseudocost_branches,
                st.strong_branch_probes,
                st.pivots,
                st.dse_pivots,
                st.bound_flips,
                st.cuts_added,
                st.cut_rounds,
                st.propagation_fathoms,
                st.rows,
                st.cols,
                st.trace_digest
            );
            if st.audited {
                println!("  intLP audit: model, cut pool, and resume state statically checked");
            }
        }
        println!("  saturating values: {}", tr.saturating.join(", "));
    }
}

/// How an exact-flavour solver result is qualified: nothing when proven,
/// otherwise "not proven optimal" with the solver's upper bound bracketing
/// the true saturation.
fn solve_qualifier(s: &rs_core::request::SolveResult) -> String {
    if s.proven_optimal {
        return String::new();
    }
    match s.bound {
        Some(b) => format!(" (not proven optimal; true RS ≤ {b})"),
        None => " (not proven optimal)".to_string(),
    }
}

fn render_reduce(
    req: &RsRequest,
    result: &RsResult,
    output: Option<String>,
    interrupted: bool,
) -> Result<(), RsError> {
    let registers = req.registers.expect("validated");
    for tr in &result.types {
        let t = &tr.reg_type;
        let r = tr.reduce.as_ref().expect("reduce op reports reduction");
        if !r.fits && interrupted {
            // The deadline cut the reduction short; the partial state
            // (arcs added so far) is still worth reporting.
            println!(
                "type {t}: interrupted at RS {} -> {} (+{} arcs) before meeting budget {registers}",
                tr.saturation, r.rs_after, r.arcs_added
            );
            continue;
        }
        if !r.fits {
            // Batch clients see `fits: false`; the interactive CLI makes an
            // unmet budget fatal, as before.
            let message = if req.spill {
                format!("type {t}: cannot reach {registers} registers even with spilling")
            } else {
                format!(
                    "type {t}: cannot reduce RS {} to {registers} by serialization (try --spill)",
                    tr.saturation
                )
            };
            return Err(RsError::new(codes::INFEASIBLE, message));
        }
        if !r.spilled.is_empty() {
            println!(
                "type {t}: RS {} needed spilling: {:?} spilled, final RS = {}",
                tr.saturation, r.spilled, r.rs_after
            );
        } else if r.arcs_added == 0 {
            println!("type {t}: RS = {} ≤ {registers}, untouched", r.rs_after);
        } else {
            println!(
                "type {t}: RS {} -> {} (+{} arcs, critical path {} -> {})",
                tr.saturation, r.rs_after, r.arcs_added, r.cp_before, r.cp_after
            );
        }
    }
    if let Some(path) = output {
        let text = result.ddg_out.as_ref().expect("emit_ddg was requested");
        std::fs::write(&path, text)
            .map_err(|e| RsError::new(codes::IO, format!("cannot write {path}: {e}")))?;
        println!("modified DDG written to {path}");
    }
    Ok(())
}

fn render_pipeline(req: &RsRequest, result: &RsResult, interrupted: bool) -> Result<(), RsError> {
    let registers = req.registers.expect("validated");
    for tr in &result.types {
        let fits = tr.reduce.as_ref().is_some_and(|r| r.fits);
        if !fits && interrupted {
            println!(
                "type {}: interrupted before meeting budget {registers}; no schedule",
                tr.reg_type
            );
            return Ok(());
        }
        if !fits {
            return Err(RsError::new(
                codes::INFEASIBLE,
                format!(
                    "type {}: budget {registers} infeasible without spilling",
                    tr.reg_type
                ),
            ));
        }
    }
    let makespan = result.makespan.expect("all budgets fit");
    println!("schedule makespan: {makespan}");
    for tr in &result.types {
        let a = tr.alloc.expect("pipeline allocates when budgets fit");
        println!(
            "type {}: {} registers used, {} spills",
            tr.reg_type, a.registers_used, a.spills
        );
    }
    Ok(())
}

/// `rsat corpus <dir>`: the parallel corpus driver of `rs-bench` — a batch
/// client of the same dispatch path — with the report plumbing the
/// experiment binaries use. A malformed `.ddg` is reported in the summary
/// and skipped; only driver-level failures (unreadable directory, no corpus
/// files, bad flags) fail the command.
fn corpus(args: &[String]) -> Result<(), RsError> {
    use rs_bench::corpus::{render_text, run_corpus, CorpusMode, CorpusOptions};

    let dir = args
        .get(1)
        .ok_or_else(|| RsError::usage("missing corpus directory"))?;
    let jobs = match flag_value(args, "--jobs") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --jobs value"))?
            .max(1),
        None => 1,
    };
    let registers = match flag_value(args, "--registers") {
        Some(v) => Some(
            v.parse::<usize>()
                .map_err(|_| RsError::usage("bad --registers value"))?,
        ),
        None => None,
    };
    let mode = match flag_value(args, "--mode").as_deref() {
        None | Some("analyze") => CorpusMode::Analyze,
        Some("reduce") => CorpusMode::Reduce {
            registers: registers
                .ok_or_else(|| RsError::usage("--mode reduce requires --registers N"))?,
        },
        Some("pipeline") => CorpusMode::Pipeline {
            registers: registers
                .ok_or_else(|| RsError::usage("--mode pipeline requires --registers N"))?,
        },
        Some(other) => return Err(RsError::usage(format!("unknown corpus mode `{other}`"))),
    };
    let out_dir = flag_value(args, "--out").unwrap_or_else(|| "results".to_string());
    let timeout_ms = parse_timeout_ms(args)?;
    let retries = match flag_value(args, "--retries") {
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --retries value"))?,
        None => 0,
    };
    let ilp = args.iter().any(|a| a == "--ilp");
    let resume_path = flag_value(args, "--resume").map(std::path::PathBuf::from);
    let faults = parse_faults(args)?;

    let summary = run_corpus(
        std::path::Path::new(dir),
        &CorpusOptions {
            jobs,
            mode,
            timeout_ms,
            retries,
            ilp,
            resume_path,
            faults,
        },
    )?;
    let text = render_text(&summary);
    print!("{text}");
    rs_bench::common::write_report(std::path::Path::new(&out_dir), "corpus", &text, &summary);
    println!(
        "summary written to {}",
        std::path::Path::new(&out_dir).join("corpus.json").display()
    );
    Ok(())
}

/// `rsat serve`: the warm-engine daemon. Stdio mode reads request lines
/// from stdin and writes response lines to stdout; `--socket PATH` serves a
/// Unix socket instead (stdin EOF stops the daemon). Human-facing output
/// (startup banner, shutdown statistics) goes to stderr only — stdout
/// carries nothing but response JSON.
fn serve(args: &[String]) -> Result<(), RsError> {
    let mut cfg = ServeConfig::default();
    if let Some(v) = flag_value(args, "--workers") {
        cfg.workers = v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --workers value"))?;
    }
    if let Some(v) = flag_value(args, "--queue") {
        cfg.queue = v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --queue value"))?
            .max(1);
    }
    if let Some(v) = flag_value(args, "--cache-capacity") {
        cfg.cache_capacity = v
            .parse::<usize>()
            .map_err(|_| RsError::usage("bad --cache-capacity value"))?;
    }
    if let Some(v) = flag_value(args, "--grace-ms") {
        cfg.grace_ms = v
            .parse::<u64>()
            .map_err(|_| RsError::usage("bad --grace-ms value"))?;
    }
    cfg.faults = parse_faults(args)?;
    if cfg.faults.is_some() {
        eprintln!("rsat serve: CHAOS MODE — fault injection active");
    }

    let stats = match flag_value(args, "--socket") {
        Some(path) => {
            let server = UnixServer::bind(std::path::Path::new(&path), &cfg)
                .map_err(|e| RsError::new(codes::IO, format!("cannot bind {path}: {e}")))?;
            eprintln!(
                "rsat serve: listening on {path} with {} workers (EOF on stdin stops)",
                cfg.effective_workers()
            );
            // Park until the parent closes stdin, then drain and exit.
            let mut sink = Vec::new();
            let _ = std::io::stdin().lock().read_to_end(&mut sink);
            server.stop()
        }
        None => {
            eprintln!(
                "rsat serve: reading requests from stdin with {} workers",
                cfg.effective_workers()
            );
            let stdin = std::io::stdin();
            let (stats, _) = serve_io(stdin.lock(), std::io::stdout(), &cfg);
            stats
        }
    };
    eprintln!(
        "rsat serve: {} requests, {} ok, {} failed ({} timeout, {} shed), \
         {} watchdog cancels, {} engines replaced, cache {} hits / {} misses, \
         {} checkpoints stored / {} resumed",
        stats.requests,
        stats.ok,
        stats.failed,
        stats.timeouts,
        stats.shed,
        stats.watchdog_cancels,
        stats.engines_replaced,
        stats.cache_hits,
        stats.cache_misses,
        stats.checkpoints_stored,
        stats.resumed
    );
    Ok(())
}

/// Fault injection plan from `--faults SPEC` (first) or the `RSAT_FAULTS`
/// environment variable. Both fail fast at startup with a usage error —
/// silently running *without* the chaos schedule the operator configured
/// would invalidate exactly the experiment it was set up for
/// ([`FaultPlan::from_env`]).
fn parse_faults(args: &[String]) -> Result<Option<std::sync::Arc<FaultPlan>>, RsError> {
    match flag_value(args, "--faults") {
        Some(spec) => FaultPlan::from_spec(&spec)
            .map(|p| Some(std::sync::Arc::new(p)))
            .map_err(|e| RsError::usage(format!("bad --faults value: {e}"))),
        None => FaultPlan::from_env().map_err(RsError::usage),
    }
}

fn dot(args: &[String]) -> Result<(), RsError> {
    let file = args
        .get(1)
        .ok_or_else(|| RsError::usage("missing input file"))?;
    let input = std::fs::read_to_string(file)
        .map_err(|e| RsError::new(codes::IO, format!("cannot read {file}: {e}")))?;
    let ddg = parse_ddg(&input).map_err(|e| RsError::new(codes::PARSE, format!("{file}: {e}")))?;
    println!("{}", ddg.to_dot("ddg", &[]));
    Ok(())
}

/// `rsat lint`: the embedded `rs-lint` workspace pass. Equivalent to
/// `cargo run -p rs-lint -- --workspace`, so the gate ships inside the
/// installed CLI. Findings (errors, or warnings under `--deny`) fail the
/// command after the report is printed and written.
fn lint(args: &[String]) -> Result<(), RsError> {
    if args.iter().any(|a| a == "--list-rules") {
        println!("{:<6} {:<6} rule", "id", "level");
        for r in rs_lint::RULES {
            println!(
                "{:<6} {:<6} {}  [{}]",
                r.id,
                r.severity.as_str(),
                r.title,
                r.scope
            );
        }
        return Ok(());
    }
    let root = flag_value(args, "--root").unwrap_or_else(|| ".".to_string());
    let report = rs_lint::scan_workspace(std::path::Path::new(&root))
        .map_err(|e| RsError::new(codes::IO, format!("cannot scan {root}: {e}")))?;
    let quiet = args.iter().any(|a| a == "--quiet");
    if !quiet {
        for f in &report.findings {
            println!(
                "{}:{}: {}[{}] {}",
                f.file,
                f.line,
                f.severity.as_str(),
                f.rule,
                f.message
            );
            println!("    | {}", f.snippet);
        }
    }
    let out = flag_value(args, "--out").unwrap_or_else(|| "results/lint.json".to_string());
    let out_path = std::path::Path::new(&out);
    if let Some(parent) = out_path.parent() {
        if !parent.as_os_str().is_empty() {
            let _ = std::fs::create_dir_all(parent);
        }
    }
    std::fs::write(out_path, report.to_json())
        .map_err(|e| RsError::new(codes::IO, format!("cannot write {out}: {e}")))?;
    let (errors, warnings) = (report.errors(), report.warnings());
    eprintln!(
        "rsat lint: {} files scanned, {errors} errors, {warnings} warnings, {} allows ({out})",
        report.files_scanned,
        report.allows.len(),
    );
    let deny = args.iter().any(|a| a == "--deny");
    if errors > 0 || (deny && warnings > 0) {
        return Err(RsError::new(
            codes::ENGINE,
            format!("lint failed: {errors} errors, {warnings} warnings (see {out})"),
        ));
    }
    Ok(())
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}
