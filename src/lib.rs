//! # register-saturation
//!
//! A complete Rust implementation of **register saturation** analysis and
//! reduction, reproducing:
//!
//! > Sid-Ahmed-Ali Touati, *On the Optimality of Register Saturation*,
//! > ICPP 2004 / Electronic Notes in Theoretical Computer Science 132 (2005).
//!
//! The register saturation `RS_t(G)` of a data-dependence DAG `G` is the
//! **exact maximum register requirement of type `t` over all valid
//! schedules** of `G`. Handling register pressure *before* instruction
//! scheduling — by checking `RS ≤ R` and, when it is not, adding the minimal
//! serialization arcs that bring it below `R` — frees the scheduler from
//! register constraints entirely (Figure 1 of the paper).
//!
//! This facade crate re-exports the workspace:
//!
//! - [`graph`] (`rs-graph`): DAG substrate — longest paths, transitive
//!   closure, Dilworth antichains via Hopcroft–Karp.
//! - [`lp`] (`rs-lp`): two-phase simplex + branch-and-bound MILP solver and
//!   the logical-operator linearizations used by the paper's intLP models.
//! - [`core`] (`rs-core`): the paper — DDG model, lifetimes, potential
//!   killing, Greedy-k heuristic, exact RS (combinatorial and intLP), and
//!   RS reduction (heuristic and exact intLP).
//! - [`sched`] (`rs-sched`): downstream list scheduler and register
//!   allocator used to validate the pipeline end to end.
//! - [`kernels`] (`rs-kernels`): the experiment corpus (Livermore, LINPACK,
//!   whetstone, SpecFP-like loop bodies) and random-DAG generators.
//!
//! ## Quickstart
//!
//! ```
//! use register_saturation::prelude::*;
//!
//! // Build a tiny DDG: two loads feeding an add, result stored.
//! let mut b = DdgBuilder::new(Target::superscalar());
//! let l1 = b.op("load a[i]", OpClass::Load, Some(RegType::FLOAT));
//! let l2 = b.op("load b[i]", OpClass::Load, Some(RegType::FLOAT));
//! let add = b.op("fadd", OpClass::FloatAlu, Some(RegType::FLOAT));
//! let st = b.op("store c[i]", OpClass::Store, None);
//! b.flow(l1, add, 4, RegType::FLOAT);
//! b.flow(l2, add, 4, RegType::FLOAT);
//! b.flow(add, st, 2, RegType::FLOAT);
//! let ddg = b.finish();
//!
//! // Register saturation of the float type.
//! let rs = GreedyK::new().saturation(&ddg, RegType::FLOAT);
//! assert_eq!(rs.saturation, 2); // the two loads can be alive together
//! ```

#![forbid(unsafe_code)]

pub use rs_core as core;
pub use rs_graph as graph;
pub use rs_kernels as kernels;
pub use rs_lp as lp;
pub use rs_sched as sched;

/// Convenient glob import for examples and tests.
pub mod prelude {
    pub use rs_core::exact::ExactRs;
    pub use rs_core::heuristic::GreedyK;
    pub use rs_core::ilp::{ReduceIlp, RsIlp};
    pub use rs_core::lifetime::{lifetime_intervals, register_need};
    pub use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};
    pub use rs_core::pipeline::{Pipeline, PipelineReport};
    pub use rs_core::reduce::{ReduceOutcome, Reducer};
    pub use rs_graph::{DiGraph, NodeId};
    pub use rs_sched::{ListScheduler, RegisterAllocator, Resources};
}
