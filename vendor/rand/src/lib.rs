//! Offline stand-in for the [`rand`](https://docs.rs/rand/0.8) crate (0.8
//! API surface), providing the subset this workspace uses: a deterministic
//! seedable [`rngs::StdRng`] plus the [`Rng`] / [`SeedableRng`] traits with
//! `gen`, `gen_bool`, and `gen_range`.
//!
//! The generator is splitmix64 — statistically fine for test-corpus
//! generation, NOT cryptographic. Determinism per seed is the property the
//! experiment sweeps rely on, and it holds: the sequence depends only on the
//! seed, never on platform or build flags.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64 random bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seeding support, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly over their full domain by [`Rng::gen`]
/// (`f64` samples uniformly in `[0, 1)`, as in `rand`'s `Standard`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Convenience methods over any [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's domain.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    /// Draws a value uniformly from `range`. Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(0..10usize);
            assert!(x < 10);
            let y = rng.gen_range(1..=2i64);
            assert!((1..=2).contains(&y));
            let f = rng.gen_range(0.1f64..0.5);
            assert!((0.1..0.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }
}
