//! Offline stand-in for [`serde_json`]: renders the vendored `serde` crate's
//! value tree as JSON text. Only the `to_string` / `to_string_pretty` entry
//! points the workspace uses are provided.

use serde::{Serialize, Value};

/// Serialization error. The value-tree model cannot actually fail, but the
/// signature mirrors `serde_json` so call sites keep their `.expect(...)`.
#[derive(Debug)]
pub struct Error(());

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("JSON serialization error")
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure the output re-parses as a float, not an integer.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        #[derive(serde::Serialize)]
        struct Report {
            name: String,
            rows: Vec<(usize, f64)>,
            ok: bool,
        }
        let r = Report {
            name: "t1".into(),
            rows: vec![(1, 0.5), (2, 2.0)],
            ok: true,
        };
        let json = to_string_pretty(&r).unwrap();
        assert!(json.contains("\"name\": \"t1\""), "{json}");
        assert!(json.contains("2.0"), "{json}");
        let compact = to_string(&r).unwrap();
        assert!(compact.contains("\"ok\":true"), "{compact}");
    }

    #[test]
    fn escapes_strings() {
        let json = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\"");
    }
}
