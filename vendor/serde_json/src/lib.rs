//! Offline stand-in for [`serde_json`]: renders the vendored `serde` crate's
//! value tree as JSON text, and parses JSON text back into that tree. The
//! entry points the workspace uses are provided: `to_string` /
//! `to_string_pretty` for serialization and [`from_str`] for reading the
//! benchmark harnesses' own reports back (the `milp_scaling` before/after
//! trail).

use serde::{Serialize, Value};

/// Serialization or parse error with a human-readable message.
#[derive(Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, level: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if f.is_finite() {
                // Ensure the output re-parses as a float, not an integer.
                let s = f.to_string();
                out.push_str(&s);
                if !s.contains(['.', 'e', 'E']) {
                    out.push_str(".0");
                }
            } else {
                // JSON has no NaN/Infinity; serde_json emits null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, level + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, level + 1);
            }
            write_indent(out, indent, level);
            out.push('}');
        }
    }
}

/// Parses JSON text into a [`Value`] tree — the deserialization half of
/// the shim (recursive descent; numbers become `Int`/`UInt` when they are
/// integral and fit, `Float` otherwise; `null`, nesting, string escapes
/// including `\uXXXX` surrogate pairs are all supported).
pub fn from_str(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Nesting ceiling: parsing is recursive, so runaway nesting must fail
/// cleanly instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn expect_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected literal '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => {
                self.depth += 1;
                let v = self.object();
                self.depth -= 1;
                v
            }
            Some(b'[') => {
                self.depth += 1;
                let v = self.array();
                self.depth -= 1;
                v
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.expect_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.expect_literal("false").map(|()| Value::Bool(false)),
            Some(b'n') => self.expect_literal("null").map(|()| Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            entries.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(c) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let code = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            match char::from_u32(code) {
                                Some(ch) => out.push(ch),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at `c`.
                    let start = self.pos - 1;
                    let len = match c {
                        0x00..=0x7F => 1,
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        0xF0..=0xF7 => 4,
                        _ => return Err(self.err("invalid UTF-8 in string")),
                    };
                    if start + len > self.bytes.len() {
                        return Err(self.err("truncated UTF-8 in string"));
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..start + len])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = start + len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let mut code = 0u32;
        for _ in 0..4 {
            let Some(c) = self.peek() else {
                return Err(self.err("truncated unicode escape"));
            };
            let d = match c {
                b'0'..=b'9' => (c - b'0') as u32,
                b'a'..=b'f' => (c - b'a') as u32 + 10,
                b'A'..=b'F' => (c - b'A') as u32 + 10,
                _ => return Err(self.err("invalid hex digit")),
            };
            code = code * 16 + d;
            self.pos += 1;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("number bytes are ASCII by construction");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u128>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error(format!("invalid number '{text}' at byte {start}")))
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pretty_prints_nested_structures() {
        #[derive(serde::Serialize)]
        struct Report {
            name: String,
            rows: Vec<(usize, f64)>,
            ok: bool,
        }
        let r = Report {
            name: "t1".into(),
            rows: vec![(1, 0.5), (2, 2.0)],
            ok: true,
        };
        let json = to_string_pretty(&r).unwrap();
        assert!(json.contains("\"name\": \"t1\""), "{json}");
        assert!(json.contains("2.0"), "{json}");
        let compact = to_string(&r).unwrap();
        assert!(compact.contains("\"ok\":true"), "{compact}");
    }

    #[test]
    fn escapes_strings() {
        let json = to_string(&"a\"b\\c\nd").unwrap();
        assert_eq!(json, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parses_scalars_and_numbers() {
        assert_eq!(from_str("null").unwrap(), Value::Null);
        assert_eq!(from_str("true").unwrap(), Value::Bool(true));
        assert_eq!(from_str(" -42 ").unwrap(), Value::Int(-42));
        assert_eq!(
            from_str("18446744073709551615").unwrap(),
            Value::UInt(18446744073709551615)
        );
        assert_eq!(from_str("2.5").unwrap(), Value::Float(2.5));
        assert_eq!(from_str("1e3").unwrap(), Value::Float(1000.0));
        assert_eq!(from_str("-0.125").unwrap(), Value::Float(-0.125));
        assert_eq!(
            from_str("\"a\\nb\\u0041\"").unwrap(),
            Value::Str("a\nbA".into())
        );
        // surrogate pair
        assert_eq!(
            from_str("\"\\ud83e\\udd80\"").unwrap(),
            Value::Str("🦀".into())
        );
    }

    #[test]
    fn parses_nested_structures_and_accessors() {
        let v =
            from_str(r#"{"cells":[{"size":14,"millis":1.5},{"size":18,"millis":2.0}],"ok":true}"#)
                .unwrap();
        assert_eq!(v.get("ok").and_then(|b| b.as_bool()), Some(true));
        let cells = v.get("cells").and_then(|c| c.as_array()).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].get("size").and_then(|s| s.as_u64()), Some(14));
        assert_eq!(cells[1].get("millis").and_then(|m| m.as_f64()), Some(2.0));
        assert!(v.get("missing").is_none());
        assert!(cells[0].get("size").unwrap().as_str().is_none());
    }

    #[test]
    fn round_trips_serialized_reports() {
        #[derive(serde::Serialize)]
        struct Report {
            name: String,
            rows: Vec<(usize, f64)>,
            flag: Option<bool>,
            note: String,
        }
        let r = Report {
            name: "milp_scaling".into(),
            rows: vec![(14, 194.5), (18, 228.25)],
            flag: None,
            note: "quotes \" and \\ and\nnewlines".into(),
        };
        for text in [to_string(&r).unwrap(), to_string_pretty(&r).unwrap()] {
            let v = from_str(&text).unwrap();
            assert_eq!(v.get("name").and_then(|n| n.as_str()), Some("milp_scaling"));
            let rows = v.get("rows").and_then(|x| x.as_array()).unwrap();
            let first = rows[0].as_array().unwrap();
            assert_eq!(first[0].as_u64(), Some(14));
            assert_eq!(first[1].as_f64(), Some(194.5));
            assert_eq!(v.get("flag"), Some(&Value::Null));
            assert_eq!(
                v.get("note").and_then(|n| n.as_str()),
                Some("quotes \" and \\ and\nnewlines")
            );
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
            "nan",
        ] {
            assert!(from_str(bad).is_err(), "accepted malformed input {bad:?}");
        }
    }
}
