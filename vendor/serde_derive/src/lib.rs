//! Derive macros for the vendored `serde` stand-in.
//!
//! The offline build environment has neither `syn` nor `quote`, so the item
//! is parsed by walking the raw [`TokenStream`] directly. This only has to
//! handle the shapes that actually occur in this workspace:
//!
//! - named-field structs (possibly generic over type parameters),
//! - tuple structs (newtype ids like `NodeId(pub u32)`),
//! - enums with unit, tuple, and named-field variants.
//!
//! Generated impls target `serde::Serialize::to_value` and
//! `serde::Deserialize::from_value` (a JSON-shaped value tree), following
//! serde_json's conventions: structs serialize to objects, unit variants to
//! strings, newtype variants to single-key objects. Field types are never
//! parsed — the generated `from_value` body relies on struct-literal type
//! inference, so only field *names* matter.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Body {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
    Enum(Vec<(String, Body)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    generics: Vec<String>,
    body: Body,
}

/// Cursor over a token list with helpers for the small grammar we need.
struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_punct(&self, ch: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ch)
    }

    fn at_ident(&self, word: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == word)
    }

    /// Skips `#[...]` attributes (including doc comments).
    fn skip_attributes(&mut self) {
        while self.at_punct('#') {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
            {
                self.next();
            }
        }
    }

    /// Skips `pub`, `pub(crate)`, `pub(in ...)`.
    fn skip_visibility(&mut self) {
        if self.at_ident("pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> String {
        match self.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => panic!("serde derive: expected identifier, found {other:?}"),
        }
    }

    /// Parses `<...>` generics if present, returning the type-parameter
    /// names (lifetimes and const params are skipped; bounds are ignored).
    fn parse_generics(&mut self) -> Vec<String> {
        let mut params = Vec::new();
        if !self.at_punct('<') {
            return params;
        }
        self.next();
        let mut depth = 1usize;
        let mut expect_param = true;
        while depth > 0 {
            match self.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 1 => {
                    expect_param = true;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == '\'' => {
                    // lifetime: consume its identifier, stay in skip mode
                    self.next();
                    expect_param = false;
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ':' && depth == 1 => {
                    // bounds follow; skip until next top-level ',' or '>'
                    expect_param = false;
                }
                Some(TokenTree::Ident(i)) => {
                    let word = i.to_string();
                    if expect_param && word != "const" {
                        params.push(word);
                        expect_param = false;
                    } else if word == "const" {
                        // const param: take its name but don't treat as type
                        self.expect_ident();
                        expect_param = false;
                    }
                }
                Some(_) => {}
                None => panic!("serde derive: unterminated generics"),
            }
        }
        params
    }
}

/// Parses the field names of a `{ ... }` struct body.
fn parse_named_fields(group: TokenStream) -> Vec<String> {
    let mut c = Cursor::new(group);
    let mut fields = Vec::new();
    loop {
        c.skip_attributes();
        c.skip_visibility();
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        fields.push(name.to_string());
        // expect ':', then skip the type until a top-level ','
        let mut angle_depth = 0usize;
        loop {
            match c.next() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => angle_depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                    angle_depth = angle_depth.saturating_sub(1);
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && angle_depth == 0 => break,
                Some(_) => {}
                None => return fields,
            }
        }
    }
    fields
}

/// Counts the fields of a `( ... )` tuple body.
fn count_tuple_fields(group: TokenStream) -> usize {
    let mut c = Cursor::new(group);
    let mut count = 0usize;
    let mut saw_tokens = false;
    let mut angle_depth = 0usize;
    while let Some(t) = c.next() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                count += 1;
                saw_tokens = false;
            }
            _ => saw_tokens = true,
        }
    }
    if saw_tokens {
        count += 1;
    }
    count
}

fn parse_enum_variants(group: TokenStream) -> Vec<(String, Body)> {
    let mut c = Cursor::new(group);
    let mut variants = Vec::new();
    loop {
        c.skip_attributes();
        let Some(TokenTree::Ident(name)) = c.next() else {
            break;
        };
        let body = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                Body::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                c.next();
                Body::Named(fields)
            }
            _ => Body::Unit,
        };
        variants.push((name.to_string(), body));
        // skip an optional discriminant and the trailing comma
        while let Some(t) = c.peek() {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                c.next();
                break;
            }
            c.next();
        }
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let mut c = Cursor::new(input);
    c.skip_attributes();
    c.skip_visibility();
    let kind = c.expect_ident(); // struct | enum
    let name = c.expect_ident();
    let generics = c.parse_generics();
    // skip an optional where clause up to the body group / semicolon
    while let Some(t) = c.peek() {
        match t {
            TokenTree::Group(g)
                if g.delimiter() == Delimiter::Brace || g.delimiter() == Delimiter::Parenthesis =>
            {
                break
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => {
                c.next();
            }
        }
    }
    let body = match (kind.as_str(), c.next()) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Named(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Body::Tuple(count_tuple_fields(g.stream()))
        }
        ("struct", _) => Body::Unit,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Body::Enum(parse_enum_variants(g.stream()))
        }
        (k, t) => panic!("serde derive: cannot parse {k} body at {t:?}"),
    };
    Item {
        name,
        generics,
        body,
    }
}

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        format!("impl {trait_path} for {}", item.name)
    } else {
        let params = item.generics.join(", ");
        let bounds = item
            .generics
            .iter()
            .map(|p| format!("{p}: {trait_path}"))
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "impl<{params}> {trait_path} for {}<{params}> where {bounds}",
            item.name
        )
    }
}

fn tuple_expr(vars: &[String]) -> String {
    match vars.len() {
        0 => "::serde::Value::Null".to_string(),
        1 => format!("::serde::Serialize::to_value(&{})", vars[0]),
        _ => {
            let items = vars
                .iter()
                .map(|v| format!("::serde::Serialize::to_value(&{v})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Value::Array(vec![{items}])")
        }
    }
}

fn named_expr(fields: &[String], accessor: impl Fn(&str) -> String) -> String {
    if fields.is_empty() {
        return "::serde::Value::Object(Vec::new())".to_string();
    }
    let items = fields
        .iter()
        .map(|f| {
            format!(
                "(String::from(\"{f}\"), ::serde::Serialize::to_value(&{}))",
                accessor(f)
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    format!("::serde::Value::Object(vec![{items}])")
}

/// Derives `serde::Serialize` (value-tree flavour) for structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.body {
        Body::Named(fields) => named_expr(fields, |f| format!("self.{f}")),
        Body::Tuple(n) => {
            let vars: Vec<String> = (0..*n).map(|i| format!("self.{i}")).collect();
            tuple_expr(&vars)
        }
        Body::Unit => "::serde::Value::Null".to_string(),
        Body::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|(vname, vbody)| match vbody {
                    Body::Unit | Body::Enum(_) => format!(
                        "{}::{vname} => ::serde::Value::Str(String::from(\"{vname}\")),",
                        item.name
                    ),
                    Body::Tuple(n) => {
                        let vars: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        format!(
                            "{}::{vname}({}) => ::serde::Value::Object(vec![(String::from(\"{vname}\"), {})]),",
                            item.name,
                            vars.join(", "),
                            tuple_expr(&vars)
                        )
                    }
                    Body::Named(fields) => {
                        format!(
                            "{}::{vname} {{ {} }} => ::serde::Value::Object(vec![(String::from(\"{vname}\"), {})]),",
                            item.name,
                            fields.join(", "),
                            named_expr(fields, |f| f.to_string())
                        )
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    let header = impl_header(&item, "::serde::Serialize");
    let out = format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\n{header} {{\n    fn to_value(&self) -> ::serde::Value {{\n        {body}\n    }}\n}}\n"
    );
    out.parse().expect("serde derive: generated impl parses")
}

/// `Ok(Name(...))` expression deserializing a tuple body from `src`.
///
/// A 1-tuple (newtype) deserializes transparently from the inner value; a
/// longer tuple expects an array of exactly `n` elements.
fn de_tuple_expr(ctor: &str, n: usize, src: &str) -> String {
    match n {
        0 => format!("Ok({ctor}())"),
        1 => format!("Ok({ctor}(::serde::Deserialize::from_value({src})?))"),
        _ => {
            let gets = (0..n)
                .map(|i| format!("::serde::Deserialize::from_value(&__items[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{{ let __items = {src}.as_array().ok_or_else(|| \
                 ::serde::DeError::new(\"expected array for {ctor}\"))?; \
                 if __items.len() != {n} {{ return Err(::serde::DeError::new(format!(\
                 \"expected array of {n} elements for {ctor}, got {{}}\", __items.len()))); }} \
                 Ok({ctor}({gets})) }}"
            )
        }
    }
}

/// `Ok(Name { field: ..., ... })` expression deserializing named fields
/// from the object value `src`.
fn de_named_expr(ctor: &str, fields: &[String], src: &str) -> String {
    if fields.is_empty() {
        return format!(
            "match {src} {{ ::serde::Value::Object(_) => Ok({ctor} {{}}), __other => \
             Err(::serde::DeError::new(format!(\"expected object for {ctor}, found {{__other:?}}\"))) }}"
        );
    }
    let inits = fields
        .iter()
        .map(|f| format!("{f}: ::serde::de_field({src}, \"{f}\")?"))
        .collect::<Vec<_>>()
        .join(", ");
    format!("Ok({ctor} {{ {inits} }})")
}

/// Derives `serde::Deserialize` (value-tree flavour) for structs and enums,
/// mirroring the conventions of [`derive_serialize`]: objects to structs,
/// strings to unit variants, single-key objects to data-carrying variants.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let body = match &item.body {
        Body::Named(fields) => de_named_expr(name, fields, "__v"),
        Body::Tuple(n) => de_tuple_expr(name, *n, "__v"),
        Body::Unit => format!("Ok({name})"),
        Body::Enum(variants) => {
            let unit_arms = variants
                .iter()
                .filter(|(_, b)| matches!(b, Body::Unit | Body::Enum(_)))
                .map(|(vname, _)| format!("\"{vname}\" => Ok({name}::{vname}),"))
                .collect::<Vec<_>>()
                .join("\n");
            let data_arms = variants
                .iter()
                .filter_map(|(vname, vbody)| {
                    let ctor = format!("{name}::{vname}");
                    match vbody {
                        Body::Tuple(n) => Some(format!(
                            "\"{vname}\" => {},",
                            de_tuple_expr(&ctor, *n, "__inner")
                        )),
                        Body::Named(fields) => Some(format!(
                            "\"{vname}\" => {},",
                            de_named_expr(&ctor, fields, "__inner")
                        )),
                        Body::Unit | Body::Enum(_) => None,
                    }
                })
                .collect::<Vec<_>>()
                .join("\n");
            format!(
                "match __v {{\n\
                 ::serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\n\
                 __other => Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}},\n\
                 ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __inner) = &__entries[0];\n\
                 match __k.as_str() {{\n{data_arms}\n\
                 __other => Err(::serde::DeError::new(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n\
                 __other => Err(::serde::DeError::new(format!(\
                 \"expected variant of {name}, found {{__other:?}}\"))),\n}}"
            )
        }
    };
    let header = impl_header(&item, "::serde::Deserialize");
    let out = format!(
        "#[automatically_derived]\n#[allow(clippy::all)]\n{header} {{\n    \
         fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::DeError> {{\n        \
         let _ = __v;\n        {body}\n    }}\n}}\n"
    );
    out.parse().expect("serde derive: generated impl parses")
}
