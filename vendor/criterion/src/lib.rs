//! Offline stand-in for [criterion.rs](https://docs.rs/criterion/0.5).
//!
//! The build environment has no crates.io access, so this crate provides the
//! API surface the workspace's `harness = false` bench targets use —
//! [`Criterion`], [`criterion_group!`], [`criterion_main!`], benchmark
//! groups, [`BenchmarkId`], [`black_box`] — backed by a deliberately small
//! timing loop instead of criterion's statistical machinery: a short warm-up,
//! then `sample_size` timed samples whose iteration count is calibrated to a
//! per-sample time budget; median and min/max per-iteration times go to
//! stdout.
//!
//! Command-line behaviour matches what `cargo bench` / `cargo test --benches`
//! need: timing runs only under `cargo bench` (which passes `--bench`);
//! `--test` — or the absence of `--bench` — runs each benchmark exactly once,
//! untimed, for smoke coverage. Criterion's value-taking flags are consumed
//! and ignored, and the first bare argument filters benchmarks by substring.

pub use std::hint::black_box;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A two-part id, `function_name/parameter`.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// An id distinguished only by its parameter.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing driver handed to the benchmark closure.
pub struct Bencher {
    /// Iterations per timed sample (calibrated by the harness).
    iters: u64,
    /// Total elapsed time across `iters` iterations of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` iterations of `routine`.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

#[derive(Clone, Copy)]
struct RunMode {
    /// Run each benchmark once, untimed (cargo test --benches).
    smoke_only: bool,
}

/// Top-level benchmark registry and runner.
pub struct Criterion {
    filter: Option<String>,
    mode: RunMode,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut filter = None;
        let mut bench_mode = false;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" => bench_mode = true,
                "--test" => test_mode = true,
                // criterion flags that take a separate value: consume it so
                // it is not mistaken for a benchmark filter
                "--sample-size"
                | "--measurement-time"
                | "--warm-up-time"
                | "--save-baseline"
                | "--baseline"
                | "--load-baseline"
                | "--profile-time"
                | "--output-format"
                | "--color"
                | "--significance-level"
                | "--noise-threshold"
                | "--confidence-level" => {
                    args.next();
                }
                s if s.starts_with("--") => {}
                // first bare argument is the filter, as in criterion
                s => {
                    if filter.is_none() {
                        filter = Some(s.to_string());
                    }
                }
            }
        }
        Criterion {
            filter,
            // As in real criterion: time only under `cargo bench` (which
            // passes --bench); `cargo test --benches` passes --test or
            // nothing, and gets one untimed smoke iteration per benchmark.
            mode: RunMode {
                smoke_only: test_mode || !bench_mode,
            },
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Sets the default number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.default_sample_size = n.max(2);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: group_name.into(),
            sample_size: self.default_sample_size,
            criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(None, id, sample_size, f);
        self
    }

    fn matches(&self, full_id: &str) -> bool {
        self.filter
            .as_deref()
            .is_none_or(|needle| full_id.contains(needle))
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        group: Option<&str>,
        id: &str,
        sample_size: usize,
        mut f: F,
    ) {
        let full_id = match group {
            Some(g) => format!("{g}/{id}"),
            None => id.to_string(),
        };
        if !self.matches(&full_id) {
            return;
        }
        if self.mode.smoke_only {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {full_id} ... ok");
            return;
        }

        // Calibrate: time one iteration, then size samples to ~5 ms each,
        // bounded so a single benchmark stays well under a second.
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let once = b.elapsed.max(Duration::from_nanos(1));
        let per_sample = (Duration::from_millis(5).as_nanos() / once.as_nanos()).clamp(1, 10_000);

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters: per_sample as u64,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let median = samples[samples.len() / 2];
        let lo = samples[0];
        let hi = samples[samples.len() - 1];
        println!(
            "{full_id:<40} time: [{} {} {}]",
            format_ns(lo),
            format_ns(median),
            format_ns(hi)
        );
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: BenchmarkId, f: F) -> &mut Self {
        let (name, sample_size) = (self.name.clone(), self.sample_size);
        self.criterion.run_one(Some(&name), &id.id, sample_size, f);
        self
    }

    /// Runs a benchmark in this group with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let (name, sample_size) = (self.name.clone(), self.sample_size);
        self.criterion
            .run_one(Some(&name), &id.id, sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (marker for API parity; reporting is per-benchmark).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(32).id, "32");
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
    }

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }
}
