//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate supplies the subset of serde's public surface the workspace
//! actually uses: the `Serialize`/`Deserialize` derive macros and trait
//! names, backed by a simple JSON-shaped value tree ([`Value`]) instead of
//! serde's visitor machinery. `serde_json::to_string_pretty` renders that
//! tree, `serde_json::from_str` parses JSON text back into it, the
//! [`Value`] accessors (`get`/`as_array`/`as_f64`/…) navigate parsed
//! documents, and [`Deserialize::from_value`] reconstructs typed data from
//! them. Swapping the real serde back in requires no source changes in the
//! workspace — only the manifests.

// Lets the `::serde::...` paths in derive-generated code resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (covers `u64`/`u128` beyond `i64::MAX`).
    UInt(u128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers widen losslessly within `2^53`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Non-negative integer value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => u64::try_from(u).ok(),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// A type that can turn itself into a [`Value`].
///
/// Derivable with `#[derive(Serialize)]`; the derive mirrors serde's JSON
/// conventions (structs to objects, unit enum variants to strings, newtype
/// variants to single-key objects).
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(String);

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        DeError(message.into())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// A short human name for a value's variant, used in error messages.
fn kind_of(value: &Value) -> &'static str {
    match value {
        Value::Null => "null",
        Value::Bool(_) => "bool",
        Value::Int(_) | Value::UInt(_) => "integer",
        Value::Float(_) => "number",
        Value::Str(_) => "string",
        Value::Array(_) => "array",
        Value::Object(_) => "object",
    }
}

/// A type that can reconstruct itself from a [`Value`].
///
/// Derivable with `#[derive(Deserialize)]`; the derive mirrors serde's JSON
/// conventions (objects to structs, strings to unit enum variants,
/// single-key objects to data-carrying variants). Unknown object keys are
/// ignored and missing keys deserialize from [`Value::Null`], so `Option`
/// fields default to `None`.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from the serialization data model.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up `name` in an object value and deserializes it, treating a
/// missing key as [`Value::Null`]. Used by derived [`Deserialize`] impls.
pub fn de_field<T: Deserialize>(value: &Value, name: &str) -> Result<T, DeError> {
    match value {
        Value::Object(_) => {
            let field = value.get(name).unwrap_or(&Value::Null);
            T::from_value(field).map_err(|e| DeError(format!("field `{name}`: {e}")))
        }
        other => Err(DeError(format!(
            "expected object with field `{name}`, found {}",
            kind_of(other)
        ))),
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                match *value {
                    Value::Int(i) => <$t>::try_from(i)
                        .map_err(|_| DeError(format!("{i} out of range for {}", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(u)
                        .map_err(|_| DeError(format!("{u} out of range for {}", stringify!($t)))),
                    ref other => Err(DeError(format!(
                        "expected integer, found {}",
                        kind_of(other)
                    ))),
                }
            }
        }
    )*};
}

impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for i128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Int(i) => Ok(i128::from(i)),
            Value::UInt(u) => {
                i128::try_from(u).map_err(|_| DeError(format!("{u} out of range for i128")))
            }
            ref other => Err(DeError(format!(
                "expected integer, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Deserialize for u128 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Int(i) => {
                u128::try_from(i).map_err(|_| DeError(format!("{i} out of range for u128")))
            }
            Value::UInt(u) => Ok(u),
            ref other => Err(DeError(format!(
                "expected integer, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_f64()
            .ok_or_else(|| DeError(format!("expected number, found {}", kind_of(value))))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_bool()
            .ok_or_else(|| DeError(format!("expected bool, found {}", kind_of(value))))
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError(format!("expected string, found {}", kind_of(value))))
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let s = String::from_value(value)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single-char string, got {s:?}"))),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        T::from_value(value).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, found {}", kind_of(value))))?;
        items.iter().map(T::from_value).collect()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let items = value
            .as_array()
            .ok_or_else(|| DeError(format!("expected array, found {}", kind_of(value))))?;
        if items.len() != N {
            return Err(DeError(format!(
                "expected array of {N} elements, got {}",
                items.len()
            )));
        }
        let mut out = Vec::with_capacity(N);
        for item in items {
            out.push(T::from_value(item)?);
        }
        out.try_into()
            .map_err(|_| DeError("array length mismatch".to_string()))
    }
}

macro_rules! impl_de_tuple {
    ($len:expr => $($name:ident : $idx:tt),+) => {
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError(format!("expected array, found {}", kind_of(value))))?;
                if items.len() != $len {
                    return Err(DeError(format!(
                        "expected array of {} elements, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($name::from_value(&items[$idx])?,)+))
            }
        }
    };
}

impl_de_tuple!(1 => A: 0);
impl_de_tuple!(2 => A: 0, B: 1);
impl_de_tuple!(3 => A: 0, B: 1, C: 2);
impl_de_tuple!(4 => A: 0, B: 1, C: 2, D: 3);
impl_de_tuple!(5 => A: 0, B: 1, C: 2, D: 3, E: 4);

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Object(entries) => entries
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError(format!(
                "expected object, found {}",
                kind_of(other)
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, u128, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3i64.to_value(), Value::Int(3));
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".to_string()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct S {
            a: usize,
            b: String,
        }
        let v = S {
            a: 1,
            b: "hi".into(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::Str("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_newtype_and_enum() {
        #[derive(Serialize)]
        struct Id(u32);
        #[derive(Serialize)]
        enum E {
            Unit,
            Wrap(Id),
        }
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::Wrap(Id(7)).to_value(),
            Value::Object(vec![("Wrap".into(), Value::UInt(7))])
        );
    }

    #[test]
    fn derive_deserialize_roundtrips() {
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct Id(u32);
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        enum E {
            Unit,
            Wrap(Id),
            Pair(i32, i32),
            Named { x: f64 },
        }
        #[derive(Debug, PartialEq, Serialize, Deserialize)]
        struct S {
            a: usize,
            b: String,
            c: Option<E>,
            d: Vec<E>,
            e: [i64; 3],
        }
        let s = S {
            a: 9,
            b: "hi".into(),
            c: Some(E::Named { x: 1.5 }),
            d: vec![E::Unit, E::Wrap(Id(7)), E::Pair(-1, 2)],
            e: [1, 2, 3],
        };
        let back = S::from_value(&s.to_value()).expect("roundtrip");
        assert_eq!(back, s);
        // missing keys deserialize as Null: Option fields default to None
        let partial = Value::Object(vec![
            ("a".into(), Value::UInt(1)),
            ("b".into(), Value::Str("x".into())),
            ("d".into(), Value::Array(vec![])),
            ("e".into(), Value::Array(vec![Value::Int(0); 3])),
        ]);
        assert_eq!(S::from_value(&partial).unwrap().c, None);
        // shape errors carry field context
        let err = S::from_value(&Value::Object(vec![("a".into(), Value::Bool(true))]))
            .unwrap_err()
            .to_string();
        assert!(err.contains("field `a`"), "{err}");
    }

    #[test]
    fn derive_generic_struct() {
        #[derive(Serialize)]
        struct Pair<T> {
            left: T,
            right: T,
        }
        let v = Pair {
            left: 1u8,
            right: 2u8,
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("left".into(), Value::UInt(1)),
                ("right".into(), Value::UInt(2)),
            ])
        );
    }
}
