//! Offline stand-in for [`serde`](https://serde.rs).
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate supplies the subset of serde's public surface the workspace
//! actually uses: the `Serialize`/`Deserialize` derive macros and trait
//! names, backed by a simple JSON-shaped value tree ([`Value`]) instead of
//! serde's visitor machinery. `serde_json::to_string_pretty` renders that
//! tree, `serde_json::from_str` parses JSON text back into it, and the
//! [`Value`] accessors (`get`/`as_array`/`as_f64`/…) navigate parsed
//! documents. Swapping the real serde back in requires no source changes
//! in the workspace — only the manifests.

// Lets the `::serde::...` paths in derive-generated code resolve inside
// this crate's own tests.
extern crate self as serde;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (covers `u64`/`u128` beyond `i64::MAX`).
    UInt(u128),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array value.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Numeric value as `f64` (integers widen losslessly within `2^53`).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Non-negative integer value as `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) => u64::try_from(i).ok(),
            Value::UInt(u) => u64::try_from(u).ok(),
            _ => None,
        }
    }

    /// String value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean value.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// A type that can turn itself into a [`Value`].
///
/// Derivable with `#[derive(Serialize)]`; the derive mirrors serde's JSON
/// conventions (structs to objects, unit enum variants to strings, newtype
/// variants to single-key objects).
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Marker trait mirroring serde's `Deserialize`.
///
/// Nothing in the workspace deserializes at run time; the derive exists so
/// `#[derive(Deserialize)]` attributes in the source compile unchanged.
pub trait Deserialize {}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
    )*};
}

impl_ser_int!(i8, i16, i32, i64, isize);
impl_ser_uint!(u8, u16, u32, u64, u128, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
    };
}

impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.to_value()))
                .collect(),
        )
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::Float(self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(3i64.to_value(), Value::Int(3));
        assert_eq!(3usize.to_value(), Value::UInt(3));
        assert_eq!(true.to_value(), Value::Bool(true));
        assert_eq!("x".to_value(), Value::Str("x".to_string()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
        assert_eq!(
            vec![1u8, 2].to_value(),
            Value::Array(vec![Value::UInt(1), Value::UInt(2)])
        );
    }

    #[test]
    fn derive_named_struct() {
        #[derive(Serialize)]
        struct S {
            a: usize,
            b: String,
        }
        let v = S {
            a: 1,
            b: "hi".into(),
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("a".into(), Value::UInt(1)),
                ("b".into(), Value::Str("hi".into())),
            ])
        );
    }

    #[test]
    fn derive_newtype_and_enum() {
        #[derive(Serialize)]
        struct Id(u32);
        #[derive(Serialize)]
        enum E {
            Unit,
            Wrap(Id),
        }
        assert_eq!(E::Unit.to_value(), Value::Str("Unit".into()));
        assert_eq!(
            E::Wrap(Id(7)).to_value(),
            Value::Object(vec![("Wrap".into(), Value::UInt(7))])
        );
    }

    #[test]
    fn derive_generic_struct() {
        #[derive(Serialize)]
        struct Pair<T> {
            left: T,
            right: T,
        }
        let v = Pair {
            left: 1u8,
            right: 2u8,
        }
        .to_value();
        assert_eq!(
            v,
            Value::Object(vec![
                ("left".into(), Value::UInt(1)),
                ("right".into(), Value::UInt(2)),
            ])
        );
    }
}
