//! Offline stand-in for [`proptest`](https://docs.rs/proptest/1).
//!
//! Provides the subset the workspace's property tests use: the
//! [`Strategy`] trait with `prop_map`, range and tuple strategies,
//! [`any`], [`ProptestConfig`], the [`proptest!`] item macro, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! - **No shrinking.** A failing case reports its inputs (via the
//!   generating seed and case number) but is not minimized.
//! - **Deterministic.** Case `i` of test `t` derives its RNG from a hash of
//!   `(module_path, test name, i)`, so failures reproduce across runs and
//!   machines without a persisted regression file.

use std::ops::{Range, RangeInclusive};

/// A failed property within a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure message.
    pub message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result of one generated test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration, mirroring `proptest::test_runner::ProptestConfig`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property is checked against.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Deterministic RNG used to drive strategies (splitmix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test identifier and case index.
    pub fn deterministic(test_id: &str, case: u32) -> Self {
        // FNV-1a over the id, mixed with the case number.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_id.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of values, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

/// Types with a canonical full-domain strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws one value over the type's full domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec`s of values from `element`, with a length drawn
    /// uniformly from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates `Vec`s whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Fixed-size array strategies, mirroring `proptest::array`.
pub mod array {
    use super::{Strategy, TestRng};

    /// Strategy for `[S::Value; N]` drawing each element from the same
    /// underlying strategy.
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fn {
        ($($name:ident : $n:literal),+) => {$(
            /// Generates arrays with elements drawn from `element`.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )+};
    }

    uniform_fn!(uniform2: 2, uniform3: 3, uniform4: 4, uniform5: 5, uniform8: 8);
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`",
            *l,
            *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

/// Defines property tests, mirroring `proptest::proptest!`.
///
/// Each `fn name(arg in strategy, ...) { body }` item becomes a `#[test]`
/// that runs `body` against `config.cases` generated inputs. The body may
/// `return Ok(())` to discard a case and uses `prop_assert*` for checks.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let test_id = concat!(module_path!(), "::", stringify!($name));
            for case in 0..config.cases {
                let mut rng = $crate::TestRng::deterministic(test_id, case);
                $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                if let Err(e) = result {
                    panic!(
                        "proptest case {case}/{} failed for {test_id}: {}",
                        config.cases, e.message
                    );
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_and_maps_generate_in_bounds() {
        let mut rng = crate::TestRng::deterministic("t", 0);
        let s = (1usize..=5, 0.25f64..0.75).prop_map(|(n, f)| (n * 2, f));
        for _ in 0..100 {
            let (n, f) = s.generate(&mut rng);
            assert!((2..=10).contains(&n) && n % 2 == 0);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn deterministic_per_test_id_and_case() {
        let a = crate::TestRng::deterministic("x", 3).next_u64();
        let b = crate::TestRng::deterministic("x", 3).next_u64();
        let c = crate::TestRng::deterministic("x", 4).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(n in 1usize..10, flag in any::<bool>()) {
            if flag && n == 0 {
                return Ok(());
            }
            prop_assert!(n >= 1, "n = {n}");
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }
}
