//! Figure 2 of the paper, reproduced: why *saturating* the register need
//! beats *minimizing* it.
//!
//! ```text
//! cargo run --example figure2
//! ```

use rs_core::exact::ExactRs;
use rs_core::minimize::minimize_register_need;
use rs_core::model::{RegType, Target};
use rs_core::reduce::Reducer;
use rs_kernels::figure2::figure2;

fn main() {
    let t = RegType::FLOAT;

    // Part (a): the initial DAG — one 17-cycle value, three 1-cycle values.
    let (initial, nodes) = figure2(Target::superscalar());
    let rs = ExactRs::new().saturation(&initial, t);
    println!("(a) initial DAG: RS = {} (paper: 4)", rs.saturation);
    println!(
        "    values a={:?} b={:?} c={:?} d={:?}",
        nodes.a, nodes.b, nodes.c, nodes.d
    );
    println!("    critical path = {}", initial.critical_path());
    println!("    if the processor has ≥ 4 registers, the RS pass leaves this DAG alone.\n");

    // Part (b): the minimization approach adds arcs regardless of R.
    let (mut minimized, _) = figure2(Target::superscalar());
    let m = minimize_register_need(&mut minimized, t);
    println!(
        "(b) minimization: drives the need to {} with {} arcs — even when registers are plentiful",
        m.rs_after,
        m.added_arcs.len()
    );
    println!(
        "    critical path unchanged: {} (the 17-cycle shadow hides the chain)",
        minimized.critical_path()
    );
    println!(
        "    the scheduler can now use at most {} registers no matter what.\n",
        m.rs_after
    );

    // Part (c): RS reduction with 3 available registers.
    let (mut reduced, _) = figure2(Target::superscalar());
    let out = Reducer::new().reduce(&mut reduced, t, 3);
    let rs_after = ExactRs::new().saturation(&reduced, t).saturation;
    println!(
        "(c) RS reduction (R=3): RS 4 -> {} with {} arcs (vs {} for minimization)",
        rs_after,
        out.added_arcs().len(),
        m.added_arcs.len()
    );
    println!("    the final allocator may use 1, 2 or 3 registers depending on the schedule —");
    println!("    the RS concept 'helps to better take benefit from available registers'.\n");

    println!("DOT of the reduced DAG (added arcs in red):");
    let highlight: Vec<_> = reduced
        .graph()
        .edge_ids()
        .filter(|e| {
            out.added_arcs()
                .iter()
                .any(|&(s, d, _)| reduced.graph().src(*e) == s && reduced.graph().dst(*e) == d)
        })
        .collect();
    println!("{}", reduced.to_dot("figure2c", &highlight));
}
