//! Global register saturation over an acyclic CFG (Section 6's extension):
//! per-block RS with entry/exit values, the max-over-blocks global RS, and
//! the move-insertion register reserve.
//!
//! ```text
//! cargo run --example global_cfg
//! ```

use rs_core::cfg::{Cfg, CfgBuilder};
use rs_core::model::{OpClass, RegType, Target};

fn main() {
    // if (c) { t = a*b + a } else { t = a+b } ; store t
    let mut c = CfgBuilder::new(Target::superscalar());
    let entry = c.add_block("entry");
    let then_b = c.add_block("then");
    let else_b = c.add_block("else");
    let join = c.add_block("join");
    c.branch(entry, then_b);
    c.branch(entry, else_b);
    c.branch(then_b, join);
    c.branch(else_b, join);

    // entry defines a and b, both live across the branch
    let a = c.op(entry, "load a", OpClass::Load, Some(RegType::FLOAT));
    let b = c.op(entry, "load b", OpClass::Load, Some(RegType::FLOAT));
    c.live_out(entry, a, RegType::FLOAT, "a");
    c.live_out(entry, b, RegType::FLOAT, "b");

    // then: t = a*b + a  (a read twice -> longer lifetime)
    let a_in = c.live_in(then_b, "a", RegType::FLOAT);
    let b_in = c.live_in(then_b, "b", RegType::FLOAT);
    let m = c.op(then_b, "a*b", OpClass::FloatMul, Some(RegType::FLOAT));
    c.flow(then_b, a_in, m, 1, RegType::FLOAT);
    c.flow(then_b, b_in, m, 1, RegType::FLOAT);
    let t1 = c.op(then_b, "m+a", OpClass::FloatAlu, Some(RegType::FLOAT));
    c.flow(then_b, m, t1, 4, RegType::FLOAT);
    c.flow(then_b, a_in, t1, 1, RegType::FLOAT);
    c.live_out(then_b, t1, RegType::FLOAT, "t");

    // else: t = a+b
    let a_in = c.live_in(else_b, "a", RegType::FLOAT);
    let b_in = c.live_in(else_b, "b", RegType::FLOAT);
    let t2 = c.op(else_b, "a+b", OpClass::FloatAlu, Some(RegType::FLOAT));
    c.flow(else_b, a_in, t2, 1, RegType::FLOAT);
    c.flow(else_b, b_in, t2, 1, RegType::FLOAT);
    c.live_out(else_b, t2, RegType::FLOAT, "t");

    // join: store t
    let t_in = c.live_in(join, "t", RegType::FLOAT);
    let st = c.op(join, "store t", OpClass::Store, None);
    c.flow(join, t_in, st, 1, RegType::FLOAT);

    let mut cfg = c.finish();

    println!("per-block / global register saturation (float):");
    let rs = cfg.global_saturation(RegType::FLOAT);
    for (block, sat) in &rs.per_block {
        println!("  {block:<8} RS = {sat}");
    }
    println!("  global   RS = {} (max over blocks)\n", rs.global);

    let physical = 4;
    println!(
        "global allocation with {physical} registers: each block is reduced to {} \
         (one register reserved for possible 'move' insertions, per the paper)",
        Cfg::effective_budget(physical)
    );
    let outcomes = cfg.reduce_all(RegType::FLOAT, physical);
    for (block, out) in &outcomes {
        println!(
            "  {block:<8} fits = {}, arcs added = {}",
            out.fits(),
            out.added_arcs().len()
        );
    }
    let after = cfg.global_saturation(RegType::FLOAT);
    println!(
        "\nglobal RS after reduction: {} ≤ {}",
        after.global,
        Cfg::effective_budget(physical)
    );
}
