//! VLIW/EPIC targets: architecturally visible read/write offsets change
//! the lifetimes — and reduction must guard against non-positive circuits
//! (Section 4's caveat).
//!
//! ```text
//! cargo run --example vliw_offsets
//! ```

use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::lifetime::{asap_schedule, lifetime_intervals};
use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
use rs_core::reduce::Reducer;

fn main() {
    // The same dataflow under both delay models.
    let build = |target: Target| {
        let mut b = DdgBuilder::new(target);
        for i in 0..4 {
            let l = b.op(format!("load v{i}"), OpClass::Load, Some(RegType::FLOAT));
            let m = b.op(format!("mul{i}"), OpClass::FloatMul, Some(RegType::FLOAT));
            b.flow(l, m, 4, RegType::FLOAT);
            let s = b.op(format!("store{i}"), OpClass::Store, None);
            b.flow(m, s, 4, RegType::FLOAT);
        }
        b.finish()
    };

    for (name, target) in [
        ("superscalar (δr = δw = 0)", Target::superscalar()),
        ("VLIW (δw = latency − 1)", Target::vliw()),
    ] {
        let ddg = build(target);
        let sigma = asap_schedule(&ddg);
        println!("=== {name} ===");
        println!("ASAP lifetimes of the load values:");
        for (v, iv) in lifetime_intervals(&ddg, RegType::FLOAT, &sigma) {
            let op = ddg.graph().node(v);
            if op.class == OpClass::Load {
                println!(
                    "  {:<8} ({}, {}]  (δw shifts the write {} cycles late)",
                    op.name, iv.start, iv.end, op.delta_w
                );
            }
        }
        let rs = ExactRs::new().saturation(&ddg, RegType::FLOAT);
        println!(
            "exact RS = {}{}",
            rs.saturation,
            if rs.proven_optimal { "" } else { "?" }
        );

        // Reduce to 2 registers; on VLIW the added arcs carry latency
        // δr(reader) − δw(def) which can be negative — the reducer must keep
        // the graph schedulable (acyclic).
        let mut reduced = build(match name.starts_with("VLIW") {
            true => Target::vliw(),
            false => Target::superscalar(),
        });
        let out = Reducer::new().reduce(&mut reduced, RegType::FLOAT, 2);
        println!("reduce to R=2: fits = {}, arcs added:", out.fits());
        for &(s, d, lat) in out.added_arcs() {
            println!(
                "  {} -> {}  latency {}{}",
                reduced.graph().node(s).name,
                reduced.graph().node(d).name,
                lat,
                if lat <= 0 {
                    "  (non-positive: VLIW offset arc)"
                } else {
                    ""
                }
            );
        }
        assert!(reduced.is_acyclic(), "no non-positive circuits may survive");
        println!("graph remains acyclic: schedulable under resource constraints\n");
    }

    println!("note: the heuristic's estimate never exceeds the exact RS:");
    let d = build(Target::vliw());
    let h = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
    let e = ExactRs::new().saturation(&d, RegType::FLOAT).saturation;
    println!("  VLIW: RS* = {h} ≤ RS = {e}");
}
