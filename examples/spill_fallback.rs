//! When serialization cannot reduce the saturation (the paper's terminal
//! "spilling is unavoidable" case), the DDG-level spill pass — the paper's
//! stated future work — splits lifetimes through memory *before*
//! scheduling, breaking the classic schedule-then-spill iteration.
//!
//! ```text
//! cargo run --example spill_fallback
//! ```

use rs_core::exact::ExactRs;
use rs_core::model::{DdgBuilder, OpClass, RegType, Target};
use rs_core::reduce::Reducer;
use rs_core::spill::SpillPass;

fn main() {
    // One long-lived value L spanning three short chains.
    let mut b = DdgBuilder::new(Target::superscalar());
    let l = b.op("L", OpClass::Load, Some(RegType::FLOAT));
    let f = b.op("use L", OpClass::Store, None);
    b.flow(l, f, 4, RegType::FLOAT);
    for i in 0..3 {
        let v = b.op(format!("v{i}"), OpClass::FloatAlu, Some(RegType::FLOAT));
        let s = b.op(format!("s{i}"), OpClass::Store, None);
        b.flow(v, s, 3, RegType::FLOAT);
        b.serial(l, v, 1);
        b.serial(s, f, 1);
    }
    let ddg = b.finish();

    let rs0 = ExactRs::new().saturation(&ddg, RegType::FLOAT).saturation;
    println!("initial DDG: {} ops, exact RS = {rs0}", ddg.num_ops());
    println!("L overlaps every short chain, so RS can be serialized down to 2 — never 1.\n");

    // Serialization alone at R = 1: must fail.
    let mut plain = ddg.clone();
    let out = Reducer {
        verify_exact: true,
        ..Reducer::new()
    }
    .reduce(&mut plain, RegType::FLOAT, 1);
    println!(
        "value-serialization reduction to R=1: fits = {}",
        out.fits()
    );

    // The spill pass splits L's lifetime through memory.
    println!("\nDDG-level spill pass at R=1:");
    match SpillPass::new().spill_to_fit(&ddg, RegType::FLOAT, 1) {
        Some(res) => {
            println!("  spilled values: {:?}", res.spilled_values);
            println!(
                "  +{} store(s), +{} reload(s), {} serialization arcs, final exact RS = {}",
                res.stores_added, res.loads_added, res.reduction_arcs, res.rs_after
            );
            println!(
                "  transformed DDG has {} ops (was {})",
                res.ddg.num_ops(),
                ddg.num_ops()
            );
            // show the inserted ops
            for n in res.ddg.graph().node_ids() {
                let name = &res.ddg.graph().node(n).name;
                if name.starts_with("spill ") || name.starts_with("reload ") {
                    println!("    inserted: {name}");
                }
            }
        }
        None => println!("  even spilling cannot reach this budget"),
    }

    println!("\nno schedule-then-spill iteration happened: the spill decision was made");
    println!("on the dependence graph itself, before any scheduling (paper, Section 7).");
}
