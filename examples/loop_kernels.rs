//! The full Figure-1 pipeline on the scientific-kernel corpus: analyse,
//! reduce where needed, schedule under resources, allocate — and prove
//! there are no spills.
//!
//! ```text
//! cargo run --example loop_kernels [-- <registers>]
//! ```

use rs_core::heuristic::GreedyK;
use rs_core::model::{RegType, Target};
use rs_core::pipeline::Pipeline;
use rs_sched::{ListScheduler, RegisterAllocator, Resources};

fn main() {
    let budget: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(6);
    println!("register budget per type: {budget}\n");
    println!(
        "{:<10} {:>6} {:>6} {:>5} {:>5} {:>6} {:>6} {:>7} {:>6}",
        "kernel", "ops", "RS0", "RSf", "arcs", "CP0", "CPf", "span", "spills"
    );

    for k in rs_kernels::corpus() {
        let mut ddg = (k.build)(Target::superscalar());
        let cp0 = ddg.critical_path();
        let rs0 = GreedyK::new().saturation(&ddg, RegType::FLOAT).saturation;

        // Figure 1: saturation analysis + reduction, per type.
        let report = Pipeline {
            budgets: vec![(RegType::INT, budget), (RegType::FLOAT, budget)],
            verify_exact: false,
        }
        .run(&mut ddg);

        // Downstream: register-oblivious scheduling, then allocation.
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&ddg);
        let allocator = RegisterAllocator::new();
        let mut spills = 0;
        for t in ddg.reg_types() {
            spills += allocator
                .allocate(&ddg, t, &sched.sigma, budget)
                .spilled
                .len();
        }

        let float = report.types.iter().find(|t| t.reg_type == RegType::FLOAT.0);
        println!(
            "{:<10} {:>6} {:>6} {:>5} {:>5} {:>6} {:>6} {:>7} {:>6}{}",
            k.name,
            ddg.num_ops(),
            rs0,
            float.map_or(rs0, |f| f.rs_after),
            report.total_arcs_added(),
            cp0,
            ddg.critical_path(),
            sched.makespan,
            spills,
            if report.all_fit() {
                ""
            } else {
                "  (budget infeasible: spill code required)"
            },
        );
    }

    println!("\nRS0 = float saturation before the pass; RSf = after; CP = critical path;");
    println!("span = makespan on a 4-issue machine. Zero spills whenever the budget fits —");
    println!("the scheduler never had to think about registers (Figure 1 of the paper).");
}
