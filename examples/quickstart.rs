//! Quickstart: compute the register saturation of a small DDG, reduce it to
//! a register budget, and verify the downstream scheduler/allocator see a
//! register-constraint-free DAG.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use register_saturation::prelude::*;
use rs_core::exact::ExactRs;

fn main() {
    // Build the DDG of:  t = (a[i] * b[i]) + (c[i] * d[i]); store t
    let mut b = DdgBuilder::new(Target::superscalar());
    let la = b.op("load a[i]", OpClass::Load, Some(RegType::FLOAT));
    let lb = b.op("load b[i]", OpClass::Load, Some(RegType::FLOAT));
    let lc = b.op("load c[i]", OpClass::Load, Some(RegType::FLOAT));
    let ld = b.op("load d[i]", OpClass::Load, Some(RegType::FLOAT));
    let m1 = b.op("a*b", OpClass::FloatMul, Some(RegType::FLOAT));
    let m2 = b.op("c*d", OpClass::FloatMul, Some(RegType::FLOAT));
    let s = b.op("m1+m2", OpClass::FloatAlu, Some(RegType::FLOAT));
    let st = b.op("store t", OpClass::Store, None);
    b.flow(la, m1, 4, RegType::FLOAT);
    b.flow(lb, m1, 4, RegType::FLOAT);
    b.flow(lc, m2, 4, RegType::FLOAT);
    b.flow(ld, m2, 4, RegType::FLOAT);
    b.flow(m1, s, 4, RegType::FLOAT);
    b.flow(m2, s, 4, RegType::FLOAT);
    b.flow(s, st, 3, RegType::FLOAT);
    let mut ddg = b.finish();

    println!(
        "DDG: {} ops, {} edges, critical path {}",
        ddg.num_ops(),
        ddg.graph().edge_count(),
        ddg.critical_path()
    );

    // 1. Register saturation: the exact upper bound over ALL schedules.
    let heuristic = GreedyK::new().saturation(&ddg, RegType::FLOAT);
    let exact = ExactRs::new().saturation(&ddg, RegType::FLOAT);
    println!(
        "register saturation (float): heuristic RS* = {}, exact RS = {}{}",
        heuristic.saturation,
        exact.saturation,
        if exact.proven_optimal {
            ""
        } else {
            " (budget-limited)"
        },
    );
    println!(
        "saturating values: {:?}",
        exact
            .saturating_values
            .iter()
            .map(|&v| ddg.graph().node(v).name.clone())
            .collect::<Vec<_>>()
    );

    // 2. Suppose the target has only 3 float registers: reduce.
    let budget = 3;
    let outcome = Reducer::new().reduce(&mut ddg, RegType::FLOAT, budget);
    match &outcome {
        ReduceOutcome::AlreadyFits { rs } => println!("RS = {rs} ≤ {budget}: DAG untouched"),
        ReduceOutcome::Reduced {
            rs_before,
            rs_after,
            cp_before,
            cp_after,
            added_arcs,
            ..
        } => println!(
            "reduced RS {rs_before} -> {rs_after} with {} arcs; critical path {cp_before} -> {cp_after}",
            added_arcs.len()
        ),
        ReduceOutcome::Failed { .. } => println!("cannot fit {budget} registers: spill needed"),
    }

    // 3. The scheduler now never needs to think about registers.
    let sched = ListScheduler::new(Resources::four_issue()).schedule(&ddg);
    println!(
        "list schedule makespan under a 4-issue machine: {}",
        sched.makespan
    );

    // 4. And allocation succeeds within the budget, zero spills.
    let alloc = RegisterAllocator::new().allocate(&ddg, RegType::FLOAT, &sched.sigma, budget);
    println!(
        "allocation: {} registers used, {} spills",
        alloc.registers_used,
        alloc.spilled.len()
    );
    assert!(
        alloc.success(),
        "the saturation pre-pass guarantees no spills"
    );
}
