//! Integration tests for `rsat corpus`: parallel directory runs, JSON/text
//! report output, exit-code hygiene for malformed corpus files, and
//! `--jobs` independence of the summary.

use rs_bench::corpus::{run_corpus, CorpusMode, CorpusOptions};
use std::path::{Path, PathBuf};
use std::process::Command;

fn rsat(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rsat"))
        .args(args)
        .output()
        .expect("run rsat");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn fixtures() -> String {
    format!("{}/examples/data", env!("CARGO_MANIFEST_DIR"))
}

/// A scratch corpus directory seeded with the shipped fixtures plus a
/// malformed file; removed on drop.
struct TempCorpus {
    dir: PathBuf,
    out: PathBuf,
}

impl TempCorpus {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("rsat_corpus_cli_{tag}"));
        let out = std::env::temp_dir().join(format!("rsat_corpus_cli_{tag}_out"));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&out);
        std::fs::create_dir_all(&dir).unwrap();
        for fixture in ["expr.ddg", "daxpy.ddg"] {
            std::fs::copy(Path::new(&fixtures()).join(fixture), dir.join(fixture)).unwrap();
        }
        TempCorpus { dir, out }
    }

    fn add_malformed(&self) {
        // line 3 references an undefined op — a parse error with a line number
        std::fs::write(
            self.dir.join("broken.ddg"),
            "target superscalar\nop a load float\nflow a ghost 1 float\n",
        )
        .unwrap();
    }
}

impl Drop for TempCorpus {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
        let _ = std::fs::remove_dir_all(&self.out);
    }
}

#[test]
fn corpus_runs_shipped_fixtures_and_writes_reports() {
    let tc = TempCorpus::new("basic");
    let dir = tc.dir.to_str().unwrap();
    let out = tc.out.to_str().unwrap();
    let (ok, stdout, stderr) = rsat(&["corpus", dir, "--jobs", "2", "--out", out]);
    assert!(ok, "corpus run failed: {stderr}");
    assert!(stdout.contains("2 files, 2 analyzed, 0 failed"), "{stdout}");
    assert!(stdout.contains("expr.ddg"), "{stdout}");
    // both report artifacts exist and carry the analysis
    let json = std::fs::read_to_string(tc.out.join("corpus.json")).unwrap();
    assert!(json.contains("\"saturation\": 4"), "{json}");
    assert!(std::fs::read_to_string(tc.out.join("corpus.txt")).is_ok());
}

#[test]
fn malformed_file_is_skipped_with_success_exit_code() {
    let tc = TempCorpus::new("malformed");
    tc.add_malformed();
    let dir = tc.dir.to_str().unwrap();
    let out = tc.out.to_str().unwrap();
    let (ok, stdout, stderr) = rsat(&["corpus", dir, "--jobs", "2", "--out", out]);
    assert!(
        ok,
        "a malformed corpus file must not abort the run: {stderr}"
    );
    assert!(stdout.contains("3 files, 2 analyzed, 1 failed"), "{stdout}");
    assert!(stdout.contains("broken.ddg: SKIPPED"), "{stdout}");
    // the error (with its line number) is carried into the JSON summary
    let json = std::fs::read_to_string(tc.out.join("corpus.json")).unwrap();
    assert!(json.contains("line 3"), "{json}");
    assert!(json.contains("\"failed\": 1"), "{json}");
}

#[test]
fn driver_level_failures_do_fail() {
    let (ok, _, stderr) = rsat(&["corpus", "/nonexistent_rsat_dir"]);
    assert!(!ok);
    assert!(stderr.contains("cannot read directory"), "{stderr}");

    // reduce/pipeline modes require a budget
    let (ok, _, stderr) = rsat(&["corpus", &fixtures(), "--mode", "reduce"]);
    assert!(!ok);
    assert!(stderr.contains("--registers"), "{stderr}");

    // a zero budget is rejected at flag parsing, not by a worker panic
    let (ok, _, stderr) = rsat(&[
        "corpus",
        &fixtures(),
        "--mode",
        "reduce",
        "--registers",
        "0",
    ]);
    assert!(!ok);
    assert!(stderr.contains("at least 1"), "{stderr}");
}

#[test]
fn jobs_one_and_four_summaries_agree() {
    // library-level check on the shipped fixtures across all three modes
    for mode in [
        CorpusMode::Analyze,
        CorpusMode::Reduce { registers: 3 },
        CorpusMode::Pipeline { registers: 3 },
    ] {
        let one = run_corpus(
            Path::new(&fixtures()),
            &CorpusOptions {
                jobs: 1,
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        let four = run_corpus(
            Path::new(&fixtures()),
            &CorpusOptions {
                jobs: 4,
                mode,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.file_count, four.file_count);
        assert_eq!(one.failed, four.failed);
        for (a, b) in one.files.iter().zip(&four.files) {
            assert_eq!(a.deterministic_view(), b.deterministic_view(), "{mode:?}");
        }
    }
}

#[test]
fn pipeline_mode_reports_reductions() {
    let tc = TempCorpus::new("pipeline");
    let dir = tc.dir.to_str().unwrap();
    let out = tc.out.to_str().unwrap();
    let (ok, stdout, stderr) = rsat(&[
        "corpus",
        dir,
        "--mode",
        "pipeline",
        "--registers",
        "3",
        "--out",
        out,
    ]);
    assert!(ok, "{stderr}");
    assert!(stdout.contains("budget 3"), "{stdout}");
    // expr needs one serialization arc to fit 3 registers
    assert!(stdout.contains("RS* = 4 -> 3"), "{stdout}");
}
