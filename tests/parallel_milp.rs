//! Parallel-vs-sequential agreement of the MILP engine on real
//! register-saturation models.
//!
//! The statically-partitioned branch-and-bound search promises that the
//! *entire tree* — not just the optimal objective — is independent of the
//! worker thread count: nodes are processed in deterministic rounds with
//! per-round frozen pseudocosts and incumbents, so node counts and the
//! committed-trace digest are byte-identical at every `threads` value.
//! These tests check that promise on the actual Section-3 intLP models
//! (not just synthetic knapsacks): random kernels are generated, their
//! saturation models built, and each is solved across the {1, 2, 4}
//! thread grid with pseudocost branching explicitly on; objectives, node
//! counts, and trace digests must match exactly and every witness must be
//! feasible.

mod common;

use common::budget_limited;
use proptest::prelude::*;
use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::MilpConfig;

/// Builds the saturation intLP of a seeded random kernel; `None` when the
/// kernel has fewer than two float values (trivial model).
fn rs_model(ops: usize, seed: u64) -> Option<rs_lp::Model> {
    let cfg = RandomDagConfig::sized(ops, seed);
    let ddg = random_ddg(&cfg, Target::superscalar());
    if ddg.values(RegType::FLOAT).len() < 2 {
        return None;
    }
    Some(RsIlp::new().build_model(&ddg, RegType::FLOAT).0)
}

proptest! {
    // Each case solves a full intLP twice; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn threads_dont_change_rs_objective(
        ops in 8usize..=12,
        seed in 0u64..200,
    ) {
        let Some(model) = rs_model(ops, 0x5EED_7000 + seed) else {
            return Ok(());
        };
        // A minority of random kernels fall off a big-M cliff; a short
        // budget keeps the suite fast, and budget-limited runs are skipped
        // below (how far a search gets within a wall-clock budget is
        // legitimately thread-count- and machine-dependent — only *proven*
        // optima carry the determinism guarantee).
        let cfg = MilpConfig {
            time_limit: Some(std::time::Duration::from_secs(30)),
            // The acceptance bar for the full accelerator stack: pseudocost
            // branching, root/node cutting planes, dual steepest-edge
            // pricing, and bound propagation all explicitly on — the tree
            // must stay identical across the whole thread grid with every
            // tree-shaping feature active, not just in a stripped engine.
            pseudocost: true,
            cuts: true,
            pricing: rs_lp::Pricing::DualSteepestEdge,
            propagation: true,
            ..MilpConfig::default()
        };
        let seq = rs_lp::solve(&model, &cfg);
        if budget_limited(&seq) {
            return Ok(());
        }
        for threads in [2usize, 4] {
            let par = rs_lp::solve(&model, &MilpConfig { threads, ..cfg.clone() });
            if budget_limited(&par) {
                continue;
            }
            match (&seq, par) {
                (Ok(s), Ok(p)) => {
                    prop_assert_eq!(
                        s.objective.round() as i64,
                        p.objective.round() as i64,
                        "ops={} seed={} threads={}", ops, seed, threads
                    );
                    // Same tree, not just same answer: the partitioned
                    // search commits identical rounds at every thread
                    // count.
                    prop_assert_eq!(
                        s.stats.nodes, p.stats.nodes,
                        "ops={} seed={} threads={} changed the node count",
                        ops, seed, threads
                    );
                    prop_assert_eq!(
                        s.stats.trace_digest, p.stats.trace_digest,
                        "ops={} seed={} threads={} changed the trace digest",
                        ops, seed, threads
                    );
                    prop_assert!(model.check_feasible(&s.values, 1e-5).is_ok());
                    prop_assert!(model.check_feasible(&p.values, 1e-5).is_ok());
                    prop_assert_eq!(
                        p.stats.dive_reinstalls, 0,
                        "dive steps must never reinstall a basis"
                    );
                    // Separation is part of the deterministic contract:
                    // every worker count must cut the same planes in the
                    // same rounds and fathom the same nodes by propagation.
                    prop_assert_eq!(
                        (s.stats.cuts_added, s.stats.cut_rounds, s.stats.propagation_fathoms),
                        (p.stats.cuts_added, p.stats.cut_rounds, p.stats.propagation_fathoms),
                        "ops={} seed={} threads={} changed cut/propagation behavior",
                        ops, seed, threads
                    );
                }
                (Err(a), Err(b)) => prop_assert_eq!(a.clone(), b),
                (a, b) => prop_assert!(
                    false,
                    "thread count {} changed the outcome class: seq {:?} vs par {:?}",
                    threads, a.as_ref().map(|s| s.objective), b.map(|s| s.objective)
                ),
            }
        }
    }
}

#[test]
fn bench_grid_trees_are_thread_invariant_with_cuts_and_dse() {
    // The exact instances the scaling bench pins, solved with the full
    // accelerator stack at every thread count: one fixed (nodes, digest,
    // cuts, fathoms) tuple per size. This is the `nodes_invariant` /
    // per-cell trace-digest acceptance check, runnable outside the bench
    // harness.
    for (size, seed) in [(12usize, 1u64), (14, 0), (18, 4)] {
        let cfg = RandomDagConfig::sized(size, 0xBEEF + size as u64 + seed * 7919);
        let ddg = random_ddg(&cfg, Target::superscalar());
        let model = RsIlp::new().build_model(&ddg, RegType::FLOAT).0;
        let mut baseline: Option<(f64, usize, u64, usize, usize)> = None;
        for threads in [1usize, 2, 4] {
            let sol = rs_lp::solve(
                &model,
                &MilpConfig {
                    threads,
                    cuts: true,
                    pricing: rs_lp::Pricing::DualSteepestEdge,
                    propagation: true,
                    ..MilpConfig::default()
                },
            )
            .expect("grid instance solves");
            assert!(sol.stats.proven_optimal, "size {size} threads {threads}");
            let tuple = (
                sol.objective,
                sol.stats.nodes,
                sol.stats.trace_digest,
                sol.stats.cuts_added,
                sol.stats.propagation_fathoms,
            );
            match &baseline {
                None => baseline = Some(tuple),
                Some(b) => assert_eq!(*b, tuple, "size {size}: threads {threads} changed the tree"),
            }
        }
    }
}

#[test]
fn exact_rs_threads_agree_on_kernels() {
    // The combinatorial exact solver's root split must match its
    // sequential saturation on the named kernel corpus.
    use rs_core::exact::ExactRs;
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        for t in ddg.reg_types() {
            if ddg.values(t).len() < 2 {
                continue;
            }
            let seq = ExactRs::new().saturation(&ddg, t);
            let par = ExactRs::with_threads(4).saturation(&ddg, t);
            assert_eq!(
                seq.saturation, par.saturation,
                "kernel {} type {:?}",
                k.name, t
            );
            assert_eq!(seq.proven_optimal, par.proven_optimal);
        }
    }
}
