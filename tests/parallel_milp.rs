//! Parallel-vs-sequential agreement of the MILP engine on real
//! register-saturation models.
//!
//! The branch-and-bound node pool promises that the optimal objective is
//! independent of the worker thread count. These tests check that promise
//! on the actual Section-3 intLP models (not just synthetic knapsacks):
//! random kernels are generated, their saturation models built, and each is
//! solved with 1 and 4 threads; objectives must match exactly and both
//! witnesses must be feasible.

mod common;

use common::budget_limited;
use proptest::prelude::*;
use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::MilpConfig;

/// Builds the saturation intLP of a seeded random kernel; `None` when the
/// kernel has fewer than two float values (trivial model).
fn rs_model(ops: usize, seed: u64) -> Option<rs_lp::Model> {
    let cfg = RandomDagConfig::sized(ops, seed);
    let ddg = random_ddg(&cfg, Target::superscalar());
    if ddg.values(RegType::FLOAT).len() < 2 {
        return None;
    }
    Some(RsIlp::new().build_model(&ddg, RegType::FLOAT).0)
}

proptest! {
    // Each case solves a full intLP twice; keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn threads_dont_change_rs_objective(
        ops in 8usize..=12,
        seed in 0u64..200,
    ) {
        let Some(model) = rs_model(ops, 0x5EED_7000 + seed) else {
            return Ok(());
        };
        // A minority of random kernels fall off a big-M cliff; a short
        // budget keeps the suite fast, and budget-limited runs are skipped
        // below (how far a search gets within a wall-clock budget is
        // legitimately thread-count- and machine-dependent — only *proven*
        // optima carry the determinism guarantee).
        let cfg = MilpConfig {
            time_limit: Some(std::time::Duration::from_secs(30)),
            ..MilpConfig::default()
        };
        let seq = rs_lp::solve(&model, &cfg);
        let par = rs_lp::solve(&model, &MilpConfig { threads: 4, ..cfg });
        if budget_limited(&seq) || budget_limited(&par) {
            return Ok(());
        }
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                prop_assert_eq!(
                    s.objective.round() as i64,
                    p.objective.round() as i64,
                    "ops={} seed={}", ops, seed
                );
                prop_assert!(model.check_feasible(&s.values, 1e-5).is_ok());
                prop_assert!(model.check_feasible(&p.values, 1e-5).is_ok());
            }
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (a, b) => prop_assert!(
                false,
                "thread count changed the outcome class: seq {:?} vs par {:?}",
                a.map(|s| s.objective), b.map(|s| s.objective)
            ),
        }
    }
}

#[test]
fn exact_rs_threads_agree_on_kernels() {
    // The combinatorial exact solver's root split must match its
    // sequential saturation on the named kernel corpus.
    use rs_core::exact::ExactRs;
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        for t in ddg.reg_types() {
            if ddg.values(t).len() < 2 {
                continue;
            }
            let seq = ExactRs::new().saturation(&ddg, t);
            let par = ExactRs::with_threads(4).saturation(&ddg, t);
            assert_eq!(
                seq.saturation, par.saturation,
                "kernel {} type {:?}",
                k.name, t
            );
            assert_eq!(seq.proven_optimal, par.proven_optimal);
        }
    }
}
