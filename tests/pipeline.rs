//! F1 — the Figure-1 pipeline, end to end across all crates:
//! saturation analysis → reduction → resource-constrained scheduling →
//! register allocation, with the paper's guarantee: zero spills whenever
//! the reduction succeeded.

use register_saturation::prelude::*;
use rs_core::model::Target;
use rs_kernels::random::{random_ddg, RandomDagConfig};

fn full_pipeline(mut ddg: Ddg, budget: usize) -> (bool, usize) {
    let report = Pipeline {
        budgets: vec![(RegType::INT, budget), (RegType::FLOAT, budget)],
        verify_exact: true,
    }
    .run(&mut ddg);
    // verified saturations must agree with the fit claim
    for t in &report.types {
        if t.fits {
            assert!(
                t.verified_rs.unwrap() <= t.budget,
                "type {} claims fit but exact RS = {:?} > {}",
                t.reg_type,
                t.verified_rs,
                t.budget
            );
        }
    }
    if !report.all_fit() {
        return (false, 0);
    }
    let sched = ListScheduler::new(Resources::four_issue()).schedule(&ddg);
    assert!(rs_core::lifetime::is_valid_schedule(&ddg, &sched.sigma));
    let mut spills = 0;
    for t in ddg.reg_types() {
        let alloc = RegisterAllocator::new().allocate(&ddg, t, &sched.sigma, budget);
        spills += alloc.spilled.len();
        // allocated registers never exceed the budget
        assert!(alloc.registers_used <= budget);
    }
    (true, spills)
}

#[test]
fn kernels_pipeline_no_spills() {
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        for budget in [4usize, 6, 8] {
            let (fits, spills) = full_pipeline(ddg.clone(), budget);
            if fits {
                assert_eq!(spills, 0, "{} at budget {budget} spilled", k.name);
            }
        }
    }
}

#[test]
fn random_dags_pipeline_no_spills() {
    for seed in 0..15u64 {
        let ddg = random_ddg(
            &RandomDagConfig::sized(18, 0xAB + seed),
            Target::superscalar(),
        );
        for budget in [3usize, 5] {
            let (fits, spills) = full_pipeline(ddg.clone(), budget);
            if fits {
                assert_eq!(spills, 0, "seed {seed} at budget {budget} spilled");
            }
        }
    }
}

#[test]
fn vliw_pipeline_no_spills() {
    for k in rs_kernels::corpus().into_iter().take(6) {
        let ddg = (k.build)(Target::vliw());
        let (fits, spills) = full_pipeline(ddg.clone(), 6);
        if fits {
            assert_eq!(spills, 0, "{} (VLIW) spilled", k.name);
        }
    }
}

#[test]
fn pipeline_is_idempotent_when_fitting() {
    // running the pipeline twice must not add more arcs the second time
    let k = rs_kernels::corpus()
        .into_iter()
        .find(|k| k.name == "ddot")
        .unwrap();
    let mut ddg = (k.build)(Target::superscalar());
    let r1 = Pipeline::uniform(6).run(&mut ddg);
    let edges_after_first = ddg.graph().edge_count();
    let r2 = Pipeline::uniform(6).run(&mut ddg);
    assert!(r1.all_fit() && r2.all_fit());
    assert_eq!(r2.total_arcs_added(), 0, "second run must be a no-op");
    assert_eq!(ddg.graph().edge_count(), edges_after_first);
}
