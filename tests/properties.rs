//! Property-based integration tests over randomly generated DDGs: the
//! theory-level invariants the whole framework rests on.

use proptest::prelude::*;
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::lifetime::{asap_schedule, is_valid_schedule, register_need};
use rs_core::model::{RegType, Target};
use rs_core::reduce::Reducer;
use rs_kernels::random::{random_ddg, RandomDagConfig};

fn arb_config() -> impl Strategy<Value = RandomDagConfig> {
    (
        6usize..=18,
        2usize..=6,
        0.1f64..0.5,
        0.4f64..0.9,
        any::<u64>(),
    )
        .prop_map(
            |(ops, layers, edge_prob, value_ratio, seed)| RandomDagConfig {
                ops,
                layers,
                edge_prob,
                value_ratio,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `RN_σ(asap) ≤ RS* ≤ RS ≤ |V_R|` — the fundamental sandwich.
    #[test]
    fn saturation_sandwich(cfg in arb_config()) {
        let ddg = random_ddg(&cfg, Target::superscalar());
        let t = RegType::FLOAT;
        let values = ddg.values(t).len();
        let h = GreedyK::new().saturation(&ddg, t).saturation;
        let e = ExactRs::new().saturation(&ddg, t);
        prop_assert!(h <= e.saturation, "RS* {h} > RS {}", e.saturation);
        prop_assert!(e.saturation <= values);
        let asap = asap_schedule(&ddg);
        prop_assert!(is_valid_schedule(&ddg, &asap));
        let rn = register_need(&ddg, t, &asap);
        if e.proven_optimal {
            prop_assert!(rn <= e.saturation, "RN(asap) {rn} > RS {}", e.saturation);
        }
    }

    /// The heuristic's witness is achievable: its saturating values are
    /// pairwise simultaneously alive under SOME schedule — checked through
    /// the killing-function invariants.
    #[test]
    fn heuristic_killing_is_valid(cfg in arb_config()) {
        let ddg = random_ddg(&cfg, Target::superscalar());
        let t = RegType::FLOAT;
        if ddg.values(t).is_empty() {
            return Ok(());
        }
        let analysis = GreedyK::new().saturation(&ddg, t);
        let lp = rs_graph::paths::LongestPaths::new(ddg.graph());
        let pk = rs_core::pkill::potential_killers(&ddg, t, &lp);
        prop_assert!(analysis.killing.respects(&pk));
        prop_assert_eq!(analysis.saturating_values.len(), analysis.saturation);
    }

    /// Reduction honours its budget (verified exactly) and keeps the graph
    /// acyclic with all original edges intact. Uses the exact-verified
    /// reducer: the plain heuristic may under-serialize when `RS*`
    /// under-estimates (that gap is exactly what experiment T2 measures).
    #[test]
    fn reduction_invariants(cfg in arb_config(), drop in 1usize..=2) {
        let mut ddg = random_ddg(&cfg, Target::superscalar());
        let t = RegType::FLOAT;
        let rs0 = GreedyK::new().saturation(&ddg, t).saturation;
        if rs0 <= drop {
            return Ok(());
        }
        let budget = rs0 - drop;
        let originals: Vec<_> = ddg.graph().edge_ids().collect();
        let out = Reducer { verify_exact: true, ..Reducer::new() }.reduce(&mut ddg, t, budget);
        prop_assert!(ddg.is_acyclic());
        for e in originals {
            prop_assert!(ddg.graph().edge_alive(e));
        }
        if out.fits() {
            let exact = ExactRs::new().saturation(&ddg, t);
            if exact.proven_optimal {
                prop_assert!(exact.saturation <= budget,
                    "claimed fit at {budget} but exact RS = {}", exact.saturation);
            }
        }
    }

    /// Scheduling after reduction allocates within the budget, zero spills.
    #[test]
    fn end_to_end_allocation(cfg in arb_config()) {
        let mut ddg = random_ddg(&cfg, Target::superscalar());
        let t = RegType::FLOAT;
        let rs0 = GreedyK::new().saturation(&ddg, t).saturation;
        if rs0 < 3 {
            return Ok(());
        }
        let budget = rs0 - 1;
        let out = Reducer { verify_exact: true, ..Reducer::new() }.reduce(&mut ddg, t, budget);
        if !out.fits() {
            return Ok(());
        }
        let sched = rs_sched::ListScheduler::new(rs_sched::Resources::four_issue()).schedule(&ddg);
        prop_assert!(is_valid_schedule(&ddg, &sched.sigma));
        let alloc = rs_sched::RegisterAllocator::new().allocate(&ddg, t, &sched.sigma, budget);
        prop_assert!(alloc.success(), "spilled {:?} at budget {budget}", alloc.spilled);
    }

    /// VLIW delay models preserve every invariant.
    #[test]
    fn vliw_invariants(cfg in arb_config()) {
        let ddg = random_ddg(&cfg, Target::vliw());
        let t = RegType::FLOAT;
        let h = GreedyK::new().saturation(&ddg, t).saturation;
        let e = ExactRs::new().saturation(&ddg, t);
        prop_assert!(h <= e.saturation);
        let asap = asap_schedule(&ddg);
        prop_assert!(is_valid_schedule(&ddg, &asap));
    }
}
