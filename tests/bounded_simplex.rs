//! Differential validation of the bounded-variable simplex on real
//! register-saturation intLPs.
//!
//! The bounded-variable rewrite (`rs_lp::simplex`) keeps the
//! explicit-bound-row formulation alive as a test-only reference engine
//! (`rs_lp::reference`). These tests build Section-3 saturation models from
//! random kernels and assert that the two formulations agree on the
//! optimal objective for every thread count, while the bounded path's
//! tableau contains exactly the structural constraint rows — zero bound
//! rows — and the reference path carries one extra row (and slack) per
//! finite upper bound.

mod common;

use common::budget_limited;
use proptest::prelude::*;
use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::MilpConfig;

/// Builds the saturation intLP of a seeded random kernel; `None` when the
/// kernel has fewer than two float values (trivial model).
fn rs_model(ops: usize, seed: u64) -> Option<rs_lp::Model> {
    let cfg = RandomDagConfig::sized(ops, seed);
    let ddg = random_ddg(&cfg, Target::superscalar());
    if ddg.values(RegType::FLOAT).len() < 2 {
        return None;
    }
    Some(RsIlp::new().build_model(&ddg, RegType::FLOAT).0)
}

proptest! {
    // Each case solves a full intLP three times (reference + two thread
    // counts); keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn bounded_matches_reference_on_random_kernel_intlps(
        ops in 6usize..=10,
        seed in 0u64..100,
    ) {
        let Some(model) = rs_model(ops, 0xB0DED + seed) else {
            return Ok(());
        };
        // Cliff instances exist in this family; a short budget keeps the
        // test fast and budget-limited runs are skipped symmetrically.
        let cfg = MilpConfig {
            time_limit: Some(std::time::Duration::from_secs(10)),
            ..MilpConfig::default()
        };
        // Budget-class outcomes (how far a search gets within the wall
        // clock) are machine- and thread-dependent and skipped; every
        // other divergence — including a spurious Infeasible from either
        // formulation — must fail the test.
        let reference = rs_lp::reference::solve_milp(&model, &cfg);
        if budget_limited(&reference) {
            return Ok(());
        }
        for threads in [1usize, 2] {
            let tcfg = MilpConfig { threads, ..cfg.clone() };
            let bounded = rs_lp::solve(&model, &tcfg);
            if budget_limited(&bounded) {
                continue;
            }
            match (&bounded, &reference) {
                (Ok(b), Ok(r)) => {
                    prop_assert!(
                        (b.objective - r.objective).abs() < 1e-6,
                        "ops={} seed={} threads={}: bounded {} vs reference {}",
                        ops, seed, threads, b.objective, r.objective
                    );
                    // Both engines presolve the same way, so the reference
                    // tableau exceeds the bounded one by exactly its
                    // explicit bound rows; the bounded path never has more
                    // rows than the structural constraints (presolve may
                    // fold singletons away, never add rows).
                    prop_assert!(
                        r.stats.rows > b.stats.rows,
                        "reference must carry explicit bound rows"
                    );
                    prop_assert!(
                        b.stats.rows <= model.num_constraints(),
                        "bounded path emitted bound rows"
                    );
                    prop_assert_eq!(
                        b.stats.dive_reinstalls, 0,
                        "dive steps must never reinstall a basis"
                    );
                    prop_assert!(model.check_feasible(&b.values, 1e-5).is_ok());
                }
                (Err(a), Err(b)) => prop_assert_eq!(a, b),
                (a, b) => prop_assert!(
                    false,
                    "ops={} seed={} threads={}: outcome classes diverge: bounded {:?} vs reference {:?}",
                    ops, seed, threads,
                    a.as_ref().map(|s| s.objective), b.as_ref().map(|s| s.objective)
                ),
            }
        }
    }
}

#[test]
fn tableau_shapes_on_a_real_kernel_model() {
    let model = rs_model(10, 0xB0DED).expect("kernel has float values");
    let (rows, cols) = rs_lp::tableau_shape(&model);
    let (ref_rows, ref_cols) = rs_lp::reference::tableau_shape(&model);
    assert_eq!(rows, model.num_constraints());
    // every finite upper bound adds a row and a slack on the reference path
    let finite_uppers = (0..model.num_vars())
        .filter(|&i| model.bounds(rs_lp::VarId(i as u32)).1.is_finite())
        .count();
    assert!(finite_uppers > 0);
    assert_eq!(ref_rows, rows + finite_uppers);
    assert_eq!(ref_cols, cols + finite_uppers);
}
