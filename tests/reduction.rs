//! Reduction invariants across the corpus (heuristic and exact intLP):
//! budgets are honoured, original edges survive, graphs stay acyclic and
//! schedulable, and the exact method is never worse than the heuristic on
//! ILP loss when both meet the budget.

use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::{ReduceIlp, ReduceIlpError};
use rs_core::model::{RegType, Target};
use rs_core::reduce::Reducer;
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::MilpConfig;

#[test]
fn heuristic_reduction_honours_budget_on_corpus() {
    for k in rs_kernels::corpus() {
        let base = (k.build)(Target::superscalar());
        let rs0 = GreedyK::new().saturation(&base, RegType::FLOAT).saturation;
        for drop in 1..=3usize {
            if rs0 <= drop + 1 {
                continue;
            }
            let budget = rs0 - drop;
            let mut ddg = base.clone();
            let out = Reducer::new().reduce(&mut ddg, RegType::FLOAT, budget);
            assert!(ddg.is_acyclic(), "{}: graph must stay schedulable", k.name);
            if out.fits() {
                let exact = ExactRs::new().saturation(&ddg, RegType::FLOAT);
                if exact.proven_optimal {
                    assert!(
                        exact.saturation <= budget,
                        "{} at R={budget}: exact RS after = {}",
                        k.name,
                        exact.saturation
                    );
                }
            }
        }
    }
}

#[test]
fn reduction_preserves_all_original_edges() {
    let k = rs_kernels::corpus()
        .into_iter()
        .find(|k| k.name == "lll7")
        .unwrap();
    let mut ddg = (k.build)(Target::superscalar());
    let originals: Vec<_> = ddg.graph().edge_ids().collect();
    let _ = Reducer::new().reduce(&mut ddg, RegType::FLOAT, 4);
    for e in originals {
        assert!(ddg.graph().edge_alive(e));
    }
}

#[test]
fn exact_reduction_matches_or_beats_heuristic_ilp_loss() {
    let mut compared = 0;
    for seed in 0..10u64 {
        let base = random_ddg(
            &RandomDagConfig::sized(7, 0xEE + seed),
            Target::superscalar(),
        );
        let nvals = base.values(RegType::FLOAT).len();
        if !(3..=5).contains(&nvals) {
            continue;
        }
        let rs0 = ExactRs::new().saturation(&base, RegType::FLOAT).saturation;
        if rs0 < 2 {
            continue;
        }
        let budget = rs0 - 1;
        let cp0 = base.critical_path();

        let mut heur = base.clone();
        let hout = Reducer::new().reduce(&mut heur, RegType::FLOAT, budget);

        let mut opt = base.clone();
        let milp = MilpConfig {
            time_limit: Some(std::time::Duration::from_secs(15)),
            ..MilpConfig::default()
        };
        let oout = ReduceIlp {
            milp,
            ..ReduceIlp::new()
        }
        .reduce(&mut opt, RegType::FLOAT, budget);

        match oout {
            Ok(res) => {
                assert!(opt.is_acyclic());
                let exact_after = ExactRs::new().saturation(&opt, RegType::FLOAT);
                if exact_after.proven_optimal && !res.repaired {
                    assert!(
                        exact_after.saturation <= budget,
                        "seed {seed}: intLP reduction exceeded budget ({} > {budget})",
                        exact_after.saturation
                    );
                }
                if hout.fits() && res.proven_optimal {
                    let h_loss = heur.critical_path() - cp0;
                    let o_loss = opt.critical_path() - cp0;
                    // the optimum minimizes makespan; its CP loss cannot
                    // exceed the heuristic's by more than the slack between
                    // CP and the witness makespan bound
                    assert!(
                        o_loss <= h_loss.max(res.makespan - cp0),
                        "seed {seed}: optimal ILP loss {o_loss} worse than heuristic {h_loss}"
                    );
                    compared += 1;
                }
            }
            Err(ReduceIlpError::SpillUnavoidable) => {
                // then the heuristic must fail too (it cannot do the impossible)
                assert!(
                    !hout.fits(),
                    "seed {seed}: heuristic claims success where intLP proves infeasibility"
                );
            }
            Err(ReduceIlpError::Budget) => {}
            Err(ReduceIlpError::Rejected(e)) => {
                panic!("seed {seed}: audit rejected a generated model: {e}")
            }
        }
    }
    assert!(compared >= 2, "only {compared} feasible comparisons ran");
}

#[test]
fn failed_reduction_leaves_schedulable_graph() {
    // impossible budgets: the graph must survive the attempt
    for k in rs_kernels::corpus().into_iter().take(5) {
        let mut ddg = (k.build)(Target::superscalar());
        let _ = Reducer::new().reduce(&mut ddg, RegType::FLOAT, 1);
        assert!(ddg.is_acyclic(), "{}", k.name);
        // and scheduling still works
        let sched = rs_sched::ListScheduler::new(rs_sched::Resources::four_issue()).schedule(&ddg);
        assert!(rs_core::lifetime::is_valid_schedule(&ddg, &sched.sigma));
    }
}
