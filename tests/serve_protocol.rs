//! Wire-protocol tests for the `rsat serve` request/response API: JSON
//! round-trips of the shared schema (property-based, with escape-heavy
//! strings), daemon-level fault containment, cache determinism, and the
//! stdio + Unix-socket transports driven through the real `rsat` binary.

use proptest::prelude::*;
use rs_core::request::{
    CacheInfo, RsError, RsOp, RsRequest, RsResponse, RsResult, SolveResult, TypeResult,
};
use serde::Deserialize;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Strings that stress JSON escaping and must survive a round trip intact.
fn tricky_string(seed: u64) -> String {
    const PIECES: &[&str] = &[
        "plain",
        "with \"quotes\" inside",
        "line\nbreak and\r carriage",
        "back\\slash c:\\tmp",
        "tab\there",
        "unicode ⊥ λ ≤ ∞",
        "{\"looks\":\"like json\"}",
        "",
        "control \u{1} byte",
    ];
    PIECES[(seed % PIECES.len() as u64) as usize].to_string()
}

fn request_from_seed(seed: u64) -> RsRequest {
    let op = match seed % 3 {
        0 => RsOp::Analyze,
        1 => RsOp::Reduce,
        _ => RsOp::Pipeline,
    };
    let mut req = RsRequest::new(op, format!("op a load float\n{}", tricky_string(seed)));
    req.id = (seed % 4 != 0).then(|| tricky_string(seed / 3));
    req.reg_type = (seed % 5 == 0).then(|| "float".to_string());
    req.registers = (seed % 2 == 0).then_some((seed % 7) as usize);
    req.exact = seed % 2 == 1;
    req.ilp = seed % 3 == 1;
    req.stats = seed % 5 == 1;
    req.spill = seed % 7 == 1;
    req.emit_ddg = seed % 11 == 1;
    req.threads = 1 + (seed % 4) as usize;
    req.issue = (seed % 3 == 2).then_some(4);
    req.cache = seed % 2 == 0;
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `RsRequest` → JSON → `Value` → `RsRequest` is the identity, for every
    /// field combination including escape-heavy strings.
    #[test]
    fn request_json_round_trips(seed in 0u64..1_000_000) {
        let req = request_from_seed(seed);
        let json = serde_json::to_string(&req).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let back = RsRequest::from_value(&value).unwrap();
        prop_assert_eq!(back, req);
    }

    /// `RsResponse` round-trips through its wire form, success and failure
    /// shapes alike.
    #[test]
    fn response_json_round_trips(seed in 0u64..1_000_000) {
        let cache = CacheInfo {
            hit: seed % 2 == 0,
            hits: seed % 13,
            misses: seed % 17,
        };
        let resp = if seed % 3 == 0 {
            RsResponse::failure(
                Some(tricky_string(seed)),
                RsError::new("parse", tricky_string(seed / 2)),
                cache,
                0.25,
            )
        } else {
            let result = RsResult {
                ops: (seed % 40) as usize,
                edges: (seed % 60) as usize,
                critical_path: (seed % 100) as i64,
                types: vec![TypeResult {
                    reg_type: "float".to_string(),
                    values: 3,
                    saturation: (seed % 8) as usize,
                    saturating: vec![tricky_string(seed), tricky_string(seed + 1)],
                    optimal: seed % 2 == 1,
                    exact: (seed % 4 == 0).then_some(SolveResult {
                        saturation: 3,
                        proven_optimal: true,
                        bound: (seed % 8 == 4).then_some(5),
                        // Resume tokens are raw JSON strings — escape-heavy
                        // content must round-trip inside the field.
                        resume: (seed % 8 == 0).then(|| tricky_string(seed / 3)),
                        resumed: seed % 16 == 0,
                    }),
                    ilp: None,
                    ilp_stats: None,
                    ilp_error: (seed % 5 == 0)
                        .then(|| RsError::new("engine", tricky_string(seed / 5))),
                    reduce: None,
                    alloc: None,
                }],
                makespan: (seed % 2 == 0).then_some((seed % 50) as i64),
                ddg_out: (seed % 3 == 1).then(|| tricky_string(seed / 7)),
            };
            RsResponse::success(Some(tricky_string(seed)), result, cache, 1.5)
        };
        let json = serde_json::to_string(&resp).unwrap();
        let value = serde_json::from_str(&json).unwrap();
        let back = RsResponse::from_value(&value).unwrap();
        prop_assert_eq!(back, resp);
    }
}

fn spawn_serve(extra: &[&str]) -> Child {
    Command::new(env!("CARGO_BIN_EXE_rsat"))
        .arg("serve")
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn rsat serve")
}

fn analyze_line(ddg: &str, id: &str) -> String {
    let mut req = RsRequest::new(RsOp::Analyze, ddg);
    req.id = Some(id.to_string());
    serde_json::to_string(&req).unwrap()
}

/// Drives the real binary over stdio: a malformed line mid-stream must
/// answer `ok:false` without killing the daemon or disturbing the order or
/// content of surrounding responses.
#[test]
fn daemon_stdio_contains_malformed_requests() {
    let mut child = spawn_serve(&["--workers", "2"]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let good = analyze_line("op a load float\nop s store none\nflow a s 4 float\n", "g");
    writeln!(stdin, "{good}").unwrap();
    writeln!(stdin, "this is not a request").unwrap();
    writeln!(stdin, "{good}").unwrap();
    drop(stdin); // EOF: daemon drains and exits
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success(), "daemon must exit cleanly");
    let text = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "one response per request line: {text}");
    let oks: Vec<bool> = lines
        .iter()
        .map(|l| {
            serde_json::from_str(l)
                .expect("response is valid JSON")
                .get("ok")
                .and_then(|v| v.as_bool())
                .expect("response has ok")
        })
        .collect();
    assert_eq!(oks, vec![true, false, true]);
}

/// The same request twice through the daemon: the second answer must come
/// from the cache and carry a bit-identical `result`.
#[test]
fn daemon_cache_hit_is_bit_identical() {
    let mut child = spawn_serve(&["--workers", "1"]);
    let mut stdin = child.stdin.take().expect("piped stdin");
    let line = analyze_line("op a load float\nop b load float\n", "twice");
    writeln!(stdin, "{line}").unwrap();
    writeln!(stdin, "{line}").unwrap();
    drop(stdin);
    let out = child.wait_with_output().expect("daemon exit");
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    let values: Vec<serde::Value> = text
        .lines()
        .map(|l| serde_json::from_str(l).expect("valid response JSON"))
        .collect();
    assert_eq!(values.len(), 2);
    let hit_of = |v: &serde::Value| {
        v.get("cache")
            .and_then(|c| c.get("hit"))
            .and_then(|h| h.as_bool())
            .expect("cache.hit present")
    };
    assert!(!hit_of(&values[0]), "first request computes cold");
    assert!(hit_of(&values[1]), "second request hits the cache");
    let result_json = |v: &serde::Value| {
        serde_json::to_string(v.get("result").expect("ok response carries result")).unwrap()
    };
    assert_eq!(
        result_json(&values[0]),
        result_json(&values[1]),
        "cache hit must replay the cold result bit-identically"
    );
}

/// Socket transport through the real binary: bind, connect, round-trip one
/// request, then stop via stdin EOF — the socket file must be gone after a
/// clean exit.
#[test]
fn daemon_unix_socket_round_trip() {
    let path = std::env::temp_dir().join(format!("rsat-proto-test-{}.sock", std::process::id()));
    let path_str = path.to_str().unwrap().to_string();
    let mut child = spawn_serve(&["--workers", "1", "--socket", &path_str]);

    // The daemon binds asynchronously; retry the connect briefly.
    let deadline = Instant::now() + Duration::from_secs(10);
    let client = loop {
        match UnixStream::connect(&path) {
            Ok(c) => break c,
            Err(_) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(e) => panic!("daemon never bound {path_str}: {e}"),
        }
    };
    let mut writer = client.try_clone().unwrap();
    writeln!(writer, "{}", analyze_line("op a load float\n", "sock")).unwrap();
    let mut reader = BufReader::new(client);
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    let value: serde::Value = serde_json::from_str(response.trim()).unwrap();
    assert_eq!(value.get("ok").and_then(|v| v.as_bool()), Some(true));
    assert_eq!(value.get("id").and_then(|v| v.as_str()), Some("sock"));
    drop(reader);
    drop(writer);

    drop(child.stdin.take()); // EOF on stdin stops the daemon
    let status = child.wait().expect("daemon exit");
    assert!(status.success());
    assert!(!path.exists(), "socket file removed on clean shutdown");
}
