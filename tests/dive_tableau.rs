//! Differential validation of the incremental dive tableau.
//!
//! `rs_lp::DiveTableau` keeps a factorized simplex tableau live across a
//! chain of bound tightenings, applying each batch as in-place rank-1
//! right-hand-side folds plus dual repair — no tableau rebuild and no
//! basis reinstall. These proptests drive random chains of tightenings
//! (single and batched, upper and lower, including variable fixings)
//! through a live tableau and check every step against a **fresh cold
//! solve** of the same bounds: outcome classes must match, optimal
//! objectives must agree, and extracted solutions must be feasible.

use proptest::prelude::*;
use rs_lp::{Cmp, DiveStep, DiveTableau, LinExpr, LpOutcome, Model, Sense, VarId, VarKind};

/// Random bounded LP over `nvars` variables with small integer data.
fn build_lp(
    nvars: usize,
    widths: &[i64],
    cons: &[(Vec<i64>, i64, u8)],
    obj: &[i64],
    maximize: bool,
) -> Model {
    let sense = if maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..nvars)
        .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, widths[i] as f64))
        .collect();
    for (coefs, rhs, cmp) in cons {
        let mut e = LinExpr::new();
        for (i, &c) in coefs.iter().enumerate() {
            e = e + (c as f64, vars[i]);
        }
        let cmp = match cmp % 3 {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constraint(e, cmp, *rhs as f64);
    }
    let mut o = LinExpr::new();
    for (i, &c) in obj.iter().enumerate() {
        o = o + (c as f64, vars[i]);
    }
    m.set_objective(o);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// A chain of random single-variable tightenings on a live dive
    /// tableau must track fresh cold solves exactly, step by step.
    #[test]
    fn tighten_chain_matches_cold_solves(
        widths in proptest::collection::vec(1i64..=6, 4..5),
        cons in proptest::collection::vec(
            (proptest::collection::vec(-3i64..=3, 4..5), -6i64..=18, 0u8..=8), 1..5),
        obj in proptest::collection::vec(-4i64..=4, 4..5),
        maximize in any::<bool>(),
        // (variable, keep-fraction of current range, tighten-lower?) steps
        steps in proptest::collection::vec(
            (0usize..4, 0u8..=4, any::<bool>()), 1..8),
    ) {
        let mut model = build_lp(4, &widths, &cons, &obj, maximize);
        let (out, dt, _) = DiveTableau::new(&model);
        let mut dt = match (out, dt) {
            (LpOutcome::Optimal(sol), Some(dt)) => {
                prop_assert!(model.check_feasible(&sol.values, 1e-6).is_ok());
                dt
            }
            // Infeasible/unbounded root: nothing to dive from; the
            // constructor agreeing with the cold solver is already covered
            // by the shared cold path.
            _ => return Ok(()),
        };

        for &(vi, keep, tighten_lower) in &steps {
            let v = VarId(vi as u32);
            let (lo, hi) = dt.bounds(v);
            prop_assert_eq!((lo, hi), model.bounds(v), "tableau and model bounds diverged");
            // New sub-interval: keep `keep`/4 of the current range from
            // one end (keep == 0 fixes the variable at that end).
            let range = hi - lo;
            let kept = range * f64::from(keep) / 4.0;
            let (nlo, nhi) = if tighten_lower {
                (hi - kept, hi)
            } else {
                (lo, lo + kept)
            };
            if !dt_step(&mut dt, &mut model, &[(v, nlo, nhi)])? {
                break;
            }
        }
    }

    /// Batched tightenings (several variables fixed at once — the dive
    /// heuristic's vector step) must also track cold solves.
    #[test]
    fn batch_fixes_match_cold_solves(
        widths in proptest::collection::vec(1i64..=5, 5..6),
        cons in proptest::collection::vec(
            (proptest::collection::vec(-2i64..=3, 5..6), 0i64..=20, 0u8..=8), 1..4),
        obj in proptest::collection::vec(-3i64..=4, 5..6),
        maximize in any::<bool>(),
        batches in proptest::collection::vec(
            proptest::collection::vec((0usize..5, 0u8..=5), 1..4), 1..4),
    ) {
        let mut model = build_lp(5, &widths, &cons, &obj, maximize);
        let (out, dt, _) = DiveTableau::new(&model);
        let mut dt = match (out, dt) {
            (LpOutcome::Optimal(_), Some(dt)) => dt,
            _ => return Ok(()),
        };
        for batch in &batches {
            let mut changes: Vec<(VarId, f64, f64)> = Vec::new();
            for &(vi, num) in batch {
                let v = VarId(vi as u32);
                if changes.iter().any(|&(w, _, _)| w == v) {
                    continue;
                }
                let (lo, hi) = dt.bounds(v);
                // Fix at a point of the current interval.
                let t = lo + (hi - lo) * f64::from(num) / 5.0;
                changes.push((v, t, t));
            }
            if !dt_step(&mut dt, &mut model, &changes)? {
                break;
            }
        }
    }
}

/// Applies one tightening step to both the live tableau and the model,
/// then cross-checks the live result against a fresh cold solve. Returns
/// whether the chain can continue (`false` once the subproblem is proven
/// infeasible, or on a rare soft stall).
fn dt_step(
    dt: &mut DiveTableau,
    model: &mut Model,
    changes: &[(VarId, f64, f64)],
) -> Result<bool, TestCaseError> {
    for &(v, nlo, nhi) in changes {
        let (lo, hi) = model.bounds(v);
        model.set_bounds(v, nlo.clamp(lo, hi), nhi.clamp(lo, hi));
    }
    let step = dt.tighten(changes, model);
    let cold = rs_lp::solve_relaxation(model);
    match (&step, &cold) {
        (DiveStep::Optimal(warm), LpOutcome::Optimal(cold)) => {
            prop_assert!(
                (warm.objective - cold.objective).abs() < 1e-6,
                "objectives diverge after {changes:?}: dive {} vs cold {}",
                warm.objective,
                cold.objective
            );
            prop_assert!(
                model.check_feasible(&warm.values, 1e-6).is_ok(),
                "dive solution infeasible after {changes:?}: {:?}",
                model.check_feasible(&warm.values, 1e-6)
            );
            Ok(true)
        }
        // Both agree the tightened box is empty; the chain cannot continue
        // from an infeasible tableau.
        (DiveStep::Infeasible, LpOutcome::Infeasible) => Ok(false),
        // Soft failure (iteration budget); rare and legal — skip the rest
        // of the chain.
        (DiveStep::Stalled, _) => Ok(false),
        (a, b) => {
            prop_assert!(
                false,
                "outcome classes diverge after {changes:?}: dive {a:?} vs cold {b:?}"
            );
            Ok(false)
        }
    }
}
