//! Integration tests for the `rsat` command-line tool and the DDG text
//! format shipped in `examples/data/`.

use std::process::Command;

fn rsat(args: &[&str]) -> (bool, String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_rsat"))
        .args(args)
        .output()
        .expect("run rsat");
    (
        out.status.success(),
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
    )
}

fn data(name: &str) -> String {
    format!("{}/examples/data/{name}", env!("CARGO_MANIFEST_DIR"))
}

#[test]
fn analyze_smoke_on_shipped_fixtures() {
    // Every fixture under examples/data/ must stay analysable: `rsat
    // analyze` exits 0 and reports a saturation value for each.
    let dir = format!("{}/examples/data", env!("CARGO_MANIFEST_DIR"));
    let mut fixtures: Vec<String> = std::fs::read_dir(&dir)
        .expect("read examples/data")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name().into_string().unwrap();
            name.ends_with(".ddg").then_some(name)
        })
        .collect();
    fixtures.sort();
    assert!(fixtures.len() >= 2, "expected shipped fixtures in {dir}");
    for fixture in &fixtures {
        let (ok, stdout, stderr) = rsat(&["analyze", &data(fixture)]);
        assert!(ok, "analyze {fixture} failed: {stderr}");
        assert!(stdout.contains("RS* ="), "{fixture}: {stdout}");
    }
}

#[test]
fn analyze_reports_saturation() {
    let (ok, stdout, _) = rsat(&["analyze", &data("expr.ddg"), "--exact"]);
    assert!(ok);
    assert!(stdout.contains("RS* = 4"), "{stdout}");
    assert!(stdout.contains("exact RS = 4"), "{stdout}");
    assert!(stdout.contains("saturating values"), "{stdout}");
}

#[test]
fn reduce_roundtrips_through_the_text_format() {
    let out_path = std::env::temp_dir().join("rsat_test_reduced.ddg");
    let out_str = out_path.to_str().unwrap();
    let (ok, stdout, _) = rsat(&[
        "reduce",
        &data("expr.ddg"),
        "--registers",
        "3",
        "--output",
        out_str,
    ]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("RS 4 -> 3"), "{stdout}");

    // the written file parses and analyses to the reduced saturation
    let (ok, stdout, _) = rsat(&["analyze", out_str, "--exact"]);
    assert!(ok);
    assert!(stdout.contains("exact RS = 3"), "{stdout}");
    let _ = std::fs::remove_file(out_path);
}

#[test]
fn pipeline_reports_zero_spills() {
    let (ok, stdout, _) = rsat(&["pipeline", &data("daxpy.ddg"), "--registers", "4"]);
    assert!(ok, "{stdout}");
    assert!(stdout.contains("0 spills"), "{stdout}");
    assert!(stdout.contains("makespan"), "{stdout}");
}

#[test]
fn dot_emits_graphviz() {
    let (ok, stdout, _) = rsat(&["dot", &data("expr.ddg")]);
    assert!(ok);
    assert!(stdout.starts_with("digraph"));
    assert!(stdout.contains("->"));
}

#[test]
fn impossible_budget_suggests_spill_flag() {
    let (ok, _, stderr) = rsat(&["reduce", &data("expr.ddg"), "--registers", "1"]);
    assert!(!ok);
    assert!(stderr.contains("--spill"), "{stderr}");
}

#[test]
fn bad_input_reports_line_numbers() {
    let bad = std::env::temp_dir().join("rsat_test_bad.ddg");
    std::fs::write(&bad, "op a load float\nflow a missing 1 float\n").unwrap();
    let (ok, _, stderr) = rsat(&["analyze", bad.to_str().unwrap()]);
    assert!(!ok);
    assert!(stderr.contains("line 2"), "{stderr}");
    let _ = std::fs::remove_file(bad);
}

#[test]
fn unknown_command_fails_with_usage() {
    let (ok, _, stderr) = rsat(&["frobnicate", &data("expr.ddg")]);
    assert!(!ok);
    assert!(stderr.contains("usage"), "{stderr}");
}
