//! Property suite for the batch analysis engine: `RsEngine` (scratch-reusing
//! batch path) must be indistinguishable from the one-shot `GreedyK` /
//! `Reducer` reference path — same saturation, same witness, same killing
//! function, same reduction outcome — on random DDGs of both target kinds.
//!
//! One engine is shared across every generated case, so any stale-scratch
//! leakage between DAGs of different shapes and sizes fails the suite.

use proptest::prelude::*;
use rs_core::engine::RsEngine;
use rs_core::heuristic::{GreedyK, RsAnalysis};
use rs_core::model::{RegType, Target};
use rs_core::pipeline::Pipeline;
use rs_core::reduce::{ReduceOutcome, Reducer};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use std::sync::Mutex;

/// The shared engine: persistence across proptest cases is the point.
static ENGINE: Mutex<Option<RsEngine>> = Mutex::new(None);

fn with_engine<R>(f: impl FnOnce(&mut RsEngine) -> R) -> R {
    let mut guard = ENGINE.lock().unwrap();
    f(guard.get_or_insert_with(RsEngine::new))
}

fn assert_same_analysis(engine: &RsAnalysis, reference: &RsAnalysis) {
    assert_eq!(engine.saturation, reference.saturation, "saturation");
    assert_eq!(
        engine.saturating_values, reference.saturating_values,
        "witness antichain"
    );
    assert_eq!(engine.killing, reference.killing, "killing function");
    assert_eq!(
        engine.provably_optimal, reference.provably_optimal,
        "optimality flag"
    );
}

fn reduce_fingerprint(out: &ReduceOutcome) -> (bool, Vec<(u32, u32, i64)>) {
    (
        out.fits(),
        out.added_arcs()
            .iter()
            .map(|&(a, b, l)| (a.0, b.0, l))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Batch analysis ≡ one-shot analysis on random superscalar + VLIW DAGs.
    #[test]
    fn engine_matches_one_shot(
        ops in 4usize..26,
        seed in 0u64..10_000,
    ) {
        // alternate targets off the seed (the vendored proptest shim has no
        // bool strategy)
        let target = if seed % 2 == 0 { Target::vliw() } else { Target::superscalar() };
        let ddg = random_ddg(&RandomDagConfig::sized(ops, seed), target);
        let greedy = GreedyK::new();
        for t in ddg.reg_types() {
            let reference = greedy.saturation(&ddg, t);
            let engine = with_engine(|e| e.analyze(&ddg, t));
            assert_same_analysis(&engine, &reference);
            // the witness must also be a killing-respecting valid function
            let lp = rs_graph::paths::LongestPaths::new(ddg.graph());
            let pk = rs_core::pkill::potential_killers(&ddg, t, &lp);
            prop_assert!(engine.killing.respects(&pk));
        }
    }

    /// Batch reduction ≡ one-shot reduction (outcome, arcs, final graph).
    #[test]
    fn engine_reduce_matches_reducer(
        ops in 4usize..20,
        seed in 0u64..5_000,
        budget in 1usize..5,
    ) {
        let ddg = random_ddg(&RandomDagConfig::sized(ops, seed), Target::superscalar());
        for t in ddg.reg_types() {
            let mut d_ref = ddg.clone();
            let mut d_eng = ddg.clone();
            let reference = Reducer::new().reduce(&mut d_ref, t, budget);
            let engine = with_engine(|e| e.reduce(&mut d_eng, t, budget));
            prop_assert_eq!(
                reduce_fingerprint(&engine),
                reduce_fingerprint(&reference)
            );
            prop_assert_eq!(d_eng.graph().edge_count(), d_ref.graph().edge_count());
            prop_assert_eq!(d_eng.critical_path(), d_ref.critical_path());
        }
    }

    /// Engine-backed pipeline ≡ classic pipeline report.
    #[test]
    fn engine_pipeline_matches_run(
        ops in 4usize..18,
        seed in 0u64..2_000,
        budget in 1usize..5,
    ) {
        let ddg = random_ddg(&RandomDagConfig::sized(ops, seed), Target::superscalar());
        let pipeline = Pipeline::uniform(budget);
        let mut d_ref = ddg.clone();
        let mut d_eng = ddg;
        let reference = pipeline.run(&mut d_ref);
        let engine = with_engine(|e| e.run_pipeline(&pipeline, &mut d_eng));
        prop_assert_eq!(engine.types.len(), reference.types.len());
        for (a, b) in engine.types.iter().zip(&reference.types) {
            prop_assert_eq!(a.reg_type, b.reg_type);
            prop_assert_eq!(a.rs_before, b.rs_before);
            prop_assert_eq!(a.rs_after, b.rs_after);
            prop_assert_eq!(a.arcs_added, b.arcs_added);
            prop_assert_eq!(a.fits, b.fits);
            prop_assert_eq!(a.cp_after, b.cp_after);
        }
        prop_assert_eq!(d_eng.graph().edge_count(), d_ref.graph().edge_count());
    }
}

/// The named kernel corpus, both targets: deterministic end-to-end sweep
/// with one shared engine (mirrors what `rsat corpus` does per worker).
#[test]
fn engine_matches_one_shot_on_kernel_corpus() {
    let greedy = GreedyK::new();
    for target in [Target::superscalar(), Target::vliw()] {
        for kernel in rs_kernels::corpus() {
            let ddg = (kernel.build)(target.clone());
            for t in ddg.reg_types() {
                let reference = greedy.saturation(&ddg, t);
                let engine = with_engine(|e| e.analyze(&ddg, t));
                assert_same_analysis(&engine, &reference);
            }
        }
    }
}

/// `RsEngine::analyze_batch` over mixed sizes equals per-DAG one-shot runs.
#[test]
fn batch_api_equals_one_shot_per_dag() {
    let ddgs: Vec<_> = [4usize, 18, 6, 25, 9]
        .iter()
        .enumerate()
        .map(|(i, &ops)| {
            random_ddg(
                &RandomDagConfig::sized(ops, 777 + i as u64),
                Target::superscalar(),
            )
        })
        .collect();
    let batch: Vec<_> = ddgs.iter().map(|d| (d, RegType::FLOAT)).collect();
    let results = with_engine(|e| e.analyze_batch(batch.iter().map(|&(d, t)| (d, t))));
    let greedy = GreedyK::new();
    for (ddg, result) in ddgs.iter().zip(&results) {
        assert_same_analysis(result, &greedy.saturation(ddg, RegType::FLOAT));
    }
}
