//! End-to-end checkpoint/resume: interrupted searches continue exactly.
//!
//! The unit suites in `rs-lp` prove interrupt-resume equivalence on
//! synthetic MILPs; this suite checks the same guarantee on the paper's
//! actual Section-3 saturation intLPs through the `rs-core` solver API
//! ([`RsIlp::saturation_resumable`]), plus the wire journey a resume token
//! takes in practice: embedded as an escaped string field inside response
//! JSON, parsed back out, and fed to a fresh solver.

use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_core::SearchCheckpoint;
use rs_kernels::random::{random_ddg, RandomDagConfig};
use serde::Deserialize;

/// A seeded random kernel with a non-trivial float saturation model (the
/// same instance family the scaling bench pins).
fn kernel() -> rs_core::model::Ddg {
    let cfg = RandomDagConfig::sized(12, 0xBEEF + 12 + 7919);
    let ddg = random_ddg(&cfg, Target::superscalar());
    assert!(ddg.values(RegType::FLOAT).len() >= 2, "fixture regressed");
    ddg
}

#[test]
fn interrupted_resume_chain_matches_uninterrupted_on_rs_models() {
    let ddg = kernel();
    let full = RsIlp::new()
        .saturation(&ddg, RegType::FLOAT)
        .expect("model solves");
    assert!(full.proven_optimal);

    // Re-run the same search in slices: interrupt every few nodes, carry
    // the checkpoint to the next attempt. Node budgets are cumulative
    // across a resume chain, so each slice raises the limit.
    for step in [1usize, 5, 16] {
        let mut solver = RsIlp::new();
        solver.milp.node_limit = 0;
        let mut resume: Option<SearchCheckpoint> = None;
        let mut slices = 0;
        let run = loop {
            solver.milp.node_limit += step;
            let run = solver.saturation_resumable(&ddg, RegType::FLOAT, resume.as_ref());
            match run.checkpoint {
                Some(ck) => {
                    assert_eq!(ck.resumed_chain() as usize, slices);
                    resume = Some(ck);
                    slices += 1;
                    assert!(slices < 10_000, "chain failed to converge");
                }
                None => break run,
            }
        };
        let sliced = run.result.expect("resumed chain completes");
        assert!(sliced.proven_optimal, "step {step}");
        assert_eq!(sliced.saturation, full.saturation, "step {step}");
        assert_eq!(
            sliced.saturating_values, full.saturating_values,
            "step {step}: different witness"
        );
        // Same tree: cumulative node count and the running trace digest
        // survive every interruption byte-for-byte.
        assert_eq!(
            sliced.milp_stats.nodes, full.milp_stats.nodes,
            "step {step}: node count diverged"
        );
        assert_eq!(
            sliced.milp_stats.trace_digest, full.milp_stats.trace_digest,
            "step {step}: trace digest diverged"
        );
        assert!(
            sliced.milp_stats.resumed,
            "step {step}: chain never resumed"
        );
        assert!(slices >= 1, "step {step}: budget never interrupted");
    }
}

#[test]
fn resume_token_is_rejected_across_accelerator_config_changes() {
    // A checkpoint's frontier is only meaningful for the exact tree its
    // config grows: the fingerprint covers the cut generator, the pricing
    // rule, and the propagation pass, so a token minted under the default
    // engine must cold-start — never splice — when any of them is flipped.
    let ddg = kernel();
    let mut solver = RsIlp::new();
    solver.milp.node_limit = 2;
    let ck = solver
        .saturation_resumable(&ddg, RegType::FLOAT, None)
        .checkpoint
        .expect("tiny budget interrupts");

    let full = RsIlp::new()
        .saturation(&ddg, RegType::FLOAT)
        .expect("model solves");
    let variants: [(&str, Box<dyn Fn(&mut RsIlp)>); 3] = [
        ("cuts off", Box::new(|s: &mut RsIlp| s.milp.cuts = false)),
        (
            "dantzig pricing",
            Box::new(|s: &mut RsIlp| s.milp.pricing = rs_lp::Pricing::Dantzig),
        ),
        (
            "propagation off",
            Box::new(|s: &mut RsIlp| s.milp.propagation = false),
        ),
    ];
    for (name, tweak) in variants {
        let mut fresh = RsIlp::new();
        tweak(&mut fresh);
        let run = fresh.saturation_resumable(&ddg, RegType::FLOAT, Some(&ck));
        let sol = run.result.expect("cold restart completes");
        assert!(
            !sol.milp_stats.resumed,
            "{name}: drifted config must not resume a foreign token"
        );
        assert!(sol.proven_optimal, "{name}");
        // Different tree shape, same answer.
        assert_eq!(sol.saturation, full.saturation, "{name}");
    }

    // Control: the unchanged config resumes the token it minted.
    let mut same = RsIlp::new();
    same.milp.node_limit = 100_000;
    let sol = same
        .saturation_resumable(&ddg, RegType::FLOAT, Some(&ck))
        .result
        .expect("resume completes");
    assert!(sol.milp_stats.resumed, "control: same config must resume");
    assert_eq!(sol.saturation, full.saturation);
}

#[test]
fn resume_token_survives_embedding_in_response_json() {
    let ddg = kernel();
    // Interrupt almost immediately: the checkpoint carries a non-empty
    // frontier (and, depending on timing, incumbent floats as bit
    // patterns — content that must survive JSON string escaping).
    let mut solver = RsIlp::new();
    solver.milp.node_limit = 2;
    let run = solver.saturation_resumable(&ddg, RegType::FLOAT, None);
    let ck = run.checkpoint.expect("tiny budget interrupts");
    let token = ck.to_json();

    // The journey a token takes in practice: stored as an opaque string
    // field of a result, serialized to a response line, parsed back by a
    // client, and handed to a fresh solver process.
    let carried = rs_core::request::SolveResult {
        saturation: 0,
        proven_optimal: false,
        bound: None,
        resume: Some(token),
        resumed: false,
    };
    let line = serde_json::to_string(&carried).expect("results serialize");
    assert!(line.contains("\\\""), "token JSON arrives escaped");
    let value = serde_json::from_str(&line).expect("line parses");
    let back = rs_core::request::SolveResult::from_value(&value).expect("result parses");
    let restored =
        SearchCheckpoint::from_json(&back.resume.expect("token survives")).expect("token parses");

    let mut fresh = RsIlp::new();
    fresh.milp.node_limit = 100_000;
    let resumed = fresh
        .saturation_resumable(&ddg, RegType::FLOAT, Some(&restored))
        .result
        .expect("resumed solve completes");
    let full = RsIlp::new()
        .saturation(&ddg, RegType::FLOAT)
        .expect("model solves");
    assert!(resumed.proven_optimal);
    assert_eq!(resumed.saturation, full.saturation);
    assert_eq!(resumed.milp_stats.nodes, full.milp_stats.nodes);
    assert_eq!(
        resumed.milp_stats.trace_digest,
        full.milp_stats.trace_digest
    );
    assert!(resumed.milp_stats.resumed);
}
