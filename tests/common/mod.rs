//! Helpers shared by the solver integration suites.

/// Is a MILP outcome budget-limited (wall-clock/node budget or numerical
/// soft-fail)? Such outcomes are machine- and thread-dependent and must be
/// skipped by determinism/differential comparisons; every other class is
/// comparable.
pub fn budget_limited(r: &Result<rs_lp::milp::MilpSolution, rs_lp::MilpError>) -> bool {
    match r {
        Ok(s) => !s.stats.proven_optimal,
        Err(rs_lp::MilpError::BudgetExhausted) | Err(rs_lp::MilpError::Numerical) => true,
        Err(_) => false,
    }
}
