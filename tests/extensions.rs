//! Integration tests for the paper's extensions: global CFG saturation
//! (Section 6), DDG-level spilling (the stated future work), and the text
//! interchange format — exercised together, across crates.

use rs_core::cfg::{Cfg, CfgBuilder};
use rs_core::exact::ExactRs;
use rs_core::model::{OpClass, RegType, Target};
use rs_core::parse::{parse_ddg, print_ddg};
use rs_core::spill::SpillPass;
use rs_sched::{ListScheduler, RegisterAllocator, Resources};

/// Spill → schedule → allocate: the transformed DAG must allocate within
/// the budget with zero spills *from the allocator's point of view* (all
/// spilling already happened at the DDG level).
#[test]
fn spilled_dag_flows_through_the_whole_pipeline() {
    // L spans three short chains; R = 1 needs a spill of L.
    let mut b = rs_core::model::DdgBuilder::new(Target::superscalar());
    let l = b.op("L", OpClass::Load, Some(RegType::FLOAT));
    let f = b.op("useL", OpClass::Store, None);
    b.flow(l, f, 4, RegType::FLOAT);
    for i in 0..3 {
        let v = b.op(format!("v{i}"), OpClass::FloatAlu, Some(RegType::FLOAT));
        let s = b.op(format!("s{i}"), OpClass::Store, None);
        b.flow(v, s, 3, RegType::FLOAT);
        b.serial(l, v, 1);
        b.serial(s, f, 1);
    }
    let ddg = b.finish();

    let res = SpillPass::new()
        .spill_to_fit(&ddg, RegType::FLOAT, 1)
        .expect("spilling must reach R=1");
    assert!(res.rs_after <= 1);

    let sched = ListScheduler::new(Resources::four_issue()).schedule(&res.ddg);
    assert!(rs_core::lifetime::is_valid_schedule(&res.ddg, &sched.sigma));
    let alloc = RegisterAllocator::new().allocate(&res.ddg, RegType::FLOAT, &sched.sigma, 1);
    assert!(alloc.success(), "leftover spills: {:?}", alloc.spilled);
    assert!(alloc.registers_used <= 1);
}

/// The spilled DAG survives a round-trip through the text format with its
/// saturation intact.
#[test]
fn spilled_dag_roundtrips_through_text_format() {
    let mut b = rs_core::model::DdgBuilder::new(Target::superscalar());
    let l = b.op("L", OpClass::Load, Some(RegType::FLOAT));
    let f = b.op("useL", OpClass::Store, None);
    b.flow(l, f, 4, RegType::FLOAT);
    let v = b.op("v", OpClass::FloatAlu, Some(RegType::FLOAT));
    let s = b.op("sv", OpClass::Store, None);
    b.flow(v, s, 3, RegType::FLOAT);
    b.serial(l, v, 1);
    b.serial(s, f, 1);
    let ddg = b.finish();

    let spilled = rs_core::spill::spill_value(&ddg, RegType::FLOAT, l);
    let text = print_ddg(&spilled);
    let reparsed = parse_ddg(&text).unwrap();
    assert_eq!(reparsed.num_ops(), spilled.num_ops());
    let a = ExactRs::new().saturation(&spilled, RegType::FLOAT);
    let b2 = ExactRs::new().saturation(&reparsed, RegType::FLOAT);
    assert_eq!(a.saturation, b2.saturation);
}

/// A three-deep CFG: every block analysed, reduced against the
/// move-insertion reserve, and the global saturation drops accordingly.
#[test]
fn cfg_pipeline_respects_effective_budget() {
    let mut c = CfgBuilder::new(Target::superscalar());
    let head = c.add_block("head");
    let mid = c.add_block("mid");
    let tail = c.add_block("tail");
    c.branch(head, mid);
    c.branch(mid, tail);

    // head defines four parallel values, all live through mid into tail.
    let mut defs = Vec::new();
    for i in 0..4 {
        let v = c.op(head, format!("def{i}"), OpClass::Load, Some(RegType::FLOAT));
        c.live_out(head, v, RegType::FLOAT, format!("x{i}"));
        defs.push(v);
    }
    // mid consumes two, passes two through.
    let a = c.live_in(mid, "x0", RegType::FLOAT);
    let b = c.live_in(mid, "x1", RegType::FLOAT);
    let sum = c.op(mid, "x0+x1", OpClass::FloatAlu, Some(RegType::FLOAT));
    c.flow(mid, a, sum, 1, RegType::FLOAT);
    c.flow(mid, b, sum, 1, RegType::FLOAT);
    c.live_out(mid, sum, RegType::FLOAT, "sum");
    let p2 = c.live_in(mid, "x2", RegType::FLOAT);
    let p3 = c.live_in(mid, "x3", RegType::FLOAT);
    c.live_out(mid, p2, RegType::FLOAT, "x2");
    c.live_out(mid, p3, RegType::FLOAT, "x3");
    // tail folds everything.
    let s_in = c.live_in(tail, "sum", RegType::FLOAT);
    let x2 = c.live_in(tail, "x2", RegType::FLOAT);
    let x3 = c.live_in(tail, "x3", RegType::FLOAT);
    let t1 = c.op(tail, "sum+x2", OpClass::FloatAlu, Some(RegType::FLOAT));
    c.flow(tail, s_in, t1, 1, RegType::FLOAT);
    c.flow(tail, x2, t1, 1, RegType::FLOAT);
    let t2 = c.op(tail, "t1+x3", OpClass::FloatAlu, Some(RegType::FLOAT));
    c.flow(tail, t1, t2, 3, RegType::FLOAT);
    c.flow(tail, x3, t2, 1, RegType::FLOAT);
    let st = c.op(tail, "store", OpClass::Store, None);
    c.flow(tail, t2, st, 3, RegType::FLOAT);

    let mut cfg = c.finish();
    let before = cfg.global_saturation(RegType::FLOAT);
    assert!(
        before.global >= 4,
        "four live-through values: {}",
        before.global
    );

    let physical = 5;
    let outcomes = cfg.reduce_all(RegType::FLOAT, physical);
    for (name, o) in &outcomes {
        assert!(o.fits(), "block {name}: {:?}", o);
    }
    let after = cfg.global_saturation(RegType::FLOAT);
    assert!(after.global <= Cfg::effective_budget(physical));

    // every block's DDG still schedules and allocates within the physical
    // register count
    for block in &cfg.blocks {
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&block.ddg);
        let alloc =
            RegisterAllocator::new().allocate(&block.ddg, RegType::FLOAT, &sched.sigma, physical);
        assert!(alloc.success(), "block {} spilled", block.name);
    }
}

/// The kernel corpus round-trips through the text format.
#[test]
fn corpus_roundtrips_through_text_format() {
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        let text = print_ddg(&ddg);
        let reparsed = parse_ddg(&text).unwrap_or_else(|e| panic!("{}: {e}", k.name));
        assert_eq!(reparsed.num_ops(), ddg.num_ops(), "{}", k.name);
        assert_eq!(
            reparsed.graph().edge_count(),
            ddg.graph().edge_count(),
            "{}",
            k.name
        );
        assert_eq!(reparsed.critical_path(), ddg.critical_path(), "{}", k.name);
        for t in ddg.reg_types() {
            let a = rs_core::heuristic::GreedyK::new()
                .saturation(&ddg, t)
                .saturation;
            let b = rs_core::heuristic::GreedyK::new()
                .saturation(&reparsed, t)
                .saturation;
            assert_eq!(a, b, "{}/{:?}", k.name, t);
        }
    }
}
