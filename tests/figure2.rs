//! F2 — the paper's Figure 2, pinned as an integration test.

use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::minimize::minimize_register_need;
use rs_core::model::{RegType, Target};
use rs_core::reduce::{ReduceOutcome, Reducer};
use rs_kernels::figure2::figure2;

const T: RegType = RegType::FLOAT;

#[test]
fn part_a_initial_saturation_is_four() {
    let (ddg, _) = figure2(Target::superscalar());
    assert_eq!(GreedyK::new().saturation(&ddg, T).saturation, 4);
    let exact = ExactRs::new().saturation(&ddg, T);
    assert!(exact.proven_optimal);
    assert_eq!(exact.saturation, 4);
    // the four saturating values are exactly a, b, c, d
    assert_eq!(exact.saturating_values.len(), 4);
}

#[test]
fn part_a_enough_registers_leave_dag_untouched() {
    for budget in [4usize, 5, 8] {
        let (mut ddg, _) = figure2(Target::superscalar());
        let edges = ddg.graph().edge_count();
        let out = Reducer::new().reduce(&mut ddg, T, budget);
        assert!(matches!(out, ReduceOutcome::AlreadyFits { rs: 4 }));
        assert_eq!(ddg.graph().edge_count(), edges, "budget {budget}");
    }
}

#[test]
fn part_b_minimization_restricts_regardless_of_registers() {
    let (mut ddg, _) = figure2(Target::superscalar());
    let cp = ddg.critical_path();
    let m = minimize_register_need(&mut ddg, T);
    assert_eq!(m.rs_before, 4);
    assert!(
        m.rs_after <= 2,
        "paper: restricted to 2 registers, got {}",
        m.rs_after
    );
    assert!(!m.added_arcs.is_empty());
    assert_eq!(
        ddg.critical_path(),
        cp,
        "minimization must respect the critical path"
    );
}

#[test]
fn part_c_reduction_to_three_beats_minimization() {
    let (mut reduced, _) = figure2(Target::superscalar());
    let out = Reducer::new().reduce(&mut reduced, T, 3);
    assert!(out.fits());
    assert_eq!(out.ilp_loss(), 0);
    let rs_after = ExactRs::new().saturation(&reduced, T).saturation;
    assert_eq!(rs_after, 3, "RS reduced from 4 to exactly 3");

    let (mut minimized, _) = figure2(Target::superscalar());
    let m = minimize_register_need(&mut minimized, T);
    assert!(
        out.added_arcs().len() < m.added_arcs.len(),
        "reduction must add fewer arcs ({}) than minimization ({})",
        out.added_arcs().len(),
        m.added_arcs.len()
    );
    // "for the former, the final allocator would use 1, 2 or 3 registers
    // depending on the schedule; for the latter, only 1 or 2"
    let rs_min = ExactRs::new().saturation(&minimized, T).saturation;
    assert!(rs_min < rs_after);
}

#[test]
fn exact_ilp_agrees_on_figure2() {
    let (ddg, _) = figure2(Target::superscalar());
    let ilp = rs_core::ilp::RsIlp::new().saturation(&ddg, T).unwrap();
    assert!(ilp.proven_optimal);
    assert_eq!(ilp.saturation, 4);
    // the witness schedule really needs 4 registers
    assert_eq!(rs_core::lifetime::register_need(&ddg, T, &ilp.schedule), 4);
}
