//! Cross-solver agreement (the backbone of the Section-5 experiments):
//! heuristic ≤ exact everywhere; the Section-3 intLP and the combinatorial
//! enumeration agree wherever both are exact.

use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};

#[test]
fn heuristic_never_exceeds_exact_on_corpus() {
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        for t in ddg.reg_types() {
            let h = GreedyK::new().saturation(&ddg, t).saturation;
            let e = ExactRs::new().saturation(&ddg, t);
            assert!(
                h <= e.saturation,
                "{}/{:?}: RS* = {h} > RS = {}",
                k.name,
                t,
                e.saturation
            );
            if e.proven_optimal {
                assert!(
                    e.saturation - h <= 1,
                    "{}/{:?}: error {} > 1 register (RS*={h}, RS={})",
                    k.name,
                    t,
                    e.saturation - h,
                    e.saturation
                );
            }
        }
    }
}

#[test]
fn heuristic_never_exceeds_exact_on_random_dags() {
    for seed in 0..40u64 {
        let ddg = random_ddg(
            &RandomDagConfig::sized(14, 0xF00 + seed),
            Target::superscalar(),
        );
        let h = GreedyK::new().saturation(&ddg, RegType::FLOAT).saturation;
        let e = ExactRs::new().saturation(&ddg, RegType::FLOAT);
        assert!(h <= e.saturation, "seed {seed}");
    }
}

#[test]
fn intlp_matches_enumeration_on_small_dags() {
    let mut checked = 0;
    for seed in 0..12u64 {
        let ddg = random_ddg(
            &RandomDagConfig::sized(7, 0xCAFE + seed),
            Target::superscalar(),
        );
        if ddg.values(RegType::FLOAT).len() < 2 || ddg.values(RegType::FLOAT).len() > 5 {
            continue;
        }
        let e = ExactRs::new().saturation(&ddg, RegType::FLOAT);
        let ilp = RsIlp::new().saturation(&ddg, RegType::FLOAT).unwrap();
        assert!(e.proven_optimal);
        if !ilp.proven_optimal {
            continue;
        }
        assert_eq!(
            e.saturation, ilp.saturation,
            "seed {seed}: enumeration {} vs intLP {}",
            e.saturation, ilp.saturation
        );
        // and the intLP's witness schedule achieves the saturation
        let rn = rs_core::lifetime::register_need(&ddg, RegType::FLOAT, &ilp.schedule);
        assert_eq!(rn, ilp.saturation, "seed {seed}: witness mismatch");
        checked += 1;
    }
    assert!(checked >= 5, "only {checked} DAGs were intLP-checked");
}

#[test]
fn intlp_full_iff_matches_fast_encoding() {
    for seed in 0..6u64 {
        let ddg = random_ddg(
            &RandomDagConfig::sized(6, 0xD1CE + seed),
            Target::superscalar(),
        );
        if ddg.values(RegType::FLOAT).len() < 2 || ddg.values(RegType::FLOAT).len() > 4 {
            continue;
        }
        let fast = RsIlp::new().saturation(&ddg, RegType::FLOAT).unwrap();
        let full = RsIlp {
            full_iff: true,
            ..RsIlp::new()
        }
        .saturation(&ddg, RegType::FLOAT)
        .unwrap();
        if fast.proven_optimal && full.proven_optimal {
            assert_eq!(fast.saturation, full.saturation, "seed {seed}");
        }
    }
}

#[test]
fn saturation_is_monotone_under_serialization() {
    // adding arcs can only shrink (or preserve) the saturation
    for seed in 0..10u64 {
        let mut ddg = random_ddg(
            &RandomDagConfig::sized(12, 0xAAA + seed),
            Target::superscalar(),
        );
        let before = ExactRs::new().saturation(&ddg, RegType::FLOAT).saturation;
        // serialize two independent float values if any
        let vals = ddg.values(RegType::FLOAT);
        let lp = rs_graph::paths::LongestPaths::new(ddg.graph());
        let pair = vals
            .iter()
            .flat_map(|&u| vals.iter().map(move |&v| (u, v)))
            .find(|&(u, v)| u != v && !lp.reaches(u, v) && !lp.reaches(v, u));
        if let Some((u, v)) = pair {
            // order u's readers before v
            let readers = ddg.consumers(u, RegType::FLOAT);
            let mut ok = true;
            for r in &readers {
                if lp.reaches(v, *r) {
                    ok = false;
                }
            }
            if !ok {
                continue;
            }
            for r in readers {
                if r != v {
                    ddg.add_serial(r, v, 0);
                }
            }
            if !ddg.is_acyclic() {
                continue;
            }
            let after = ExactRs::new().saturation(&ddg, RegType::FLOAT).saturation;
            assert!(after <= before, "seed {seed}: {after} > {before}");
        }
    }
}
