//! **T5 (reduction side)** — wall-time of RS reduction: heuristic value
//! serialization vs the Section-4 exact intLP.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rs_core::heuristic::GreedyK;
use rs_core::ilp::ReduceIlp;
use rs_core::model::{RegType, Target};
use rs_core::reduce::Reducer;
use rs_kernels::random::{random_ddg, RandomDagConfig};

fn bench_heuristic_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_heuristic");
    group.sample_size(20);
    for &n in &[12usize, 20, 32] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 5), Target::superscalar());
        let rs0 = GreedyK::new().saturation(&ddg, RegType::FLOAT).saturation;
        if rs0 < 3 {
            continue;
        }
        let budget = rs0 - 2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| {
                let mut d = ddg.clone();
                Reducer::new().reduce(black_box(&mut d), RegType::FLOAT, budget)
            });
        });
    }
    group.finish();
}

fn bench_exact_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_exact_intlp");
    group.sample_size(10);
    for &n in &[6usize, 8] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 5), Target::superscalar());
        let rs0 = GreedyK::new().saturation(&ddg, RegType::FLOAT).saturation;
        if rs0 < 2 {
            continue;
        }
        let budget = rs0 - 1;
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| {
                let mut d = ddg.clone();
                let _ = ReduceIlp::new().reduce(black_box(&mut d), RegType::FLOAT, budget);
            });
        });
    }
    group.finish();
}

fn bench_kernel_reduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduce_heuristic_kernels");
    group.sample_size(20);
    for name in ["lll7", "ddot", "swim"] {
        let k = rs_kernels::corpus()
            .into_iter()
            .find(|k| k.name == name)
            .unwrap();
        let ddg = (k.build)(Target::superscalar());
        let rs0 = GreedyK::new().saturation(&ddg, RegType::FLOAT).saturation;
        let budget = (rs0 / 2).max(2);
        group.bench_with_input(BenchmarkId::from_parameter(name), &ddg, |b, ddg| {
            b.iter(|| {
                let mut d = ddg.clone();
                Reducer::new().reduce(black_box(&mut d), RegType::FLOAT, budget)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristic_reduce,
    bench_exact_reduce,
    bench_kernel_reduce
);
criterion_main!(benches);
