//! Benchmarks for the LP/MILP substrate — the CPLEX stand-in whose speed
//! bounds the exact experiments (the paper reports "many seconds to many
//! days" for its CPLEX runs).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rs_lp::{solve, solve_relaxation, Cmp, LinExpr, MilpConfig, Model, Sense, VarKind};

/// A dense random-ish LP with `n` variables and `n` constraints
/// (deterministic coefficients).
fn make_lp(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n)
        .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, 50.0))
        .collect();
    for i in 0..n {
        let mut e = LinExpr::new();
        for (j, &v) in vars.iter().enumerate() {
            let coef = ((i * 7 + j * 13) % 5) as f64 + 1.0;
            e = e + (coef, v);
        }
        m.add_constraint(e, Cmp::Le, (100 + i * 10) as f64);
    }
    let mut obj = LinExpr::new();
    for (j, &v) in vars.iter().enumerate() {
        obj = obj + ((j % 7 + 1) as f64, v);
    }
    m.set_objective(obj);
    m
}

/// A binary knapsack MILP with `n` items.
fn make_knapsack(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let mut w = LinExpr::new();
    let mut val = LinExpr::new();
    for i in 0..n {
        let x = m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0);
        w = w + (((i * 5) % 11 + 1) as f64, x);
        val = val + (((i * 3) % 9 + 1) as f64, x);
    }
    m.add_constraint(w, Cmp::Le, (n as f64) * 2.5);
    m.set_objective(val);
    m
}

fn bench_simplex(c: &mut Criterion) {
    let mut group = c.benchmark_group("simplex_relaxation");
    for &n in &[10usize, 25, 50, 100] {
        let m = make_lp(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| solve_relaxation(black_box(m)));
        });
    }
    group.finish();
}

fn bench_milp(c: &mut Criterion) {
    let mut group = c.benchmark_group("milp_knapsack");
    group.sample_size(20);
    for &n in &[10usize, 16, 22] {
        let m = make_knapsack(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &m, |b, m| {
            b.iter(|| solve(black_box(m), &MilpConfig::default()).unwrap());
        });
    }
    group.finish();
}

criterion_group!(benches, bench_simplex, bench_milp);
criterion_main!(benches);
