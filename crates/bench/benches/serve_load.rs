//! Load generator for the `rsat serve` warm-engine service: drives a
//! [`ServePool`] with repeated passes over a corpus of unique random DAGs
//! and reports request throughput, end-to-end latency percentiles, and the
//! memoization-cache hit rate (JSON report in `results/serve_load.json`,
//! beside `rs_throughput`).
//!
//! Hand-rolled harness (same convention as `rs_throughput`: `--bench` runs
//! the full grid, `--test` a smoke grid) because the quantities of interest
//! are service-level — req/sec, p50/p99, hit rate — not per-iteration
//! micro-times.
//!
//! Asserted invariants:
//! - every submitted line is answered (the daemon never wedges);
//! - one malformed line injected mid-stream answers `ok:false` and does
//!   not disturb any other response;
//! - a cache hit is ≥ 5× faster than the cold computation of the same
//!   request (server-side `millis`, cold mean vs hit mean).
//!
//! `--chaos` runs the fault-injection harness instead: the same pool is
//! driven under injected panics, delays, and spurious errors plus tight
//! per-request deadlines, and the run asserts that every request still
//! gets exactly one well-typed answer (timeouts carrying their partial
//! result), that the stats ledger balances, and that the pool shuts down
//! cleanly (report in `results/serve_load_chaos.json`).

use rs_bench::common::{random_cases, write_report};
use rs_core::model::Target;
use rs_core::parse::print_ddg;
use rs_core::request::{codes, RsOp, RsRequest, RsResponse};
use rs_serve::{Dispatcher, FaultPlan, Job, ResponseSink, ServeConfig, ServePool};
use serde::Serialize;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One completed request, as observed by the load generator.
struct Done {
    ok: bool,
    hit: bool,
    /// Server-side dispatch time (what the cache shortcuts).
    engine_millis: f64,
    /// End-to-end submit → response latency.
    latency_millis: f64,
}

/// Records submit times and completions; order-indifferent (no reassembly —
/// this sink measures, it does not stream).
#[derive(Default)]
struct TimingSink {
    submits: Mutex<Vec<Instant>>,
    done: Mutex<Vec<Done>>,
}

impl ResponseSink for TimingSink {
    fn emit(&self, seq: u64, response: &RsResponse, _json: &str) {
        let submitted = self.submits.lock().expect("submit times")[seq as usize];
        self.done.lock().expect("done list").push(Done {
            ok: response.ok,
            hit: response.cache.hit,
            engine_millis: response.millis,
            latency_millis: submitted.elapsed().as_secs_f64() * 1e3,
        });
    }
}

#[derive(Serialize)]
struct Report {
    bench_mode: bool,
    workers: usize,
    unique_dags: usize,
    passes: usize,
    requests: usize,
    ok: u64,
    failed: u64,
    wall_millis: f64,
    requests_per_sec: f64,
    latency_p50_millis: f64,
    latency_p99_millis: f64,
    cold_mean_millis: f64,
    hit_mean_millis: f64,
    /// Cold mean over hit mean — the memoization win.
    hit_speedup: f64,
    cache_hits: u64,
    cache_misses: u64,
    cache_hit_rate: f64,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    if args.iter().any(|a| a == "--chaos") {
        run_chaos(bench_mode);
        return;
    }

    let (sizes, count, passes, workers): (&[usize], usize, usize, usize) = if bench_mode {
        (&[16, 24, 32, 48], 4, 8, 4)
    } else {
        (&[12, 16, 24], 2, 4, 2)
    };

    // Unique request corpus: distinct random DAGs, serialized once. Every
    // pass after the first re-requests the same content, so it should be
    // answered from the memoization cache.
    let requests: Vec<RsRequest> = random_cases(sizes, count, Target::superscalar())
        .iter()
        .enumerate()
        .map(|(i, case)| {
            let mut req = RsRequest::new(RsOp::Analyze, print_ddg(&case.ddg));
            req.id = Some(format!("u{i}"));
            req
        })
        .collect();
    let lines: Vec<String> = requests
        .iter()
        .map(|r| serde_json::to_string(r).expect("requests serialize"))
        .collect();
    println!(
        "serve_load: {} unique DAGs × {passes} passes, {workers} workers",
        requests.len()
    );

    // Cold baseline: a cache-less dispatcher (the one-shot CLI path).
    let mut cold = Dispatcher::new();
    let cold_millis: Vec<f64> = requests
        .iter()
        .map(|r| {
            let resp = cold.dispatch(r);
            assert!(resp.ok, "cold dispatch failed: {:?}", resp.error);
            resp.millis
        })
        .collect();
    let cold_mean_millis = mean(&cold_millis);

    // Build the submission stream: `passes` passes over the corpus with one
    // malformed line injected mid-stream (containment check under load).
    let mut stream: Vec<String> = Vec::with_capacity(requests.len() * passes + 1);
    for _ in 0..passes {
        stream.extend(lines.iter().cloned());
    }
    stream.insert(stream.len() / 2, "{ this is not a request".to_string());
    let total = stream.len();

    let cfg = ServeConfig {
        workers,
        queue: 32,
        cache_capacity: 4096,
        ..Default::default()
    };
    let pool = ServePool::new(&cfg);
    let sink = Arc::new(TimingSink::default());
    let start = Instant::now();
    for (seq, line) in stream.into_iter().enumerate() {
        sink.submits
            .lock()
            .expect("submit times")
            .push(Instant::now());
        let accepted = pool.submit(Job::new(
            seq as u64,
            line,
            Arc::clone(&sink) as Arc<dyn ResponseSink>,
        ));
        assert!(accepted, "pool rejected a submission");
    }
    let stats = pool.shutdown();
    let wall_millis = start.elapsed().as_secs_f64() * 1e3;

    let done = sink.done.lock().expect("done list");
    assert_eq!(done.len(), total, "every submitted line must be answered");
    let failed = done.iter().filter(|d| !d.ok).count();
    assert_eq!(
        failed, 1,
        "exactly the injected malformed line fails; got {failed}"
    );
    assert_eq!(stats.requests, total as u64);
    assert_eq!(stats.failed, 1);

    let hit_millis: Vec<f64> = done
        .iter()
        .filter(|d| d.hit)
        .map(|d| d.engine_millis)
        .collect();
    assert!(
        hit_millis.len() as u64 == stats.cache_hits && !hit_millis.is_empty(),
        "repeat passes must hit the cache (hits = {})",
        stats.cache_hits
    );
    let hit_mean_millis = mean(&hit_millis);
    let hit_speedup = cold_mean_millis / hit_mean_millis.max(f64::EPSILON);

    let mut latencies: Vec<f64> = done
        .iter()
        .filter(|d| d.ok)
        .map(|d| d.latency_millis)
        .collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);
    let requests_per_sec = total as f64 / (wall_millis / 1e3);
    let cache_hit_rate =
        stats.cache_hits as f64 / (stats.cache_hits + stats.cache_misses).max(1) as f64;

    println!("{total} requests in {wall_millis:.1} ms = {requests_per_sec:.0} req/sec");
    println!("latency p50 {p50:.3} ms, p99 {p99:.3} ms");
    println!(
        "cache: {} hits / {} misses (hit rate {:.0}%)",
        stats.cache_hits,
        stats.cache_misses,
        cache_hit_rate * 100.0
    );
    println!(
        "cold mean {cold_mean_millis:.3} ms vs hit mean {hit_mean_millis:.5} ms = {hit_speedup:.0}x"
    );
    assert!(
        hit_speedup >= 5.0,
        "a cache hit must be >= 5x faster than cold computation, got {hit_speedup:.2}x"
    );

    let report = Report {
        bench_mode,
        workers,
        unique_dags: requests.len(),
        passes,
        requests: total,
        ok: stats.ok,
        failed: stats.failed,
        wall_millis,
        requests_per_sec,
        latency_p50_millis: p50,
        latency_p99_millis: p99,
        cold_mean_millis,
        hit_mean_millis,
        hit_speedup,
        cache_hits: stats.cache_hits,
        cache_misses: stats.cache_misses,
        cache_hit_rate,
    };
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let text = format!(
        "serve_load: {} requests ({} unique × {} passes + 1 malformed), {} workers; \
         {:.0} req/sec, p50 {:.3} ms, p99 {:.3} ms; hit rate {:.0}%, hit speedup {:.0}x\n",
        report.requests,
        report.unique_dags,
        report.passes,
        report.workers,
        report.requests_per_sec,
        report.latency_p50_millis,
        report.latency_p99_millis,
        report.cache_hit_rate * 100.0,
        report.hit_speedup,
    );
    write_report(&out_dir, "serve_load", &text, &report);
    println!(
        "report written to {}",
        out_dir.join("serve_load.json").display()
    );
}

/// Collects every answer per sequence number (no reassembly): the chaos
/// harness's core assertion is exactly-once delivery of a well-typed
/// response for every submitted line, whatever faults were injected.
#[derive(Default)]
struct ChaosSink {
    answers: Mutex<Vec<Vec<RsResponse>>>,
}

impl ResponseSink for ChaosSink {
    fn emit(&self, seq: u64, response: &RsResponse, _json: &str) {
        self.answers.lock().expect("answers")[seq as usize].push(response.clone());
    }
}

#[derive(Serialize)]
struct ChaosReport {
    bench_mode: bool,
    workers: usize,
    requests: usize,
    ok: u64,
    failed: u64,
    timeouts: u64,
    shed: u64,
    watchdog_cancels: u64,
    engines_replaced: u64,
    timeouts_with_partial_result: usize,
    wall_millis: f64,
}

fn run_chaos(bench_mode: bool) {
    let (sizes, count, passes, workers): (&[usize], usize, usize, usize) = if bench_mode {
        (&[16, 24, 32], 3, 8, 4)
    } else {
        (&[12, 16], 2, 4, 2)
    };
    let cases = random_cases(sizes, count, Target::superscalar());
    let lines: Vec<String> = cases
        .iter()
        .enumerate()
        .map(|(i, case)| {
            let mut req = RsRequest::new(RsOp::Analyze, print_ddg(&case.ddg));
            req.id = Some(format!("c{i}"));
            req.cache = false; // every request exercises the execution path
            match i % 3 {
                // A tight deadline over the exact solvers: deterministic
                // timeout pressure on the deepest cancellation points.
                0 => {
                    req.exact = true;
                    req.ilp = true;
                    req.timeout_ms = Some(2);
                }
                // A deadline the injected 30 ms delays blow through:
                // exercises shedding and the watchdog.
                1 => req.timeout_ms = Some(25),
                _ => {}
            }
            serde_json::to_string(&req).expect("requests serialize")
        })
        .collect();
    let mut stream: Vec<String> = Vec::with_capacity(lines.len() * passes + 1);
    for _ in 0..passes {
        stream.extend(lines.iter().cloned());
    }
    stream.insert(stream.len() / 2, "{ not json".to_string());
    let total = stream.len();

    let plan = Arc::new(FaultPlan::from_spec("panic=7,delay=5:30,error=11").expect("spec"));
    let cfg = ServeConfig {
        workers,
        queue: 16,
        cache_capacity: 1024,
        grace_ms: 10, // trip the watchdog inside injected delays
        faults: Some(plan),
    };
    println!(
        "serve_load --chaos: {total} requests ({} unique × {passes} passes + 1 malformed), \
         {workers} workers, faults panic=7,delay=5:30,error=11",
        lines.len()
    );

    let pool = ServePool::new(&cfg);
    let sink = Arc::new(ChaosSink {
        answers: Mutex::new((0..total).map(|_| Vec::new()).collect()),
    });
    let start = Instant::now();
    for (seq, line) in stream.into_iter().enumerate() {
        let accepted = pool.submit(Job::new(
            seq as u64,
            line,
            Arc::clone(&sink) as Arc<dyn ResponseSink>,
        ));
        assert!(accepted, "pool rejected a submission");
    }
    let stats = pool.shutdown();
    let wall_millis = start.elapsed().as_secs_f64() * 1e3;

    // Exactly one well-typed answer per request, whatever was injected.
    let known = [
        codes::REQUEST,
        codes::PARSE,
        codes::TIMEOUT,
        codes::OVERLOADED,
        codes::PANIC,
        codes::ENGINE,
        codes::INFEASIBLE,
    ];
    let answers = sink.answers.lock().expect("answers");
    let mut timeouts_with_partial = 0usize;
    for (seq, got) in answers.iter().enumerate() {
        assert_eq!(got.len(), 1, "request {seq} must be answered exactly once");
        let resp = &got[0];
        if resp.ok {
            assert!(resp.result.is_some(), "ok answer {seq} carries a result");
        } else {
            let err = resp.error.as_ref().unwrap_or_else(|| {
                panic!("failed answer {seq} must carry a typed error");
            });
            assert!(
                known.contains(&err.code.as_str()),
                "answer {seq} has unknown error code `{}`",
                err.code
            );
            if err.code == codes::TIMEOUT {
                assert!(
                    resp.result.is_some(),
                    "timeout answer {seq} must attach its partial result"
                );
                timeouts_with_partial += 1;
            }
        }
    }

    // The stats ledger balances: nothing lost, nothing double-counted.
    assert_eq!(stats.requests, total as u64);
    assert_eq!(stats.ok + stats.failed, stats.requests);
    assert!(stats.timeouts + stats.shed <= stats.failed);
    assert_eq!(timeouts_with_partial as u64, stats.timeouts);
    assert!(stats.failed >= 1, "at least the malformed line fails");

    println!(
        "serve_load chaos: {} requests, {} ok, {} failed ({} timeout, {} shed), \
         {} watchdog cancels, {} engines replaced — clean shutdown",
        stats.requests,
        stats.ok,
        stats.failed,
        stats.timeouts,
        stats.shed,
        stats.watchdog_cancels,
        stats.engines_replaced
    );

    let report = ChaosReport {
        bench_mode,
        workers,
        requests: total,
        ok: stats.ok,
        failed: stats.failed,
        timeouts: stats.timeouts,
        shed: stats.shed,
        watchdog_cancels: stats.watchdog_cancels,
        engines_replaced: stats.engines_replaced,
        timeouts_with_partial_result: timeouts_with_partial,
        wall_millis,
    };
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let text = format!(
        "serve_load chaos: {} requests, {} ok, {} failed ({} timeout, {} shed), \
         {} watchdog cancels, {} engines replaced\n",
        report.requests,
        report.ok,
        report.failed,
        report.timeouts,
        report.shed,
        report.watchdog_cancels,
        report.engines_replaced
    );
    write_report(&out_dir, "serve_load_chaos", &text, &report);
    println!(
        "report written to {}",
        out_dir.join("serve_load_chaos.json").display()
    );
}
