//! Throughput benchmark for the batch analysis engine: DAGs/second of
//! register-saturation analysis over the kernel + random corpus,
//! batched scratch-reuse ([`rs_core::engine::RsEngine`]) vs the one-shot
//! reference path ([`rs_core::heuristic::GreedyK`]), plus a `--jobs`-style
//! parallel grid with one engine per worker.
//!
//! Hand-rolled harness (criterion convention: `cargo bench` runs the full
//! grid, `--test` a smoke grid) because the quantity of interest is
//! wall-clock corpus throughput, not per-iteration micro-times; the JSON
//! perf report lands in `results/rs_throughput.json` for the CI artifact.
//!
//! Asserted invariants:
//! - batched and one-shot saturations are identical per case;
//! - the batched single-threaded path is ≥ 1.3× the one-shot path
//!   (the scratch reuse must actually pay for itself);
//! - on hosts with ≥ 4 hardware threads, 4 workers are ≥ 2× one worker.

use rs_bench::common::{kernel_cases, random_cases, write_report, Case};
use rs_core::engine::RsEngine;
use rs_core::heuristic::GreedyK;
use rs_core::model::Target;
use serde::Serialize;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    path: &'static str,
    jobs: usize,
    dags: usize,
    millis: f64,
    dags_per_sec: f64,
}

#[derive(Serialize)]
struct Report {
    bench_mode: bool,
    host_parallelism: usize,
    corpus_cases: usize,
    passes: usize,
    cells: Vec<Cell>,
    /// Batched (1 worker) over one-shot throughput — the scratch-reuse win.
    speedup_batched_1t: f64,
    /// 4-worker over 1-worker batched throughput (absent in smoke mode).
    speedup_4_jobs: Option<f64>,
}

fn build_corpus(bench_mode: bool) -> Vec<Case> {
    let target = Target::superscalar();
    let mut cases = kernel_cases(target.clone());
    let (sizes, count): (&[usize], usize) = if bench_mode {
        (&[16, 24, 32, 48], 4)
    } else {
        (&[12, 16, 24], 2)
    };
    cases.extend(random_cases(sizes, count, target));
    cases
}

/// One full corpus pass on the one-shot path; returns the saturations.
fn one_shot_pass(cases: &[Case]) -> Vec<usize> {
    cases
        .iter()
        .map(|c| GreedyK::new().saturation(&c.ddg, c.reg_type).saturation)
        .collect()
}

/// One full corpus pass on a shared warm engine.
fn batched_pass(engine: &mut RsEngine, cases: &[Case]) -> Vec<usize> {
    cases
        .iter()
        .map(|c| engine.analyze(&c.ddg, c.reg_type).saturation)
        .collect()
}

/// `passes` corpus passes across `jobs` workers, one warm engine each (the
/// `rsat corpus --jobs N` execution model). Threads and engines persist for
/// the whole run — a single shared counter over `passes × cases` items, so
/// the comparison against the 1-worker cell (one warm engine throughout) is
/// apples-to-apples.
fn parallel_batched(cases: &[Case], jobs: usize, passes: usize) -> f64 {
    let total = cases.len() * passes;
    let next = AtomicUsize::new(0);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                let mut engine = RsEngine::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    let c = &cases[i % cases.len()];
                    std::hint::black_box(engine.analyze(&c.ddg, c.reg_type).saturation);
                }
            });
        }
    });
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");
    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());

    let cases = build_corpus(bench_mode);
    let passes = if bench_mode { 12 } else { 4 };
    let dags = cases.len() * passes;
    println!(
        "rs_throughput: {} cases × {passes} passes, host parallelism {host_parallelism}",
        cases.len()
    );

    // Correctness gate: the batched engine must reproduce the one-shot
    // saturations exactly before any timing counts.
    let reference = one_shot_pass(&cases);
    let mut warm = RsEngine::new();
    let batched_sats = batched_pass(&mut warm, &cases);
    assert_eq!(
        reference, batched_sats,
        "batched engine diverged from the one-shot path"
    );

    let mut cells = Vec::new();
    println!(
        "{:>10} {:>6} {:>8} {:>12} {:>12}",
        "path", "jobs", "dags", "millis", "dags/sec"
    );
    let mut record = |path: &'static str, jobs: usize, millis: f64| -> f64 {
        let dags_per_sec = dags as f64 / (millis / 1e3);
        println!("{path:>10} {jobs:>6} {dags:>8} {millis:>12.1} {dags_per_sec:>12.0}");
        cells.push(Cell {
            path,
            jobs,
            dags,
            millis,
            dags_per_sec,
        });
        dags_per_sec
    };

    // One-shot reference path (fresh allocations per DAG and per candidate).
    let start = Instant::now();
    for _ in 0..passes {
        std::hint::black_box(one_shot_pass(&cases));
    }
    let one_shot_rate = record("one_shot", 1, start.elapsed().as_secs_f64() * 1e3);

    // Batched path, single worker: pure scratch-reuse gain.
    let mut engine = RsEngine::new();
    let start = Instant::now();
    for _ in 0..passes {
        std::hint::black_box(batched_pass(&mut engine, &cases));
    }
    let batched_rate = record("batched", 1, start.elapsed().as_secs_f64() * 1e3);

    // Parallel grid.
    let jobs_grid: &[usize] = if bench_mode { &[2, 4] } else { &[2] };
    let mut rate_of_jobs = vec![(1usize, batched_rate)];
    for &jobs in jobs_grid {
        let millis = parallel_batched(&cases, jobs, passes);
        rate_of_jobs.push((jobs, record("batched", jobs, millis)));
    }

    let speedup_batched_1t = batched_rate / one_shot_rate;
    println!("batched vs one-shot (single-threaded): {speedup_batched_1t:.2}x");
    assert!(
        speedup_batched_1t >= 1.3,
        "batched scratch-reuse path must be >= 1.3x the one-shot path, got {speedup_batched_1t:.2}x"
    );

    let speedup_4_jobs = rate_of_jobs
        .iter()
        .find(|&&(j, _)| j == 4)
        .map(|&(_, r)| r / batched_rate);
    if let Some(s) = speedup_4_jobs {
        println!("4 workers vs 1 worker: {s:.2}x");
        if host_parallelism >= 4 {
            assert!(
                s >= 2.0,
                "expected >= 2x throughput at 4 workers on a >= 4-core host, got {s:.2}x"
            );
        } else {
            println!(
                "(host has only {host_parallelism} hardware thread(s); parallel assertion skipped)"
            );
        }
    }

    let report = Report {
        bench_mode,
        host_parallelism,
        corpus_cases: cases.len(),
        passes,
        cells,
        speedup_batched_1t,
        speedup_4_jobs,
    };
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let text = format!(
        "rs_throughput: {} cases × {} passes; batched/one-shot speedup {:.2}x; \
         4-worker speedup {}\n",
        report.corpus_cases,
        report.passes,
        report.speedup_batched_1t,
        report
            .speedup_4_jobs
            .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
    );
    write_report(&out_dir, "rs_throughput", &text, &report);
    println!(
        "report written to {}",
        out_dir.join("rs_throughput.json").display()
    );
}
