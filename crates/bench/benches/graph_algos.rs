//! Benchmarks for the graph substrate: transitive closure, maximum
//! matching / antichains, and longest paths — the inner loops of every
//! saturation analysis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rs_core::model::Target;
use rs_graph::antichain::max_antichain;
use rs_graph::closure::TransitiveClosure;
use rs_graph::paths::LongestPaths;
use rs_kernels::random::{random_ddg, RandomDagConfig};

fn bench_closure(c: &mut Criterion) {
    let mut group = c.benchmark_group("transitive_closure");
    for &n in &[16usize, 32, 64, 128] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 7), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| TransitiveClosure::new(black_box(ddg.graph())));
        });
    }
    group.finish();
}

fn bench_longest_paths(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_pairs_longest_paths");
    for &n in &[16usize, 32, 64, 128] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 11), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| LongestPaths::new(black_box(ddg.graph())));
        });
    }
    group.finish();
}

fn bench_antichain(c: &mut Criterion) {
    let mut group = c.benchmark_group("max_antichain");
    for &n in &[16usize, 32, 64] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 13), Target::superscalar());
        let tc = TransitiveClosure::new(ddg.graph());
        let nodes: Vec<_> = ddg.graph().node_ids().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &nodes, |b, nodes| {
            b.iter(|| max_antichain(black_box(nodes), |u, v| tc.reaches(u, v)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_closure, bench_longest_paths, bench_antichain);
criterion_main!(benches);
