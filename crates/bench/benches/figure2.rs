//! Figure 2 as a micro-benchmark: the full analyse → reduce → schedule →
//! allocate pipeline on the paper's worked example.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rs_core::model::{RegType, Target};
use rs_core::pipeline::Pipeline;
use rs_kernels::figure2::figure2;
use rs_sched::{ListScheduler, RegisterAllocator, Resources};

fn bench_figure2_pipeline(c: &mut Criterion) {
    c.bench_function("figure2_full_pipeline", |b| {
        b.iter(|| {
            let (mut ddg, _) = figure2(Target::superscalar());
            let report = Pipeline {
                budgets: vec![(RegType::FLOAT, 3)],
                verify_exact: false,
            }
            .run(black_box(&mut ddg));
            let sched = ListScheduler::new(Resources::four_issue()).schedule(&ddg);
            let alloc = RegisterAllocator::new().allocate(&ddg, RegType::FLOAT, &sched.sigma, 3);
            assert!(report.all_fit() && alloc.success());
            (report, sched.makespan)
        });
    });
}

fn bench_figure2_analysis_only(c: &mut Criterion) {
    let (ddg, _) = figure2(Target::superscalar());
    c.bench_function("figure2_exact_rs", |b| {
        b.iter(|| rs_core::exact::ExactRs::new().saturation(black_box(&ddg), RegType::FLOAT));
    });
}

criterion_group!(benches, bench_figure2_pipeline, bench_figure2_analysis_only);
criterion_main!(benches);
