//! Thread-scaling + bounded-simplex benchmark for the MILP engine:
//! random-kernel register-saturation intLP models (Section 3) across a
//! threads × size grid, with a differential run against the
//! explicit-bound-row *reference* formulation (`rs_lp::reference`) — the
//! pre-rewrite engine — on every instance.
//!
//! This target uses a hand-rolled harness instead of criterion because it
//! measures *wall-clock scaling* of one long solve per cell (not
//! per-iteration micro-times) and emits a JSON perf report under
//! `results/milp_scaling.json` for the CI artifact / perf trajectory. The
//! previous report's cells are folded into the new one
//! (`previous_cells`), so the artifact always carries its own
//! before/after.
//!
//! Modes follow the criterion convention: `cargo bench` (passes `--bench`)
//! runs the full grid; `--test` (or no `--bench`) runs a small smoke grid.
//! In every mode the harness asserts:
//! - the optimal objective, the node count, *and* the committed-trace
//!   digest are identical across thread counts (partitioned-search
//!   determinism — same tree, not just same answer; `nodes_invariant:
//!   true` in the report), with the objective also equal to the reference
//!   formulation's;
//! - the bounded path's tableau row count equals the structural
//!   constraint count — zero bound rows — while the reference tableau
//!   carries one extra row per finite upper bound.

use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::{MilpConfig, Model};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    size: usize,
    threads: usize,
    millis: f64,
    objective: i64,
    nodes: usize,
    /// Order-sensitive FNV digest of the committed node trace (depth +
    /// branch path per node). Identical across the thread grid — the
    /// statically-partitioned search explores byte-for-byte the same tree
    /// at every thread count (asserted below).
    trace_digest: u64,
    lp_solves: usize,
    warm_solves: usize,
    warm_hits: usize,
    /// Basis reinstalls performed by dive steps — zero by construction on
    /// the incremental dive tableau (asserted below); the previous engine
    /// re-installed the parent basis on every dive step.
    dive_reinstalls: usize,
    /// Branching decisions taken from trusted accumulated pseudocosts.
    pseudocost_branches: usize,
    /// Strong-branching-lite probes spent initializing pseudocosts.
    strong_branch_probes: usize,
    pivots: usize,
    bound_flips: usize,
    /// Pivots priced by the dual steepest-edge rule (subset of `pivots`).
    dse_pivots: usize,
    /// Cutting planes accepted into the pool (root + in-tree, deduped).
    cuts_added: usize,
    /// Root separation rounds that accepted at least one cut.
    cut_rounds: usize,
    /// Nodes fathomed by per-node bound propagation (no LP solve spent).
    propagation_fathoms: usize,
    /// Fraction of the root integrality gap closed by the root cut loop:
    /// `(pre − post) / (pre − optimum)`; absent when the loop never ran
    /// or the root relaxation was already tight.
    root_gap_closed: Option<f64>,
    /// Tableau rows including appended cut rows.
    rows: usize,
    cols: usize,
}

/// One serial solve of the same instance through the explicit-bound-row
/// reference engine (the pre-bounded-simplex formulation).
#[derive(Serialize)]
struct ReferenceRun {
    size: usize,
    millis: f64,
    objective: i64,
    nodes: usize,
    pivots: usize,
    rows: usize,
    cols: usize,
}

/// `(size, threads, millis, nodes)` of the report this run replaced — the
/// before/after trail of the perf trajectory. `nodes` feeds the
/// informational `nodes_vs_previous_1t` tree-size trajectory below (not
/// asserted — a legitimate branching change may trade one size's tree for
/// another's; reviewers compare the trail across reports instead).
#[derive(Serialize)]
struct PrevCell {
    size: usize,
    threads: usize,
    millis: f64,
    nodes: Option<usize>,
}

#[derive(Serialize)]
struct Report {
    bench_mode: bool,
    host_parallelism: usize,
    cells: Vec<Cell>,
    /// Differential baseline: the explicit-bound-row reference engine.
    reference: Vec<ReferenceRun>,
    /// Cells of the report this run overwrote (empty on a fresh checkout).
    previous_cells: Vec<PrevCell>,
    /// Wall-clock speedup of 4 threads over 1 thread on the largest model
    /// (absent when the grid has no 4-thread column).
    speedup_4t_largest: Option<f64>,
    /// Wall-clock speedup of the bounded single-thread run over the
    /// reference run, per size.
    speedup_vs_reference: Vec<(usize, f64)>,
    /// `(size, nodes now, nodes in the previous report)` at one thread —
    /// the pseudocost-branching tree-size trajectory, recorded (not
    /// asserted) so successive reports carry their own before/after
    /// comparison.
    nodes_vs_previous_1t: Vec<(usize, usize, Option<usize>)>,
    /// Every instance solved with an identical node count *and* trace
    /// digest across the whole thread grid. Asserted per cell — a report
    /// only ever exists with `true` here; the field makes the guarantee
    /// visible in the artifact.
    nodes_invariant: bool,
}

/// The Section-3 saturation intLP of a seeded random kernel of `ops`
/// operations — the workload whose solve time bounds the exact
/// experiments.
fn random_kernel_model(ops: usize, seed: u64) -> Model {
    let cfg = RandomDagConfig::sized(ops, seed);
    let ddg = random_ddg(&cfg, Target::superscalar());
    RsIlp::new().build_model(&ddg, RegType::FLOAT).0
}

/// Extraction of `(size, threads, millis, nodes)` from a previous report's
/// `cells` array, parsed with the vendored `serde_json::from_str` (this
/// replaced a tolerant line scan once the shim grew a real deserializer).
/// `nodes` is absent from reports older than the field itself.
fn read_previous_cells(path: &std::path::Path) -> Vec<PrevCell> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    let Ok(report) = serde_json::from_str(&text) else {
        return Vec::new();
    };
    let Some(cells) = report.get("cells").and_then(|c| c.as_array()) else {
        return Vec::new();
    };
    cells
        .iter()
        .filter_map(|cell| {
            Some(PrevCell {
                size: cell.get("size")?.as_u64()? as usize,
                threads: cell.get("threads")?.as_u64()? as usize,
                millis: cell.get("millis")?.as_f64()?,
                nodes: cell
                    .get("nodes")
                    .and_then(|n| n.as_u64())
                    .map(|n| n as usize),
            })
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");

    // Curated (size, seed) pairs: the intLP solve-time landscape over
    // random kernels is bimodal (most instances solve in milliseconds, a
    // minority fall off a big-M cliff), so the grid pins seeds whose
    // branch-and-bound trees are large enough to exercise the parallel
    // node pool yet provably finish.
    let (instances, thread_grid): (&[(usize, u64)], &[usize]) = if bench_mode {
        (&[(12, 1), (14, 0), (18, 4)], &[1, 2, 4])
    } else {
        (&[(12, 1)], &[1, 2])
    };

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let previous_cells = read_previous_cells(&out_dir.join("milp_scaling.json"));
    let mut cells: Vec<Cell> = Vec::new();
    let mut reference: Vec<ReferenceRun> = Vec::new();
    let mut speedup_vs_reference: Vec<(usize, f64)> = Vec::new();
    println!("milp_scaling: host parallelism {host_parallelism}");
    println!(
        "{:>6} {:>9} {:>12} {:>10} {:>8} {:>9} {:>10} {:>9} {:>6} {:>6}",
        "size",
        "threads",
        "millis",
        "objective",
        "nodes",
        "warm",
        "pivots",
        "rows",
        "cuts",
        "pfath"
    );

    for &(size, seed) in instances {
        let model = random_kernel_model(size, 0xBEEF + size as u64 + seed * 7919);

        // Differential baseline: one serial solve through the
        // explicit-bound-row reference engine (the pre-rewrite
        // formulation; no warm machinery, bound rows in the tableau).
        let start = Instant::now();
        let ref_sol = rs_lp::reference::solve_milp(&model, &MilpConfig::default())
            .expect("RS model feasible");
        let ref_millis = start.elapsed().as_secs_f64() * 1e3;
        assert!(ref_sol.stats.proven_optimal, "reference hit the budget");
        let ref_obj = ref_sol.objective.round() as i64;
        println!(
            "{size:>6} {:>9} {ref_millis:>12.1} {ref_obj:>10} {:>8} {:>9} {:>10} {:>9}",
            "ref", ref_sol.stats.nodes, "-", ref_sol.stats.pivots, ref_sol.stats.rows
        );
        reference.push(ReferenceRun {
            size,
            millis: ref_millis,
            objective: ref_obj,
            nodes: ref_sol.stats.nodes,
            pivots: ref_sol.stats.pivots,
            rows: ref_sol.stats.rows,
            cols: ref_sol.stats.cols,
        });

        let mut first_trace: Option<(usize, u64)> = None;
        for &threads in thread_grid {
            // Audit forced on across the whole grid: the pre-solve static
            // pass must never perturb nodes, digest, or objective — the
            // invariant assertions below run against audited solves.
            let cfg = MilpConfig {
                audit: true,
                ..MilpConfig::with_threads(threads)
            };
            let start = Instant::now();
            let sol = rs_lp::solve(&model, &cfg).expect("RS model is feasible");
            let millis = start.elapsed().as_secs_f64() * 1e3;
            assert!(sol.stats.proven_optimal, "size {size} hit the budget");
            assert!(sol.stats.audited, "audit was requested for every cell");
            let obj = sol.objective.round() as i64;
            // Determinism + differential correctness: neither the thread
            // count nor the bound-handling formulation may change the
            // optimum.
            assert_eq!(
                obj, ref_obj,
                "size {size}: threads={threads} diverges from the reference objective"
            );
            // Partitioned-search determinism: the tree itself — not just
            // the optimum — is identical at every thread count, node
            // count and committed-trace digest both.
            match first_trace {
                None => first_trace = Some((sol.stats.nodes, sol.stats.trace_digest)),
                Some((n0, d0)) => {
                    assert_eq!(
                        sol.stats.nodes, n0,
                        "size {size}: threads={threads} changed the node count"
                    );
                    assert_eq!(
                        sol.stats.trace_digest, d0,
                        "size {size}: threads={threads} changed the trace digest"
                    );
                }
            }
            // The bounded-simplex invariant: no explicit bound rows — the
            // tableau has at most the structural constraint rows (presolve
            // may fold singleton rows away, never add any) plus the cut
            // rows the search itself appended.
            assert!(
                sol.stats.rows <= model.num_constraints() + sol.stats.cuts_added,
                "size {size}: bounded path emitted bound rows ({} rows > {} constraints + {} cuts)",
                sol.stats.rows,
                model.num_constraints(),
                sol.stats.cuts_added
            );
            // The incremental-dive-tableau invariant: dive chains apply
            // bound folds in place; a basis reinstall anywhere in a dive
            // is a regression to the previous engine.
            assert_eq!(
                sol.stats.dive_reinstalls, 0,
                "size {size}: dive steps re-installed a basis"
            );
            // Both engines presolve identically, so the reference tableau
            // must exceed the bounded one by exactly its explicit bound
            // rows (one per finite upper bound — strictly more rows).
            assert!(
                ref_sol.stats.rows > sol.stats.rows,
                "size {size}: reference must carry explicit bound rows \
                 ({} vs bounded {})",
                ref_sol.stats.rows,
                sol.stats.rows
            );
            println!(
                "{size:>6} {threads:>9} {millis:>12.1} {obj:>10} {:>8} {:>9} {:>10} {:>9} {:>6} {:>6}",
                sol.stats.nodes,
                sol.stats.warm_solves,
                sol.stats.pivots,
                sol.stats.rows,
                sol.stats.cuts_added,
                sol.stats.propagation_fathoms
            );
            if threads == 1 && ref_millis > 0.0 {
                speedup_vs_reference.push((size, ref_millis / millis.max(1e-9)));
            }
            cells.push(Cell {
                size,
                threads,
                millis,
                objective: obj,
                nodes: sol.stats.nodes,
                trace_digest: sol.stats.trace_digest,
                lp_solves: sol.stats.lp_solves,
                warm_solves: sol.stats.warm_solves,
                warm_hits: sol.stats.warm_hits,
                dive_reinstalls: sol.stats.dive_reinstalls,
                pseudocost_branches: sol.stats.pseudocost_branches,
                strong_branch_probes: sol.stats.strong_branch_probes,
                pivots: sol.stats.pivots,
                bound_flips: sol.stats.bound_flips,
                dse_pivots: sol.stats.dse_pivots,
                cuts_added: sol.stats.cuts_added,
                cut_rounds: sol.stats.cut_rounds,
                propagation_fathoms: sol.stats.propagation_fathoms,
                root_gap_closed: {
                    let pre = sol.stats.root_bound_pre_cuts;
                    let post = sol.stats.root_bound_post_cuts;
                    let gap = pre - sol.objective;
                    if pre.is_finite() && post.is_finite() && gap.abs() > 1e-9 {
                        Some((pre - post) / gap)
                    } else {
                        None
                    }
                },
                rows: sol.stats.rows,
                cols: sol.stats.cols,
            });
        }
    }

    let largest = instances.iter().map(|&(s, _)| s).max().unwrap();
    let time_of = |threads: usize| {
        cells
            .iter()
            .find(|c| c.size == largest && c.threads == threads)
            .map(|c| c.millis)
    };
    let speedup_4t_largest = match (time_of(1), time_of(4)) {
        (Some(t1), Some(t4)) if t4 > 0.0 => Some(t1 / t4),
        _ => None,
    };
    if let Some(s) = speedup_4t_largest {
        println!("speedup at 4 threads on size {largest}: {s:.2}x");
        // The bounded rewrite + diving incumbents shrank the search trees
        // 5-10x, so the remaining parallelizable work per instance is small
        // and the 4-thread ratio is exploration-luck dominated; it is
        // reported (and captured in the JSON trajectory) rather than
        // asserted. The hard guarantees stay asserted above: identical
        // objectives for every thread count and for the reference engine.
        if host_parallelism >= 4 && s < 2.0 {
            println!("note: 4-thread speedup below 2x on a multi-core host — see report");
        }
    }
    for &(size, s) in &speedup_vs_reference {
        println!("size {size}: bounded 1T is {s:.2}x the explicit-bound-row reference");
    }

    // Tree-size trajectory: pseudocost branching vs the previous report's
    // single-thread cells.
    let nodes_vs_previous_1t: Vec<(usize, usize, Option<usize>)> = cells
        .iter()
        .filter(|c| c.threads == 1)
        .map(|c| {
            let prev = previous_cells
                .iter()
                .find(|p| p.size == c.size && p.threads == 1)
                .and_then(|p| p.nodes);
            (c.size, c.nodes, prev)
        })
        .collect();
    for &(size, now, prev) in &nodes_vs_previous_1t {
        match prev {
            Some(prev) => println!("size {size}: {now} nodes at 1T (previous report: {prev})"),
            None => println!("size {size}: {now} nodes at 1T (no previous node data)"),
        }
    }

    let text = format!(
        "milp_scaling: {} cells, host parallelism {}, 4-thread speedup on largest model: {}, \
         bounded-vs-reference 1T speedups: {}\n",
        cells.len(),
        host_parallelism,
        speedup_4t_largest.map_or("n/a".to_string(), |s| format!("{s:.2}x")),
        speedup_vs_reference
            .iter()
            .map(|(sz, s)| format!("{sz}:{s:.2}x"))
            .collect::<Vec<_>>()
            .join(" "),
    );
    let report = Report {
        bench_mode,
        host_parallelism,
        cells,
        reference,
        previous_cells,
        speedup_4t_largest,
        speedup_vs_reference,
        nodes_vs_previous_1t,
        // Reached only if every per-cell node-count/digest assertion held.
        nodes_invariant: true,
    };
    rs_bench::common::write_report(&out_dir, "milp_scaling", &text, &report);
    println!(
        "report written to {}",
        out_dir.join("milp_scaling.json").display()
    );
}
