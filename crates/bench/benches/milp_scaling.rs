//! Thread-scaling benchmark for the parallel MILP engine: random-kernel
//! register-saturation intLP models (Section 3) across a threads × size
//! grid.
//!
//! This target uses a hand-rolled harness instead of criterion because it
//! measures *wall-clock scaling* of one long solve per cell (not
//! per-iteration micro-times) and emits a JSON perf report under
//! `results/milp_scaling.json` for the CI artifact / perf trajectory.
//!
//! Modes follow the criterion convention: `cargo bench` (passes `--bench`)
//! runs the full grid; `--test` (or no `--bench`) runs a small smoke grid.
//! In every mode the reported optimal objective is asserted identical
//! across thread counts — the determinism guarantee of the node pool.

use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_lp::{MilpConfig, Model};
use serde::Serialize;
use std::path::PathBuf;
use std::time::Instant;

#[derive(Serialize)]
struct Cell {
    size: usize,
    threads: usize,
    millis: f64,
    objective: i64,
    nodes: usize,
    lp_solves: usize,
    warm_solves: usize,
}

#[derive(Serialize)]
struct Report {
    bench_mode: bool,
    host_parallelism: usize,
    cells: Vec<Cell>,
    /// Wall-clock speedup of 4 threads over 1 thread on the largest model
    /// (absent when the grid has no 4-thread column).
    speedup_4t_largest: Option<f64>,
}

/// The Section-3 saturation intLP of a seeded random kernel of `ops`
/// operations — the workload whose solve time bounds the exact
/// experiments.
fn random_kernel_model(ops: usize, seed: u64) -> Model {
    let cfg = RandomDagConfig::sized(ops, seed);
    let ddg = random_ddg(&cfg, Target::superscalar());
    RsIlp::new().build_model(&ddg, RegType::FLOAT).0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let bench_mode = args.iter().any(|a| a == "--bench") && !args.iter().any(|a| a == "--test");

    // Curated (size, seed) pairs: the intLP solve-time landscape over
    // random kernels is bimodal (most instances solve in milliseconds, a
    // minority fall off a big-M cliff), so the grid pins seeds whose
    // branch-and-bound trees are large enough to exercise the parallel
    // node pool yet provably finish: ~55, ~1.8k, and ~2k nodes.
    let (instances, thread_grid): (&[(usize, u64)], &[usize]) = if bench_mode {
        (&[(12, 1), (14, 0), (18, 4)], &[1, 2, 4])
    } else {
        (&[(12, 1)], &[1, 2])
    };

    let host_parallelism = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut cells: Vec<Cell> = Vec::new();
    println!("milp_scaling: host parallelism {host_parallelism}");
    println!(
        "{:>6} {:>8} {:>12} {:>10} {:>8} {:>8}",
        "size", "threads", "millis", "objective", "nodes", "warm"
    );

    for &(size, seed) in instances {
        let model = random_kernel_model(size, 0xBEEF + size as u64 + seed * 7919);
        let mut objective: Option<i64> = None;
        for &threads in thread_grid {
            let cfg = MilpConfig::with_threads(threads);
            let start = Instant::now();
            let sol = rs_lp::solve(&model, &cfg).expect("RS model is feasible");
            let millis = start.elapsed().as_secs_f64() * 1e3;
            assert!(sol.stats.proven_optimal, "size {size} hit the budget");
            let obj = sol.objective.round() as i64;
            // Determinism: thread count must not change the optimum.
            match objective {
                None => objective = Some(obj),
                Some(expect) => assert_eq!(
                    obj, expect,
                    "size {size}: threads={threads} changed the objective"
                ),
            }
            println!(
                "{size:>6} {threads:>8} {millis:>12.1} {obj:>10} {:>8} {:>8}",
                sol.stats.nodes, sol.stats.warm_solves
            );
            cells.push(Cell {
                size,
                threads,
                millis,
                objective: obj,
                nodes: sol.stats.nodes,
                lp_solves: sol.stats.lp_solves,
                warm_solves: sol.stats.warm_solves,
            });
        }
    }

    let largest = instances.iter().map(|&(s, _)| s).max().unwrap();
    let time_of = |threads: usize| {
        cells
            .iter()
            .find(|c| c.size == largest && c.threads == threads)
            .map(|c| c.millis)
    };
    let speedup_4t_largest = match (time_of(1), time_of(4)) {
        (Some(t1), Some(t4)) if t4 > 0.0 => Some(t1 / t4),
        _ => None,
    };
    if let Some(s) = speedup_4t_largest {
        println!("speedup at 4 threads on size {largest}: {s:.2}x");
        if host_parallelism >= 4 {
            assert!(
                s >= 2.0,
                "expected >= 2x wall-clock speedup at 4 threads on a >= 4-core host, got {s:.2}x"
            );
        } else {
            println!(
                "(host has only {host_parallelism} hardware thread(s); \
                 speedup assertion skipped)"
            );
        }
    }

    let report = Report {
        bench_mode,
        host_parallelism,
        cells,
        speedup_4t_largest,
    };
    let out_dir = PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../results"));
    let text = format!(
        "milp_scaling: {} cells, host parallelism {}, 4-thread speedup on largest model: {}\n",
        report.cells.len(),
        host_parallelism,
        report
            .speedup_4t_largest
            .map_or("n/a".to_string(), |s| format!("{s:.2}x")),
    );
    rs_bench::common::write_report(&out_dir, "milp_scaling", &text, &report);
    println!(
        "report written to {}",
        out_dir.join("milp_scaling.json").display()
    );
}
