//! **T5 (computation side)** — wall-time scaling of RS computation:
//! Greedy-k heuristic vs combinatorial exact vs the Section-3 intLP.
//!
//! The paper notes its exact CPLEX runs took "many seconds to many days";
//! the reproduced shape is the same — the heuristic is orders of magnitude
//! faster than both exact methods, and the intLP is the slowest.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};

fn bench_heuristic(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_heuristic_greedy_k");
    for &n in &[12usize, 20, 32, 48, 64] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 3), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| GreedyK::new().saturation(black_box(ddg), RegType::FLOAT));
        });
    }
    group.finish();
}

fn bench_exact_enum(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_exact_enumeration");
    group.sample_size(20);
    for &n in &[12usize, 16, 20, 24] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 3), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| ExactRs::new().saturation(black_box(ddg), RegType::FLOAT));
        });
    }
    group.finish();
}

fn bench_exact_ilp(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_exact_intlp");
    group.sample_size(10);
    for &n in &[6usize, 8, 10] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 3), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| {
                RsIlp::new()
                    .saturation(black_box(ddg), RegType::FLOAT)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("rs_heuristic_kernels");
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(k.name), &ddg, |b, ddg| {
            b.iter(|| GreedyK::new().saturation(black_box(ddg), RegType::FLOAT));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_heuristic,
    bench_exact_enum,
    bench_exact_ilp,
    bench_kernels
);
criterion_main!(benches);
