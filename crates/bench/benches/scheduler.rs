//! Benchmarks for the downstream list scheduler and register allocator.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use rs_sched::{ListScheduler, RegisterAllocator, Resources};

fn bench_list_scheduler(c: &mut Criterion) {
    let mut group = c.benchmark_group("list_scheduler");
    for &n in &[16usize, 32, 64, 128] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 17), Target::superscalar());
        group.bench_with_input(BenchmarkId::from_parameter(n), &ddg, |b, ddg| {
            b.iter(|| ListScheduler::new(Resources::four_issue()).schedule(black_box(ddg)));
        });
    }
    group.finish();
}

fn bench_allocator(c: &mut Criterion) {
    let mut group = c.benchmark_group("register_allocator");
    for &n in &[16usize, 32, 64, 128] {
        let ddg = random_ddg(&RandomDagConfig::sized(n, 17), Target::superscalar());
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&ddg);
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(ddg, sched),
            |b, (ddg, sched)| {
                b.iter(|| {
                    RegisterAllocator::new().allocate(
                        black_box(ddg),
                        RegType::FLOAT,
                        &sched.sigma,
                        64,
                    )
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_list_scheduler, bench_allocator);
criterion_main!(benches);
