//! **Figure 2** — the worked example, regenerated as a report.

use rs_core::exact::ExactRs;
use rs_core::minimize::minimize_register_need;
use rs_core::model::{RegType, Target};
use rs_core::reduce::Reducer;
use rs_kernels::figure2::figure2;
use serde::Serialize;
use std::fmt::Write;

/// The three parts of Figure 2, measured.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// Part (a): initial saturation (paper: 4).
    pub initial_rs: usize,
    /// Part (b): saturation after minimization (paper: 2) and arcs added.
    pub minimized_rs: usize,
    /// Arcs the minimizer added.
    pub minimized_arcs: usize,
    /// Part (c): saturation after reduction to R=3 (paper: 3) and arcs.
    pub reduced_rs: usize,
    /// Arcs the reducer added.
    pub reduced_arcs: usize,
    /// Critical path, identical across all three parts.
    pub critical_path: i64,
}

/// Regenerates Figure 2.
pub fn run() -> (String, Report) {
    let t = RegType::FLOAT;
    let (initial, _) = figure2(Target::superscalar());
    let initial_rs = ExactRs::new().saturation(&initial, t).saturation;
    let cp = initial.critical_path();

    let (mut minimized, _) = figure2(Target::superscalar());
    let min_out = minimize_register_need(&mut minimized, t);
    let minimized_rs = ExactRs::new().saturation(&minimized, t).saturation;

    let (mut reduced, _) = figure2(Target::superscalar());
    let red_out = Reducer::new().reduce(&mut reduced, t, 3);
    let reduced_rs = ExactRs::new().saturation(&reduced, t).saturation;

    let report = Report {
        initial_rs,
        minimized_rs,
        minimized_arcs: min_out.added_arcs.len(),
        reduced_rs,
        reduced_arcs: red_out.added_arcs().len(),
        critical_path: cp,
    };

    let mut text = String::new();
    let _ = writeln!(
        text,
        "Figure 2 — RS reduction vs minimal register requirement"
    );
    let _ = writeln!(
        text,
        "======================================================="
    );
    let _ = writeln!(
        text,
        "(a) initial DAG:        RS = {} (paper: 4), critical path {}",
        report.initial_rs, cp
    );
    let _ = writeln!(
        text,
        "(b) minimization:       RS = {} with {} added arcs (paper: restricted to 2 registers)",
        report.minimized_rs, report.minimized_arcs
    );
    let _ = writeln!(
        text,
        "(c) RS reduction (R=3): RS = {} with {} added arcs (paper: reduced from 4 to 3, fewer arcs)",
        report.reduced_rs, report.reduced_arcs
    );
    let _ = writeln!(
        text,
        "critical path after both transformations: {} (unchanged — the 17-cycle value absorbs serializations)",
        reduced.critical_path()
    );
    let _ = writeln!(
        text,
        "\nDOT of the reduced DAG:\n{}",
        reduced.to_dot("figure2c", &[])
    );

    (text, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_numbers() {
        let (text, report) = run();
        assert_eq!(report.initial_rs, 4);
        assert!(report.minimized_rs <= 2);
        assert_eq!(report.reduced_rs, 3);
        assert!(report.reduced_arcs < report.minimized_arcs);
        assert!(text.contains("digraph figure2c"));
    }
}
