//! **T1 — RS computation optimality** (Section 5, first result).
//!
//! Paper: *"Regarding RS computation, the maximal empirical error is one
//! register (in very few cases)."*
//!
//! For every case in the corpus (named kernels + random sweeps), compute
//! the Greedy-k estimate `RS*` and the exact saturation `RS` (combinatorial
//! branch-and-bound; intLP cross-check on small DAGs) and histogram the
//! error `RS − RS*`.

use crate::common::{kernel_cases, par_map, random_cases, Case};
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::Target;
use serde::Serialize;
use std::fmt::Write;

/// Per-case measurement.
#[derive(Clone, Debug, Serialize)]
pub struct CaseResult {
    /// Case name.
    pub name: String,
    /// Operation count (incl. ⊥).
    pub ops: usize,
    /// Value count of the analysed type.
    pub values: usize,
    /// Greedy-k estimate `RS*`.
    pub heuristic: usize,
    /// Exact saturation `RS`.
    pub exact: usize,
    /// Whether the exact search was exhaustive.
    pub exact_proven: bool,
    /// intLP cross-check (small DAGs only).
    pub ilp: Option<usize>,
}

/// Aggregate report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// All measurements.
    pub cases: Vec<CaseResult>,
    /// Histogram of `RS − RS*` (index = error).
    pub error_histogram: Vec<usize>,
    /// Fraction of exactly-estimated cases.
    pub exact_fraction: f64,
    /// Maximum observed error.
    pub max_error: usize,
}

/// Runs the experiment. `ilp_max_values` bounds the intLP cross-check size.
pub fn run(quick: bool) -> (String, Report) {
    let target = Target::superscalar();
    let mut cases = kernel_cases(target.clone());
    let sizes: &[usize] = if quick {
        &[10, 14]
    } else {
        &[8, 10, 12, 14, 16, 20, 24]
    };
    let count = if quick { 6 } else { 30 };
    cases.extend(random_cases(sizes, count, target));
    let ilp_max_values = 5;

    let results: Vec<CaseResult> = par_map(cases, num_threads(), |case: Case| {
        let h = GreedyK::new().saturation(&case.ddg, case.reg_type);
        let e = ExactRs::new().saturation(&case.ddg, case.reg_type);
        let ilp = (case.ddg.values(case.reg_type).len() <= ilp_max_values)
            .then(|| {
                RsIlp::new()
                    .saturation(&case.ddg, case.reg_type)
                    .ok()
                    .filter(|r| r.proven_optimal)
                    .map(|r| r.saturation)
            })
            .flatten();
        CaseResult {
            name: case.name,
            ops: case.ddg.num_ops(),
            values: case.ddg.values(case.reg_type).len(),
            heuristic: h.saturation,
            exact: e.saturation,
            exact_proven: e.proven_optimal,
            ilp,
        }
    });

    let mut hist = vec![0usize; 8];
    let mut max_error = 0usize;
    for r in &results {
        assert!(
            r.heuristic <= r.exact,
            "{}: RS* ({}) must never exceed RS ({})",
            r.name,
            r.heuristic,
            r.exact
        );
        if let Some(ilp) = r.ilp {
            assert_eq!(ilp, r.exact, "{}: intLP and enumeration disagree", r.name);
        }
        let err = r.exact - r.heuristic;
        max_error = max_error.max(err);
        if err < hist.len() {
            hist[err] += 1;
        }
    }
    let exact_fraction = hist[0] as f64 / results.len() as f64;

    let mut text = String::new();
    let _ = writeln!(text, "T1 — RS computation: heuristic RS* vs exact RS");
    let _ = writeln!(text, "================================================");
    let _ = writeln!(
        text,
        "{:<18} {:>4} {:>6} {:>5} {:>5} {:>5} {:>6}",
        "case", "ops", "values", "RS*", "RS", "err", "intLP"
    );
    for r in &results {
        let _ = writeln!(
            text,
            "{:<18} {:>4} {:>6} {:>5} {:>5} {:>5} {:>6}",
            r.name,
            r.ops,
            r.values,
            r.heuristic,
            r.exact,
            r.exact - r.heuristic,
            r.ilp.map_or("-".into(), |v| v.to_string()),
        );
    }
    let _ = writeln!(text);
    let _ = writeln!(text, "error histogram (RS − RS*):");
    for (err, &count) in hist.iter().enumerate() {
        if count > 0 {
            let _ = writeln!(text, "  error {err}: {count} cases");
        }
    }
    let _ = writeln!(
        text,
        "\nexact estimates: {:.1}% of {} cases; max error: {} register(s)",
        exact_fraction * 100.0,
        results.len(),
        max_error
    );
    let _ = writeln!(
        text,
        "paper claim: 'the maximal empirical error is one register (in very few cases)'"
    );

    let report = Report {
        cases: results,
        error_histogram: hist,
        exact_fraction,
        max_error,
    };
    (text, report)
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_paper_claim() {
        let (text, report) = run(true);
        assert!(text.contains("error histogram"));
        assert!(!report.cases.is_empty());
        // the headline claim: error ≤ 1 almost everywhere
        assert!(report.max_error <= 1, "max error {} > 1", report.max_error);
        assert!(
            report.exact_fraction >= 0.8,
            "exact fraction {:.2} too low",
            report.exact_fraction
        );
    }
}
