//! # rs-bench — experiment regenerators and benchmark support
//!
//! One module per paper artifact (see DESIGN.md's experiment index):
//!
//! | module | artifact |
//! |---|---|
//! | [`t1_rs_optimality`] | Section 5, RS-computation optimality ("max error one register, in very few cases") |
//! | [`t2_reduce_optimality`] | Section 5 category table (72.22 % / 18.5 % / 4.63 % / <1 % / 3.7 %) |
//! | [`t3_model_size`] | Section 3 size claim: `O(n²)` vars, `O(m+n²)` constraints vs a time-indexed baseline |
//! | [`t4_min_vs_saturate`] | Section 6 discussion: saturation reduction vs register minimization |
//! | [`figure2`] | Figure 2 worked example |
//!
//! The `experiments` binary drives them and writes `results/*.txt` and
//! `results/*.json`.

#![forbid(unsafe_code)]

pub mod common;
pub mod corpus;
pub mod figure2;
pub mod t1_rs_optimality;
pub mod t2_reduce_optimality;
pub mod t3_model_size;
pub mod t4_min_vs_saturate;
pub mod t5_ablation;
