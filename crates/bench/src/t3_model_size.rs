//! **T3 — intLP model size** (Section 3's complexity claim).
//!
//! Paper: *"given a DAG with n nodes and m arcs, we need O(n²) integer
//! variables and O(m + n²) linear constraints, which is better than the
//! actual size complexity in the literature."*
//!
//! This experiment measures the built model sizes of the paper formulation
//! against a classic time-indexed baseline across a DAG-size sweep, and
//! fits the constant factors.

use rs_core::ilp::RsIlp;
use rs_core::ilp_baseline::build_time_indexed_rs_model;
use rs_core::model::{RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use serde::Serialize;
use std::fmt::Write;

/// One row of the size table.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Node count (incl. ⊥).
    pub n: usize,
    /// Edge count.
    pub m: usize,
    /// Horizon `T = Σ δ(e)`.
    pub horizon: i64,
    /// Paper formulation: integral variables.
    pub paper_int_vars: usize,
    /// Paper formulation: constraints.
    pub paper_constraints: usize,
    /// Time-indexed baseline: integral variables.
    pub baseline_int_vars: usize,
    /// Time-indexed baseline: constraints.
    pub baseline_constraints: usize,
    /// `paper_int_vars / n²` (the paper's O(n²) constant).
    pub paper_var_factor: f64,
    /// `paper_constraints / (m + n²)`.
    pub paper_con_factor: f64,
}

/// Aggregate report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// The sweep rows.
    pub rows: Vec<Row>,
    /// Maximum observed `vars / n²` factor.
    pub max_var_factor: f64,
    /// Maximum observed `constraints / (m + n²)` factor.
    pub max_con_factor: f64,
}

/// Runs the sweep.
pub fn run(quick: bool) -> (String, Report) {
    let sizes: &[usize] = if quick {
        &[8, 12, 16]
    } else {
        &[8, 12, 16, 20, 24, 28, 32]
    };
    let mut rows = Vec::new();
    for &ops in sizes {
        let ddg = random_ddg(
            &RandomDagConfig::sized(ops, 0xBEEF + ops as u64),
            Target::superscalar(),
        );
        let n = ddg.num_ops();
        let m = ddg.graph().edge_count();
        let (paper_model, _) = RsIlp::new().build_model(&ddg, RegType::FLOAT);
        let ps = paper_model.stats();
        let (baseline_model, _) = build_time_indexed_rs_model(&ddg, RegType::FLOAT);
        let bs = baseline_model.stats();
        rows.push(Row {
            n,
            m,
            horizon: ddg.horizon(),
            paper_int_vars: ps.integral() + ps.continuous,
            paper_constraints: ps.constraints,
            baseline_int_vars: bs.integral() + bs.continuous,
            baseline_constraints: bs.constraints,
            paper_var_factor: (ps.integral() + ps.continuous) as f64 / (n * n) as f64,
            paper_con_factor: ps.constraints as f64 / (m + n * n) as f64,
        });
    }
    let max_var_factor = rows.iter().map(|r| r.paper_var_factor).fold(0.0, f64::max);
    let max_con_factor = rows.iter().map(|r| r.paper_con_factor).fold(0.0, f64::max);

    let mut text = String::new();
    let _ = writeln!(
        text,
        "T3 — intLP model sizes: paper formulation vs time-indexed baseline"
    );
    let _ = writeln!(
        text,
        "==================================================================="
    );
    let _ = writeln!(
        text,
        "{:>4} {:>4} {:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>8} {:>8}",
        "n", "m", "T", "paper.var", "paper.con", "base.var", "base.con", "v/n²", "c/(m+n²)"
    );
    for r in &rows {
        let _ = writeln!(
            text,
            "{:>4} {:>4} {:>6} | {:>10} {:>10} | {:>10} {:>10} | {:>8.2} {:>8.2}",
            r.n,
            r.m,
            r.horizon,
            r.paper_int_vars,
            r.paper_constraints,
            r.baseline_int_vars,
            r.baseline_constraints,
            r.paper_var_factor,
            r.paper_con_factor,
        );
    }
    let _ = writeln!(
        text,
        "\nbounded factors: vars ≤ {:.2}·n², constraints ≤ {:.2}·(m+n²) across the sweep",
        max_var_factor, max_con_factor
    );
    let _ = writeln!(
        text,
        "paper claim: O(n²) integer variables, O(m + n²) constraints — \
         the baseline grows with the horizon T as well"
    );

    let report = Report {
        rows,
        max_var_factor,
        max_con_factor,
    };
    (text, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factors_stay_bounded() {
        let (text, report) = run(true);
        assert!(text.contains("bounded factors"));
        // the O(n²)/O(m+n²) claim: constant factors must not grow with n
        let first = report.rows.first().unwrap();
        let last = report.rows.last().unwrap();
        assert!(
            last.paper_var_factor <= first.paper_var_factor * 2.0 + 1.0,
            "variable factor grows: {:?}",
            report
                .rows
                .iter()
                .map(|r| r.paper_var_factor)
                .collect::<Vec<_>>()
        );
        // the baseline is strictly larger at every size
        for r in &report.rows {
            assert!(r.baseline_int_vars > r.paper_int_vars, "n={}", r.n);
        }
    }
}
