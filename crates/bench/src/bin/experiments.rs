//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p rs-bench --release --bin experiments            # all, full size
//! cargo run -p rs-bench --release --bin experiments -- --quick # smaller sweeps
//! cargo run -p rs-bench --release --bin experiments -- --exp t1
//! ```
//!
//! Reports land in `results/*.txt` (human-readable) and `results/*.json`
//! (machine-readable).

#![forbid(unsafe_code)]

use rs_bench::{
    common, figure2, t1_rs_optimality, t2_reduce_optimality, t3_model_size, t4_min_vs_saturate,
    t5_ablation,
};
use std::path::PathBuf;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let exp = args
        .iter()
        .position(|a| a == "--exp")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");
    let out_dir = PathBuf::from(
        args.iter()
            .position(|a| a == "--out")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "results".into()),
    );

    let run_t1 = exp == "all" || exp == "t1" || exp == "rs-optimality";
    let run_t2 = exp == "all" || exp == "t2" || exp == "reduce-optimality";
    let run_t3 = exp == "all" || exp == "t3" || exp == "model-size";
    let run_t4 = exp == "all" || exp == "t4" || exp == "min-vs-saturate";
    let run_f2 = exp == "all" || exp == "f2" || exp == "figure2";
    let run_t5 = exp == "all" || exp == "t5" || exp == "ablation";

    if run_f2 {
        banner("Figure 2");
        let (text, report) = figure2::run();
        println!("{text}");
        common::write_report(&out_dir, "figure2", &text, &report);
    }
    if run_t1 {
        banner("T1 — RS computation optimality");
        let (text, report) = t1_rs_optimality::run(quick);
        println!("{text}");
        common::write_report(&out_dir, "t1_rs_optimality", &text, &report);
    }
    if run_t2 {
        banner("T2 — RS reduction optimality");
        let (text, report) = t2_reduce_optimality::run(quick);
        println!("{text}");
        common::write_report(&out_dir, "t2_reduce_optimality", &text, &report);
    }
    if run_t3 {
        banner("T3 — intLP model sizes");
        let (text, report) = t3_model_size::run(quick);
        println!("{text}");
        common::write_report(&out_dir, "t3_model_size", &text, &report);
    }
    if run_t4 {
        banner("T4 — minimize vs saturate");
        let (text, report) = t4_min_vs_saturate::run(quick);
        println!("{text}");
        common::write_report(&out_dir, "t4_min_vs_saturate", &text, &report);
    }

    if run_t5 {
        banner("T5b — ablations");
        let (text, report) = t5_ablation::run(quick);
        println!("{text}");
        common::write_report(&out_dir, "t5_ablation", &text, &report);
    }

    println!("reports written to {}", out_dir.display());
}

fn banner(title: &str) {
    println!("\n################################################################");
    println!("# {title}");
    println!("################################################################\n");
}
