//! **T2 — RS reduction optimality** (Section 5, category table).
//!
//! The paper classifies every (DAG, register budget) trial by comparing the
//! heuristic reduction against the optimal intLP reduction:
//!
//! | category | meaning | paper |
//! |---|---|---|
//! | (i)(a)  | optimal RS reduction, optimal ILP loss | 72.22 % |
//! | (i)(b)  | optimal RS reduction, sub-optimal ILP loss | 18.5 % |
//! | (ii)(a) | sub-optimal RS reduction, optimal ILP loss | 4.63 % |
//! | (ii)(b) | sub-optimal RS reduction, sub-optimal ILP loss | < 1 % |
//! | (ii)(c) | sub-optimal RS reduction, *super*-optimal ILP loss (extra registers buy ILP) | 3.7 % |
//!
//! Interpretation used here (see EXPERIMENTS.md): the *reduction achieved*
//! is optimal when the heuristic's reduced DAG meets the budget wherever
//! the exact method does; ILP loss is the critical-path increase. Exact
//! reduction comes from the Section-4 intLP, so trials are restricted to
//! intLP-tractable sizes.

use crate::common::{par_map, random_cases, Case};
use rs_core::exact::ExactRs;
use rs_core::ilp::{ReduceIlp, ReduceIlpError};
use rs_core::model::Target;
use rs_core::reduce::Reducer;
use rs_lp::MilpConfig;
use serde::Serialize;
use std::fmt::Write;

/// Classification of one trial.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum Category {
    /// Optimal reduction, optimal ILP loss.
    IA,
    /// Optimal reduction, sub-optimal ILP loss.
    IB,
    /// Sub-optimal reduction, optimal ILP loss.
    IIA,
    /// Sub-optimal reduction, sub-optimal ILP loss.
    IIB,
    /// Sub-optimal reduction, super-optimal ILP loss.
    IIC,
    /// Both methods agree the budget is infeasible (spill unavoidable) —
    /// not counted in the paper's percentages.
    BothInfeasible,
}

/// One (DAG, budget) trial.
#[derive(Clone, Debug, Serialize)]
pub struct Trial {
    /// Case name.
    pub name: String,
    /// Register budget targeted.
    pub budget: usize,
    /// Saturation before reduction.
    pub rs_before: usize,
    /// Exact saturation of the heuristic's reduced DAG (`usize::MAX` if the
    /// heuristic failed).
    pub heur_rs_after: Option<usize>,
    /// Heuristic ILP loss (critical-path increase).
    pub heur_ilp_loss: Option<i64>,
    /// Exact saturation of the intLP's reduced DAG.
    pub opt_rs_after: Option<usize>,
    /// Optimal ILP loss.
    pub opt_ilp_loss: Option<i64>,
    /// Category.
    pub category: Category,
}

/// Aggregate report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// All trials.
    pub trials: Vec<Trial>,
    /// Percentage per category, in (i)(a), (i)(b), (ii)(a), (ii)(b), (ii)(c)
    /// order, over classified trials.
    pub percentages: [f64; 5],
}

/// Runs the experiment on intLP-tractable DAGs.
pub fn run(quick: bool) -> (String, Report) {
    let target = Target::superscalar();
    // Small random DAGs: the intLP must stay tractable (n ≤ ~8 values).
    let count = if quick { 4 } else { 14 };
    let cases = random_cases(&[6, 8, 10], count, target)
        .into_iter()
        .filter(|c| {
            let v = c.ddg.values(c.reg_type).len();
            (2..=6).contains(&v)
        })
        .collect::<Vec<_>>();

    let trials: Vec<Vec<Trial>> = par_map(cases, num_threads(), |case: Case| {
        let t = case.reg_type;
        let rs0 = ExactRs::new().saturation(&case.ddg, t);
        let mut out = Vec::new();
        // sweep budgets below the saturation
        let max_drop = if quick { 2 } else { 3 };
        for drop in 1..=max_drop.min(rs0.saturation.saturating_sub(1)) {
            let budget = rs0.saturation - drop;
            out.push(run_trial(&case, budget, rs0.saturation));
        }
        out
    });
    let trials: Vec<Trial> = trials.into_iter().flatten().collect();

    let mut counts = [0usize; 5];
    let mut classified = 0usize;
    for tr in &trials {
        let idx = match tr.category {
            Category::IA => 0,
            Category::IB => 1,
            Category::IIA => 2,
            Category::IIB => 3,
            Category::IIC => 4,
            Category::BothInfeasible => continue,
        };
        counts[idx] += 1;
        classified += 1;
    }
    let percentages = counts.map(|c| 100.0 * c as f64 / classified.max(1) as f64);

    let mut text = String::new();
    let _ = writeln!(text, "T2 — RS reduction: heuristic vs optimal intLP");
    let _ = writeln!(text, "==============================================");
    let _ = writeln!(
        text,
        "{:<14} {:>3} {:>4} | {:>6} {:>6} | {:>6} {:>6} | {:?}",
        "case", "R", "RS0", "RS*aft", "ILP*", "RSaft", "ILP", "cat"
    );
    for tr in &trials {
        let _ = writeln!(
            text,
            "{:<14} {:>3} {:>4} | {:>6} {:>6} | {:>6} {:>6} | {:?}",
            tr.name,
            tr.budget,
            tr.rs_before,
            opt_str(tr.heur_rs_after),
            opt_str_i(tr.heur_ilp_loss),
            opt_str(tr.opt_rs_after),
            opt_str_i(tr.opt_ilp_loss),
            tr.category,
        );
    }
    let labels = ["(i)(a)", "(i)(b)", "(ii)(a)", "(ii)(b)", "(ii)(c)"];
    let paper = [72.22, 18.5, 4.63, 1.0, 3.7];
    let _ = writeln!(
        text,
        "\ncategory breakdown over {classified} classified trials:"
    );
    let _ = writeln!(text, "{:<8} {:>9} {:>12}", "cat", "measured", "paper");
    for i in 0..5 {
        let _ = writeln!(
            text,
            "{:<8} {:>8.2}% {:>11.2}%{}",
            labels[i],
            percentages[i],
            paper[i],
            if i == 3 { " (paper: <1%)" } else { "" }
        );
    }

    let report = Report {
        trials,
        percentages,
    };
    (text, report)
}

fn run_trial(case: &Case, budget: usize, rs_before: usize) -> Trial {
    let t = case.reg_type;

    // Heuristic reduction.
    let mut heur_ddg = case.ddg.clone();
    let cp_before = heur_ddg.critical_path();
    let heur_out = Reducer::new().reduce(&mut heur_ddg, t, budget);
    let (heur_rs_after, heur_ilp_loss) = if heur_out.fits() {
        let rs = ExactRs::new().saturation(&heur_ddg, t).saturation;
        (Some(rs), Some(heur_ddg.critical_path() - cp_before))
    } else {
        (None, None)
    };

    // Optimal reduction (Section-4 intLP).
    let mut opt_ddg = case.ddg.clone();
    let milp = MilpConfig {
        time_limit: Some(std::time::Duration::from_secs(20)),
        ..MilpConfig::default()
    };
    let opt = ReduceIlp {
        milp,
        ..ReduceIlp::new()
    }
    .reduce(&mut opt_ddg, t, budget);
    let (opt_rs_after, opt_ilp_loss) = match &opt {
        Ok(_res) => {
            let rs = ExactRs::new().saturation(&opt_ddg, t).saturation;
            (Some(rs), Some(opt_ddg.critical_path() - cp_before))
        }
        Err(ReduceIlpError::SpillUnavoidable) => (None, None),
        Err(ReduceIlpError::Budget) => (None, None),
        Err(ReduceIlpError::Rejected(e)) => panic!("audit rejected a generated model: {e}"),
    };

    let category = classify(
        budget,
        heur_rs_after,
        heur_ilp_loss,
        opt_rs_after,
        opt_ilp_loss,
    );
    Trial {
        name: case.name.clone(),
        budget,
        rs_before,
        heur_rs_after,
        heur_ilp_loss,
        opt_rs_after,
        opt_ilp_loss,
        category,
    }
}

fn classify(
    budget: usize,
    heur_rs: Option<usize>,
    heur_ilp: Option<i64>,
    opt_rs: Option<usize>,
    opt_ilp: Option<i64>,
) -> Category {
    match (heur_rs, opt_rs) {
        (None, None) => Category::BothInfeasible,
        (Some(h), Some(_o)) => {
            let heur_ok = h <= budget;
            let (hi, oi) = (heur_ilp.unwrap(), opt_ilp.unwrap());
            if heur_ok {
                if hi <= oi {
                    Category::IA
                } else {
                    Category::IB
                }
            } else if hi == oi {
                Category::IIA
            } else if hi > oi {
                Category::IIB
            } else {
                Category::IIC
            }
        }
        // Heuristic failed where the optimal succeeded: sub-optimal
        // reduction; with no heuristic graph to measure, ILP compares as
        // super-optimal (the untouched DAG keeps all its ILP).
        (None, Some(_)) => Category::IIC,
        // Heuristic "succeeded" where the exact method proved infeasibility
        // cannot happen: heuristic success is witnessed by a valid graph.
        (Some(_), None) => Category::IA,
    }
}

fn opt_str(v: Option<usize>) -> String {
    v.map_or("-".into(), |x| x.to_string())
}

fn opt_str_i(v: Option<i64>) -> String {
    v.map_or("-".into(), |x| x.to_string())
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_dominated_by_both_optimal() {
        let (text, report) = run(true);
        assert!(text.contains("category breakdown"));
        assert!(!report.trials.is_empty());
        // shape of the paper's table: (i)(a) dominates, (ii)(b) rare
        assert!(
            report.percentages[0] >= 50.0,
            "(i)(a) should dominate: {:?}",
            report.percentages
        );
        assert!(
            report.percentages[3] <= 10.0,
            "(ii)(b) should be rare: {:?}",
            report.percentages
        );
    }
}
