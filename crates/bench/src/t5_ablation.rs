//! **T5b — ablations** of the reproduction's own design choices:
//!
//! 1. Greedy-k **hill-climbing refinement** (on/off): how much of the
//!    near-optimality comes from refinement vs the greedy construction;
//! 2. the Section-3 **pair pre-filter** (on/off): model-size and solve-time
//!    impact of the "never simultaneously alive" optimization the paper
//!    lists at the end of Section 3;
//! 3. the ReduceIlp **horizon escalation** (on/off): big-M tightening vs
//!    the paper's worst-case `T = Σ δ(e)`.

use crate::common::{par_map, random_cases, Case};
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::{ReduceIlp, RsIlp};
use rs_core::model::Target;
use rs_lp::MilpConfig;
use serde::Serialize;
use std::fmt::Write;
use std::time::Instant;

/// Aggregate ablation report.
#[derive(Clone, Debug, Serialize, Default)]
pub struct Report {
    /// (exact matches, total, micros) without refinement.
    pub greedy_plain: (usize, usize, u128),
    /// (exact matches, total, micros) with refinement.
    pub greedy_refined: (usize, usize, u128),
    /// (variables, constraints, solve ms) with the pair pre-filter.
    pub ilp_prefiltered: (usize, usize, u128),
    /// (variables, constraints, solve ms) without it.
    pub ilp_unfiltered: (usize, usize, u128),
    /// Reduce-intLP milliseconds with horizon escalation.
    pub reduce_escalated_ms: u128,
    /// Reduce-intLP milliseconds with the paper's full horizon.
    pub reduce_full_horizon_ms: u128,
}

/// Runs the ablations.
pub fn run(quick: bool) -> (String, Report) {
    let mut report = Report::default();
    let target = Target::superscalar();

    // --- 1. refinement ablation ---------------------------------------
    let cases = random_cases(
        if quick { &[12, 16] } else { &[12, 16, 20] },
        if quick { 8 } else { 20 },
        target.clone(),
    );
    let results: Vec<(bool, bool, u128, u128)> = par_map(cases, threads(), |case: Case| {
        let exact = ExactRs::new().saturation(&case.ddg, case.reg_type);
        let t0 = Instant::now();
        let plain = GreedyK {
            refine_passes: 0,
            ..GreedyK::new()
        }
        .saturation(&case.ddg, case.reg_type);
        let plain_us = t0.elapsed().as_micros();
        let t1 = Instant::now();
        let refined = GreedyK::new().saturation(&case.ddg, case.reg_type);
        let refined_us = t1.elapsed().as_micros();
        (
            plain.saturation == exact.saturation,
            refined.saturation == exact.saturation,
            plain_us,
            refined_us,
        )
    });
    let total = results.len();
    report.greedy_plain = (
        results.iter().filter(|r| r.0).count(),
        total,
        results.iter().map(|r| r.2).sum(),
    );
    report.greedy_refined = (
        results.iter().filter(|r| r.1).count(),
        total,
        results.iter().map(|r| r.3).sum(),
    );

    // --- 2. pair pre-filter ablation -----------------------------------
    let small = random_cases(&[7], if quick { 3 } else { 6 }, target.clone())
        .into_iter()
        .filter(|c| (2..=5).contains(&c.ddg.values(c.reg_type).len()))
        .collect::<Vec<_>>();
    let mut pre = (0usize, 0usize, 0u128);
    let mut unf = (0usize, 0usize, 0u128);
    for case in &small {
        for (prefilter, acc) in [(true, &mut pre), (false, &mut unf)] {
            let solver = RsIlp {
                prefilter_pairs: prefilter,
                milp: MilpConfig {
                    time_limit: Some(std::time::Duration::from_secs(30)),
                    ..MilpConfig::default()
                },
                ..RsIlp::new()
            };
            let (model, _) = solver.build_model(&case.ddg, case.reg_type);
            acc.0 += model.stats().variables();
            acc.1 += model.stats().constraints;
            let t0 = Instant::now();
            let _ = solver.saturation(&case.ddg, case.reg_type);
            acc.2 += t0.elapsed().as_millis();
        }
    }
    report.ilp_prefiltered = pre;
    report.ilp_unfiltered = unf;

    // --- 3. horizon escalation ablation ---------------------------------
    for case in small.iter().take(if quick { 2 } else { 4 }) {
        let rs0 = GreedyK::new()
            .saturation(&case.ddg, case.reg_type)
            .saturation;
        if rs0 < 2 {
            continue;
        }
        for (escalate, slot) in [
            (true, &mut report.reduce_escalated_ms),
            (false, &mut report.reduce_full_horizon_ms),
        ] {
            let mut ddg = case.ddg.clone();
            let solver = ReduceIlp {
                escalate_horizon: escalate,
                milp: MilpConfig {
                    time_limit: Some(std::time::Duration::from_secs(30)),
                    ..MilpConfig::default()
                },
            };
            let t0 = Instant::now();
            let _ = solver.reduce(&mut ddg, case.reg_type, rs0 - 1);
            *slot += t0.elapsed().as_millis();
        }
    }

    let mut text = String::new();
    let _ = writeln!(text, "T5b — ablations of the reproduction's design choices");
    let _ = writeln!(text, "====================================================");
    let _ = writeln!(
        text,
        "\n1. Greedy-k hill-climbing refinement (exact matches vs ExactRs):"
    );
    let _ = writeln!(
        text,
        "   plain greedy : {}/{} exact, total {} µs",
        report.greedy_plain.0, report.greedy_plain.1, report.greedy_plain.2
    );
    let _ = writeln!(
        text,
        "   + refinement : {}/{} exact, total {} µs",
        report.greedy_refined.0, report.greedy_refined.1, report.greedy_refined.2
    );
    let _ = writeln!(
        text,
        "\n2. Section-3 pair pre-filter (summed over {} small DAGs):",
        small.len()
    );
    let _ = writeln!(
        text,
        "   with filter   : {} vars, {} constraints, {} ms solve",
        report.ilp_prefiltered.0, report.ilp_prefiltered.1, report.ilp_prefiltered.2
    );
    let _ = writeln!(
        text,
        "   without filter: {} vars, {} constraints, {} ms solve",
        report.ilp_unfiltered.0, report.ilp_unfiltered.1, report.ilp_unfiltered.2
    );
    let _ = writeln!(text, "\n3. ReduceIlp horizon strategy:");
    let _ = writeln!(
        text,
        "   escalated horizon: {} ms;  paper's T = Σδ(e): {} ms",
        report.reduce_escalated_ms, report.reduce_full_horizon_ms
    );

    (text, report)
}

fn threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refinement_never_hurts() {
        let (_, report) = run(true);
        assert!(
            report.greedy_refined.0 >= report.greedy_plain.0,
            "refined {:?} vs plain {:?}",
            report.greedy_refined,
            report.greedy_plain
        );
        // pre-filter can only shrink the model
        assert!(report.ilp_prefiltered.0 <= report.ilp_unfiltered.0);
        assert!(report.ilp_prefiltered.1 <= report.ilp_unfiltered.1);
    }
}
