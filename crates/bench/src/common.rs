//! Shared experiment plumbing: the evaluation corpus, a deterministic
//! parallel map, and result output.

use rs_core::model::{Ddg, RegType, Target};
use rs_kernels::random::{random_ddg, RandomDagConfig};
use serde::Serialize;
use std::io::Write;
use std::path::Path;

/// A DAG under evaluation: name + register type to analyse.
pub struct Case {
    /// Display name, e.g. `"lll1/float"` or `"rand16/seed3"`.
    pub name: String,
    /// The DDG.
    pub ddg: Ddg,
    /// Register type under analysis.
    pub reg_type: RegType,
}

/// The named kernels, one case per register type with ≥ 2 values.
pub fn kernel_cases(target: Target) -> Vec<Case> {
    let mut cases = Vec::new();
    for k in rs_kernels::corpus() {
        let ddg = (k.build)(target.clone());
        for t in ddg.reg_types() {
            if ddg.values(t).len() >= 2 {
                cases.push(Case {
                    name: format!("{}/{:?}", k.name, t),
                    ddg: ddg.clone(),
                    reg_type: t,
                });
            }
        }
    }
    cases
}

/// Random cases: `count` DAGs per size in `sizes`, float type only.
pub fn random_cases(sizes: &[usize], count: usize, target: Target) -> Vec<Case> {
    let mut cases = Vec::new();
    for &n in sizes {
        for i in 0..count {
            let cfg = RandomDagConfig::sized(n, 0x5EED_0000 + (n as u64) * 1000 + i as u64);
            let ddg = random_ddg(&cfg, target.clone());
            if ddg.values(RegType::FLOAT).len() >= 2 {
                cases.push(Case {
                    name: format!("rand{n}/s{i}"),
                    ddg,
                    reg_type: RegType::FLOAT,
                });
            }
        }
    }
    cases
}

/// Order-preserving parallel map with scoped threads — the experiments are
/// embarrassingly parallel per DAG.
pub fn par_map<T: Send, O: Send>(
    items: Vec<T>,
    threads: usize,
    f: impl Fn(T) -> O + Sync,
) -> Vec<O> {
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let threads = threads.clamp(1, n);
    let mut slots: Vec<Option<O>> = (0..n).map(|_| None).collect();
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let queue = std::sync::Mutex::new(work);
    let results = std::sync::Mutex::new(&mut slots);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let item = queue.lock().unwrap().pop();
                match item {
                    Some((idx, t)) => {
                        let out = f(t);
                        results.lock().unwrap()[idx] = Some(out);
                    }
                    None => break,
                }
            });
        }
    });

    slots.into_iter().map(|s| s.expect("slot filled")).collect()
}

/// Writes a text report and a JSON sidecar under `results/`.
pub fn write_report<S: Serialize>(dir: &Path, name: &str, text: &str, data: &S) {
    std::fs::create_dir_all(dir).expect("create results dir");
    let txt_path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&txt_path).expect("create report");
    f.write_all(text.as_bytes()).expect("write report");
    let json_path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(data).expect("serialize");
    std::fs::write(json_path, json).expect("write json");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_cases_cover_corpus() {
        let cases = kernel_cases(Target::superscalar());
        assert!(cases.len() >= 13, "got {}", cases.len());
        // names unique
        let mut names: Vec<_> = cases.iter().map(|c| c.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), cases.len());
    }

    #[test]
    fn random_cases_deterministic() {
        let a = random_cases(&[12], 3, Target::superscalar());
        let b = random_cases(&[12], 3, Target::superscalar());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.ddg.graph().edge_count(), y.ddg.graph().edge_count());
        }
    }

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..50).collect();
        let out = par_map(items.clone(), 8, |x| x * x);
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn par_map_empty_and_single_thread() {
        let out: Vec<u32> = par_map(Vec::<u32>::new(), 4, |x| x);
        assert!(out.is_empty());
        let out = par_map(vec![1u32, 2, 3], 1, |x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }
}
