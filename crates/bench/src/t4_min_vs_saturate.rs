//! **T4 — minimize vs saturate** (Section 6's discussion, quantified).
//!
//! For every kernel and a range of register budgets, compare:
//!
//! - the **RS approach**: reduce saturation only when `RS > R`, only down
//!   to `R`;
//! - the **minimization approach**: drive the register need as low as
//!   possible under an unchanged critical path, regardless of `R`.
//!
//! Reproduced claims: the RS approach adds *zero* arcs when `RS ≤ R`
//! (minimization still adds arcs); with scarce registers the RS approach
//! adds fewer arcs and keeps a higher residual saturation (more scheduler
//! freedom).

use crate::common::{kernel_cases, par_map, Case};
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::minimize::minimize_register_need;
use rs_core::model::Target;
use rs_core::reduce::Reducer;
use rs_sched::{ListScheduler, Resources};
use serde::Serialize;
use std::fmt::Write;

/// One (kernel, budget) comparison.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Case name.
    pub name: String,
    /// Initial saturation.
    pub rs0: usize,
    /// Register budget.
    pub budget: usize,
    /// Arcs added by the RS-reduction approach.
    pub sat_arcs: usize,
    /// Residual saturation after the RS approach.
    pub sat_rs_after: usize,
    /// Makespan under a 4-issue machine after the RS approach.
    pub sat_makespan: i64,
    /// Arcs added by the minimization approach.
    pub min_arcs: usize,
    /// Residual saturation after minimization.
    pub min_rs_after: usize,
    /// Makespan after minimization.
    pub min_makespan: i64,
}

/// Aggregate report.
#[derive(Clone, Debug, Serialize)]
pub struct Report {
    /// All comparisons.
    pub rows: Vec<Row>,
    /// Count of plentiful-register rows where saturation added 0 arcs while
    /// minimization added > 0.
    pub zero_arc_wins: usize,
}

/// Runs the comparison.
pub fn run(quick: bool) -> (String, Report) {
    let cases: Vec<Case> = kernel_cases(Target::superscalar())
        .into_iter()
        .filter(|c| c.reg_type == rs_core::model::RegType::FLOAT)
        .take(if quick { 5 } else { usize::MAX })
        .collect();

    let rows: Vec<Vec<Row>> = par_map(cases, num_threads(), |case: Case| {
        let t = case.reg_type;
        let rs0 = GreedyK::new().saturation(&case.ddg, t).saturation;
        let mut out = Vec::new();
        // plentiful (R = RS0 + 2), exact fit (R = RS0), scarce (RS0 - 2)
        let budgets = [rs0 + 2, rs0, rs0.saturating_sub(2).max(2)];
        for &budget in budgets.iter() {
            // RS approach
            let mut sat = case.ddg.clone();
            let sat_out = Reducer::new().reduce(&mut sat, t, budget);
            let sat_sched = ListScheduler::new(Resources::four_issue()).schedule(&sat);
            // minimization approach (budget-oblivious by definition)
            let mut min = case.ddg.clone();
            let min_out = minimize_register_need(&mut min, t);
            let min_sched = ListScheduler::new(Resources::four_issue()).schedule(&min);
            out.push(Row {
                name: case.name.clone(),
                rs0,
                budget,
                sat_arcs: sat_out.added_arcs().len(),
                sat_rs_after: ExactRs::new().saturation(&sat, t).saturation,
                sat_makespan: sat_sched.makespan,
                min_arcs: min_out.added_arcs.len(),
                min_rs_after: ExactRs::new().saturation(&min, t).saturation,
                min_makespan: min_sched.makespan,
            });
        }
        out
    });
    let rows: Vec<Row> = rows.into_iter().flatten().collect();

    let zero_arc_wins = rows
        .iter()
        .filter(|r| r.budget >= r.rs0 && r.sat_arcs == 0 && r.min_arcs > 0)
        .count();

    let mut text = String::new();
    let _ = writeln!(
        text,
        "T4 — saturation reduction vs register-need minimization"
    );
    let _ = writeln!(
        text,
        "========================================================"
    );
    let _ = writeln!(
        text,
        "{:<16} {:>4} {:>4} | {:>7} {:>7} {:>8} | {:>7} {:>7} {:>8}",
        "case", "RS0", "R", "sat.arc", "sat.RS", "sat.span", "min.arc", "min.RS", "min.span"
    );
    for r in &rows {
        let _ = writeln!(
            text,
            "{:<16} {:>4} {:>4} | {:>7} {:>7} {:>8} | {:>7} {:>7} {:>8}",
            r.name,
            r.rs0,
            r.budget,
            r.sat_arcs,
            r.sat_rs_after,
            r.sat_makespan,
            r.min_arcs,
            r.min_rs_after,
            r.min_makespan,
        );
    }
    let _ = writeln!(
        text,
        "\nplentiful-register rows where saturation adds 0 arcs but minimization adds some: {}",
        zero_arc_wins
    );
    let _ = writeln!(
        text,
        "paper claim (Section 6): 'While the minimization approach add extra arcs, our method doesn't.'"
    );

    let report = Report {
        rows,
        zero_arc_wins,
    };
    (text, report)
}

fn num_threads() -> usize {
    std::thread::available_parallelism().map_or(4, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_beats_minimization_when_registers_plentiful() {
        let (_, report) = run(true);
        assert!(!report.rows.is_empty());
        for r in report.rows.iter().filter(|r| r.budget >= r.rs0) {
            assert_eq!(
                r.sat_arcs, 0,
                "{}: RS approach must not touch a fitting DAG",
                r.name
            );
            assert!(r.sat_rs_after <= r.budget.max(r.rs0));
        }
        assert!(
            report.zero_arc_wins > 0,
            "minimization should add arcs somewhere"
        );
        // minimization never keeps more freedom than saturation
        for r in &report.rows {
            assert!(
                r.min_rs_after <= r.sat_rs_after.max(r.rs0),
                "{}: minimization left MORE saturation than the RS approach",
                r.name
            );
        }
    }
}
