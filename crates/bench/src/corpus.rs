//! The parallel corpus driver behind `rsat corpus <dir>`: walk a directory
//! of `.ddg` files and run each one through the same [`Dispatcher`] that
//! powers `rsat serve` and the one-shot subcommands — one dispatcher (and
//! therefore one warm [`rs_core::engine::RsEngine`]) per worker thread —
//! then fold the [`rs_core::request::RsResponse`]s into a
//! JSON-serializable summary. The corpus runner is a batch *client* of the
//! service dispatch path, not a third execution stack.
//!
//! Error containment is per file: a malformed `.ddg` becomes an `ok: false`
//! entry carrying the structured [`RsError`] and the run continues.
//! Summaries are deterministic in everything except wall-clock fields,
//! independent of `jobs` (asserted by `tests/corpus_cli.rs`).

use rs_core::request::{codes, reg_type_from_name, RsError, RsOp, RsRequest};
use rs_serve::{CheckpointStore, Dispatcher, FaultPlan};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What to run per file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusMode {
    /// Saturation analysis of every register type.
    Analyze,
    /// Analysis plus reduction to the given per-type budget.
    Reduce {
        /// Register budget per type.
        registers: usize,
    },
    /// Analysis plus the full Figure-1 pipeline under a uniform budget.
    Pipeline {
        /// Register budget per type.
        registers: usize,
    },
}

impl CorpusMode {
    fn op(self) -> RsOp {
        match self {
            CorpusMode::Analyze => RsOp::Analyze,
            CorpusMode::Reduce { .. } => RsOp::Reduce,
            CorpusMode::Pipeline { .. } => RsOp::Pipeline,
        }
    }

    fn registers(self) -> Option<usize> {
        match self {
            CorpusMode::Analyze => None,
            CorpusMode::Reduce { registers } | CorpusMode::Pipeline { registers } => {
                Some(registers)
            }
        }
    }
}

/// Corpus run configuration.
#[derive(Clone, Debug)]
pub struct CorpusOptions {
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
    /// Per-file work.
    pub mode: CorpusMode,
    /// Per-file deadline; a file whose analysis exceeds it is recorded as
    /// a `timeout` entry (with the run continuing).
    pub timeout_ms: Option<u64>,
    /// Extra attempts for failed files. Codes `panic` and `overloaded`
    /// are transient (exponential backoff between attempts); `timeout` is
    /// retried immediately because each attempt *resumes* the interrupted
    /// branch-and-bound search from its checkpoint — attempts compose
    /// into one larger budget instead of repeating the same prefix.
    pub retries: usize,
    /// Also run the exact intLP saturation solver per file (analyze mode).
    /// This is the resumable solver: with `retries` and a `timeout_ms`,
    /// interrupted files pick their search back up on the next attempt.
    pub ilp: bool,
    /// Periodic run checkpoint file. Completed per-file entries are
    /// rewritten here (atomically, tmp + rename) after every file, and a
    /// rerun pointed at the same path skips files it already covers — a
    /// corpus run killed mid-way resumes instead of restarting. Removed
    /// on successful completion.
    pub resume_path: Option<PathBuf>,
    /// Fault injection plan (chaos testing); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            jobs: 1,
            mode: CorpusMode::Analyze,
            timeout_ms: None,
            retries: 0,
            ilp: false,
            resume_path: None,
            faults: None,
        }
    }
}

/// Whether a failed response is worth retrying *with backoff*:
/// injected/contained panics and shed-on-overload answers are transient
/// (the next attempt runs on a replaced engine or an idler queue).
/// Timeouts are retried too, but immediately and via checkpoint resume
/// (see [`run_file`]); every other code is deterministic for the same
/// input and would just fail again.
fn is_transient(code: &str) -> bool {
    code == codes::PANIC || code == codes::OVERLOADED
}

/// Per-type analysis outcome of one file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusTypeSummary {
    /// Register type (index form, as in `rs_core::pipeline::TypeReport`).
    pub reg_type: u8,
    /// Number of values of this type.
    pub values: usize,
    /// Greedy-k saturation estimate `RS*` (in reduce/pipeline modes: the
    /// estimate immediately before this type's reduction).
    pub saturation: usize,
    /// Exact intLP saturation ([`CorpusOptions::ilp`]); `None` when the
    /// solver was not run or was interrupted before finding an incumbent.
    pub ilp_saturation: Option<usize>,
    /// Reduction outcome (reduce/pipeline modes only).
    pub reduce: Option<CorpusReduceSummary>,
}

/// Reduction outcome of one (file, type) pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusReduceSummary {
    /// Register budget applied.
    pub budget: usize,
    /// Saturation after reduction (best reached when `fits` is false).
    pub rs_after: usize,
    /// Serialization arcs added.
    pub arcs_added: usize,
    /// Critical path before reduction.
    pub cp_before: i64,
    /// Critical path after reduction.
    pub cp_after: i64,
    /// Whether the budget was met.
    pub fits: bool,
}

/// Outcome of one corpus file.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CorpusFileSummary {
    /// File name relative to the corpus directory.
    pub file: String,
    /// Whether the file parsed and analysed.
    pub ok: bool,
    /// Structured error (shared `{code, message}` shape) when `ok` is false.
    pub error: Option<RsError>,
    /// Operation count (incl. ⊥); 0 when the file failed to parse.
    pub ops: usize,
    /// Edge count.
    pub edges: usize,
    /// Critical path length.
    pub critical_path: i64,
    /// List-schedule makespan (pipeline mode with every budget met).
    pub makespan: Option<i64>,
    /// Per-type outcomes, ascending register type.
    pub types: Vec<CorpusTypeSummary>,
    /// Wall-clock milliseconds spent on this file (excluded from the
    /// `jobs`-independence guarantee).
    pub millis: f64,
    /// Transient-failure retries this file needed (excluded from the
    /// `jobs`-independence guarantee: the fault schedule depends on
    /// cross-worker arrival order).
    pub retries: usize,
    /// How many of those retries *resumed* an interrupted search from a
    /// parked checkpoint (as opposed to cold restarts). Also excluded
    /// from the `jobs`-independence guarantee.
    pub resumed: usize,
}

impl CorpusFileSummary {
    /// The `jobs`-independent content of this entry (everything except
    /// timing) — what `--jobs 1` and `--jobs N` runs must agree on.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_view(
        &self,
    ) -> (
        &str,
        bool,
        &Option<RsError>,
        usize,
        usize,
        i64,
        Option<i64>,
        &[CorpusTypeSummary],
    ) {
        (
            &self.file,
            self.ok,
            &self.error,
            self.ops,
            self.edges,
            self.critical_path,
            self.makespan,
            &self.types,
        )
    }
}

/// Summary of a whole corpus run.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusSummary {
    /// Corpus directory as given.
    pub dir: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Mode label (`"analyze"`, `"reduce"`, `"pipeline"`).
    pub mode: String,
    /// Files discovered.
    pub file_count: usize,
    /// Files analysed successfully.
    pub analyzed: usize,
    /// Files skipped with an error entry.
    pub failed: usize,
    /// Files restored from a [`CorpusOptions::resume_path`] checkpoint
    /// of an earlier, interrupted run (their entries appear in `files`
    /// like any other, but were not re-analysed).
    pub restored: usize,
    /// Total wall-clock milliseconds of the parallel region.
    pub total_millis: f64,
    /// Per-file entries, sorted by file name.
    pub files: Vec<CorpusFileSummary>,
}

/// Runs the corpus under `dir`. Returns an error only for driver-level
/// failures (unreadable directory, no `.ddg` files); malformed corpus files
/// are contained as `ok: false` entries.
pub fn run_corpus(dir: &Path, opts: &CorpusOptions) -> Result<CorpusSummary, RsError> {
    if opts.mode.registers() == Some(0) {
        return Err(RsError::usage("register budget must be at least 1"));
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| {
            RsError::new(
                codes::IO,
                format!("cannot read directory {}: {e}", dir.display()),
            )
        })?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.is_file() && path.extension().is_some_and(|x| x == "ddg")).then_some(path)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(RsError::usage(format!(
            "no .ddg files in {}",
            dir.display()
        )));
    }

    let jobs = opts.jobs.clamp(1, paths.len());
    let next = AtomicUsize::new(0);
    let mode_name = opts.mode.op().name().to_string();
    let mut slots: Vec<Option<CorpusFileSummary>> = (0..paths.len()).map(|_| None).collect();

    // A rerun pointed at the same `--resume` file restores the entries an
    // earlier (killed) run already completed; its workers only touch the
    // empty slots, so the final summary covers every file exactly once.
    let mut restored = 0;
    if let Some(rp) = &opts.resume_path {
        let mut prior = load_resume(rp, &mode_name);
        for (i, path) in paths.iter().enumerate() {
            let name = path.strip_prefix(dir).unwrap_or(path).display().to_string();
            if let Some(entry) = prior.remove(&name) {
                slots[i] = Some(entry);
                restored += 1;
            }
        }
    }
    let results = Mutex::new(&mut slots);
    // One checkpoint store for the whole run: a file whose timed-out
    // attempt parked a search checkpoint resumes it on the retry, no
    // matter which worker runs it.
    let ckpts = Arc::new(CheckpointStore::default());

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Per-worker dispatcher: a private warm engine across files,
                // the same execution path as `rsat serve` (cache-less —
                // every corpus file is distinct work).
                let mut dispatcher = Dispatcher::new();
                dispatcher.set_checkpoint_store(Arc::clone(&ckpts));
                if let Some(plan) = &opts.faults {
                    dispatcher.set_faults(Arc::clone(plan));
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(path) = paths.get(i) else { break };
                    if results.lock().unwrap()[i].is_some() {
                        continue; // restored from the resume checkpoint
                    }
                    let summary = run_file(&mut dispatcher, dir, path, opts, &ckpts);
                    let mut held = results.lock().unwrap();
                    held[i] = Some(summary);
                    if let Some(rp) = &opts.resume_path {
                        // Rewrite the whole checkpoint after each file
                        // (atomic: tmp + rename). Corpora are small; the
                        // simplicity is worth the quadratic rewrites.
                        let done: Vec<&CorpusFileSummary> = held.iter().flatten().collect();
                        save_resume(rp, &mode_name, &done);
                    }
                }
            });
        }
    });
    let total_millis = start.elapsed().as_secs_f64() * 1e3;

    let files: Vec<CorpusFileSummary> = slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect();
    if let Some(rp) = &opts.resume_path {
        // The run covered everything: a later rerun should start fresh.
        let _ = std::fs::remove_file(rp);
    }
    let analyzed = files.iter().filter(|f| f.ok).count();
    Ok(CorpusSummary {
        dir: dir.display().to_string(),
        jobs,
        mode: mode_name,
        file_count: files.len(),
        analyzed,
        failed: files.len() - analyzed,
        restored,
        total_millis,
        files,
    })
}

/// On-disk shape of a `--resume` run checkpoint.
#[derive(Serialize, Deserialize)]
struct ResumeFile {
    version: u32,
    mode: String,
    files: Vec<CorpusFileSummary>,
}

const RESUME_VERSION: u32 = 1;

/// Loads a run checkpoint, keyed by file name. Unreadable, malformed, or
/// mismatched (different mode/version) checkpoints are ignored — the run
/// simply starts cold, mirroring how the solvers treat a checkpoint from
/// a different model.
fn load_resume(path: &Path, mode: &str) -> HashMap<String, CorpusFileSummary> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return HashMap::new();
    };
    let parsed = serde_json::from_str(&text)
        .ok()
        .and_then(|v| ResumeFile::from_value(&v).ok());
    match parsed {
        Some(r) if r.version == RESUME_VERSION && r.mode == mode => {
            r.files.into_iter().map(|f| (f.file.clone(), f)).collect()
        }
        _ => HashMap::new(),
    }
}

/// Atomically rewrites the run checkpoint (tmp + rename), so a kill at
/// any instant leaves either the old or the new checkpoint, never a torn
/// one. Best-effort: IO errors are swallowed (checkpointing must never
/// fail the run it protects).
fn save_resume(path: &Path, mode: &str, files: &[&CorpusFileSummary]) {
    let snapshot = ResumeFile {
        version: RESUME_VERSION,
        mode: mode.to_string(),
        files: files.iter().map(|f| (*f).clone()).collect(),
    };
    let Ok(json) = serde_json::to_string(&snapshot) else {
        return;
    };
    let tmp = path.with_extension("tmp");
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

fn run_file(
    dispatcher: &mut Dispatcher,
    dir: &Path,
    path: &Path,
    opts: &CorpusOptions,
    ckpts: &CheckpointStore,
) -> CorpusFileSummary {
    let mode = opts.mode;
    let name = path.strip_prefix(dir).unwrap_or(path).display().to_string();
    let start = Instant::now();
    let fail = |error: RsError, start: Instant, retries: usize, resumed: usize| CorpusFileSummary {
        file: name.clone(),
        ok: false,
        error: Some(error),
        ops: 0,
        edges: 0,
        critical_path: 0,
        makespan: None,
        types: Vec::new(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        retries,
        resumed,
    };

    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return fail(
                RsError::new(codes::IO, format!("cannot read: {e}")),
                start,
                0,
                0,
            )
        }
    };

    let mut req = RsRequest::new(mode.op(), input);
    req.registers = mode.registers();
    req.cache = false;
    req.ilp = opts.ilp;
    req.timeout_ms = opts.timeout_ms;
    let mut retries = 0;
    let mut resumed = 0;
    let resp = loop {
        let resp = dispatcher.dispatch(&req);
        if resp.ok || retries >= opts.retries {
            break resp;
        }
        match resp.error.as_ref() {
            Some(e) if is_transient(&e.code) => {
                retries += 1;
                // Exponential backoff: 10 ms, 20 ms, 40 ms, ... capped at
                // half a second so a chaos run cannot stall the corpus.
                let backoff = Duration::from_millis(10 << (retries - 1).min(6));
                std::thread::sleep(backoff.min(Duration::from_millis(500)));
            }
            // A timed-out attempt is worth retrying *without* backoff:
            // each attempt gets a fresh deadline, and when the interrupted
            // search parked a checkpoint the next attempt resumes it
            // node-for-node — attempts compose into one larger budget.
            Some(e) if e.code == codes::TIMEOUT => retries += 1,
            _ => break resp,
        }
        if ckpts.contains(&req.cache_key()) {
            resumed += 1; // this retry continues a parked search
        }
    };
    if !resp.ok {
        let error = resp
            .error
            .unwrap_or_else(|| RsError::new(codes::ENGINE, "missing error detail"));
        return fail(error, start, retries, resumed);
    }
    let result = resp.result.expect("ok response carries a result");

    let types = result
        .types
        .iter()
        .map(|tr| CorpusTypeSummary {
            reg_type: reg_type_from_name(&tr.reg_type)
                .map(|t| t.0)
                .expect("dispatcher emits known type names"),
            values: tr.values,
            saturation: tr.saturation,
            ilp_saturation: tr.ilp.as_ref().map(|s| s.saturation),
            reduce: tr.reduce.as_ref().map(|r| CorpusReduceSummary {
                budget: r.budget,
                rs_after: r.rs_after,
                arcs_added: r.arcs_added,
                cp_before: r.cp_before,
                cp_after: r.cp_after,
                fits: r.fits,
            }),
        })
        .collect();

    CorpusFileSummary {
        file: name,
        ok: true,
        error: None,
        ops: result.ops,
        edges: result.edges,
        critical_path: result.critical_path,
        makespan: result.makespan,
        types,
        millis: start.elapsed().as_secs_f64() * 1e3,
        retries,
        resumed,
    }
}

/// Renders the human-readable run summary printed by `rsat corpus` and
/// stored as the `.txt` sidecar.
pub fn render_text(summary: &CorpusSummary) -> String {
    use rs_core::model::RegType;
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus {}: {} files, {} analyzed, {} failed, jobs {}, mode {}, {:.1} ms",
        summary.dir,
        summary.file_count,
        summary.analyzed,
        summary.failed,
        summary.jobs,
        summary.mode,
        summary.total_millis
    );
    for f in &summary.files {
        if f.ok {
            let types: Vec<String> = f
                .types
                .iter()
                .map(|t| {
                    let mut s = format!("{:?}: RS* = {}", RegType(t.reg_type), t.saturation);
                    if let Some(r) = &t.reduce {
                        let _ = write!(
                            s,
                            " -> {} (budget {}, +{} arcs{})",
                            r.rs_after,
                            r.budget,
                            r.arcs_added,
                            if r.fits { "" } else { ", INFEASIBLE" }
                        );
                    }
                    s
                })
                .collect();
            let _ = writeln!(
                out,
                "  {}: {} ops, {} edges, cp {} | {}",
                f.file,
                f.ops,
                f.edges,
                f.critical_path,
                types.join("; ")
            );
        } else {
            let _ = writeln!(
                out,
                "  {}: SKIPPED ({})",
                f.file,
                f.error.as_ref().map_or("unknown error", |e| &e.message)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data"))
    }

    fn error_message(f: &CorpusFileSummary) -> &str {
        &f.error.as_ref().expect("failed entry has an error").message
    }

    #[test]
    fn runs_shipped_fixtures() {
        let summary = run_corpus(&fixture_dir(), &CorpusOptions::default()).unwrap();
        assert!(summary.file_count >= 2);
        assert_eq!(summary.failed, 0);
        assert!(summary.files.iter().all(|f| f.ok && !f.types.is_empty()));
        // sorted by name
        let names: Vec<_> = summary.files.iter().map(|f| f.file.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn jobs_do_not_change_the_analysis() {
        let one = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        let four = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 4,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.file_count, four.file_count);
        for (a, b) in one.files.iter().zip(&four.files) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn malformed_file_is_contained() {
        let dir = std::env::temp_dir().join("rsat_corpus_unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.ddg"), "op a load float\n").unwrap();
        std::fs::write(
            dir.join("bad.ddg"),
            "op a load float\nflow a ghost 1 float\n",
        )
        .unwrap();
        let summary = run_corpus(&dir, &CorpusOptions::default()).unwrap();
        assert_eq!(summary.file_count, 2);
        assert_eq!(summary.analyzed, 1);
        assert_eq!(summary.failed, 1);
        let bad = summary.files.iter().find(|f| f.file == "bad.ddg").unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.error.as_ref().unwrap().code, codes::PARSE);
        assert!(error_message(bad).contains("line 2"), "{:?}", bad.error);
        let text = render_text(&summary);
        assert!(text.contains("SKIPPED"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cyclic_and_self_loop_files_are_contained() {
        // builder-level model violations must surface as parse errors, not
        // worker panics that abort the whole run
        let dir = std::env::temp_dir().join("rsat_corpus_cyclic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.ddg"), "op a load float\n").unwrap();
        std::fs::write(
            dir.join("cycle.ddg"),
            "op a load float\nop b store none\nserial a b 1\nserial b a 1\n",
        )
        .unwrap();
        std::fs::write(dir.join("selfloop.ddg"), "op a load float\nserial a a 1\n").unwrap();
        std::fs::write(
            dir.join("vliw_lat.ddg"),
            "target vliw\nop a load float\nop b store none\nflow a b 0 float\n",
        )
        .unwrap();
        let summary = run_corpus(
            &dir,
            &CorpusOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(summary.file_count, 4);
        assert_eq!(summary.analyzed, 1);
        assert_eq!(summary.failed, 3);
        let by_name = |n: &str| summary.files.iter().find(|f| f.file == n).unwrap();
        assert!(error_message(by_name("cycle.ddg")).contains("cycle"));
        assert!(error_message(by_name("selfloop.ddg")).contains("self-loop"));
        assert!(error_message(by_name("vliw_lat.ddg")).contains("latency"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reduce_mode_skips_duplicate_analysis_but_reports_saturation() {
        let summary = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        let expr = summary.files.iter().find(|f| f.file == "expr.ddg").unwrap();
        let float = expr.types.iter().find(|t| t.reg_type == 1).unwrap();
        assert_eq!(float.saturation, 4);
        let r = float.reduce.as_ref().unwrap();
        assert!(r.fits && r.rs_after <= 3 && r.arcs_added >= 1);
    }

    #[test]
    fn pipeline_mode_reports_makespan() {
        let summary = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Pipeline { registers: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        let daxpy = summary
            .files
            .iter()
            .find(|f| f.file == "daxpy.ddg")
            .unwrap();
        assert!(daxpy.ok);
        assert!(
            daxpy.makespan.is_some(),
            "pipeline mode surfaces the schedule makespan"
        );
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        let dir = std::env::temp_dir().join("rsat_corpus_retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.ddg"), "op a load float\n").unwrap();
        std::fs::write(dir.join("b.ddg"), "op b load float\n").unwrap();
        // jobs=1 makes the fault schedule line up with file order:
        // tick 1 (a.ddg) clean, tick 2 (b.ddg) panics, tick 3 (the retry
        // of b.ddg) clean again.
        let faulted = |retries| CorpusOptions {
            jobs: 1,
            retries,
            faults: Some(Arc::new(FaultPlan::from_spec("panic=2").unwrap())),
            ..Default::default()
        };
        let no_retry = run_corpus(&dir, &faulted(0)).unwrap();
        assert_eq!(no_retry.analyzed, 1);
        let b = no_retry.files.iter().find(|f| f.file == "b.ddg").unwrap();
        assert_eq!(b.error.as_ref().unwrap().code, codes::PANIC);

        let retried = run_corpus(&dir, &faulted(2)).unwrap();
        assert_eq!(retried.analyzed, 2, "retry recovers the panicked file");
        let b = retried.files.iter().find(|f| f.file == "b.ddg").unwrap();
        assert!(b.ok);
        assert_eq!(b.retries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_transient_failures_are_not_retried() {
        let dir = std::env::temp_dir().join("rsat_corpus_no_retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.ddg"), "op a load float\nflow a g 1 float\n").unwrap();
        let summary = run_corpus(
            &dir,
            &CorpusOptions {
                retries: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let bad = summary.files.iter().find(|f| f.file == "bad.ddg").unwrap();
        assert_eq!(bad.error.as_ref().unwrap().code, codes::PARSE);
        assert_eq!(bad.retries, 0, "parse errors are deterministic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn timed_out_ilp_retries_resume_from_checkpoints() {
        let dir = std::env::temp_dir().join("rsat_corpus_resume_retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(
            dir.join("chains.ddg"),
            "op a load float\nop sa store none\nflow a sa 4 float\n\
             op b load float\nop sb store none\nflow b sb 4 float\n",
        )
        .unwrap();
        // A 0 ms deadline interrupts the intLP on every attempt, so each
        // attempt parks a checkpoint and each retry finds one to resume.
        let summary = run_corpus(
            &dir,
            &CorpusOptions {
                ilp: true,
                timeout_ms: Some(0),
                retries: 2,
                ..Default::default()
            },
        )
        .unwrap();
        let f = summary.files.first().unwrap();
        assert!(!f.ok);
        assert_eq!(f.error.as_ref().unwrap().code, codes::TIMEOUT);
        assert_eq!(f.retries, 2);
        assert_eq!(f.resumed, 2, "every retry continued the parked search");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn killed_run_resumes_from_checkpoint_file() {
        let dir = std::env::temp_dir().join("rsat_corpus_resume_file");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.ddg"), "op a load float\n").unwrap();
        std::fs::write(dir.join("b.ddg"), "op b load float\n").unwrap();
        let resume = dir.join("resume.json");
        let with_resume = || CorpusOptions {
            resume_path: Some(resume.clone()),
            ..Default::default()
        };
        let full = run_corpus(&dir, &with_resume()).unwrap();
        assert_eq!(full.restored, 0);
        assert!(!resume.exists(), "completed run removes its checkpoint");

        // Simulate a run killed after a.ddg: a checkpoint holding only
        // a's entry. The rerun restores it and analyses only b.ddg.
        let partial = ResumeFile {
            version: RESUME_VERSION,
            mode: "analyze".into(),
            files: vec![full.files[0].clone()],
        };
        std::fs::write(&resume, serde_json::to_string(&partial).unwrap()).unwrap();
        let rerun = run_corpus(&dir, &with_resume()).unwrap();
        assert_eq!(rerun.restored, 1);
        assert_eq!(rerun.file_count, 2, "every file covered exactly once");
        for (a, b) in full.files.iter().zip(&rerun.files) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
        assert!(!resume.exists(), "rerun completed and cleaned up");

        // A checkpoint from a different mode is ignored, not trusted.
        let foreign = ResumeFile {
            version: RESUME_VERSION,
            mode: "reduce".into(),
            files: vec![full.files[0].clone()],
        };
        std::fs::write(&resume, serde_json::to_string(&foreign).unwrap()).unwrap();
        let cold = run_corpus(&dir, &with_resume()).unwrap();
        assert_eq!(cold.restored, 0, "mismatched mode starts cold");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_a_driver_error() {
        let dir = std::env::temp_dir().join("rsat_corpus_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(run_corpus(&dir, &CorpusOptions::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_budget_is_a_driver_error() {
        for mode in [
            CorpusMode::Reduce { registers: 0 },
            CorpusMode::Pipeline { registers: 0 },
        ] {
            let e = run_corpus(
                &fixture_dir(),
                &CorpusOptions {
                    jobs: 1,
                    mode,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(e.message.contains("at least 1"), "{e}");
        }
    }
}
