//! The parallel corpus driver behind `rsat corpus <dir>`: walk a directory
//! of `.ddg` files and run each one through the same [`Dispatcher`] that
//! powers `rsat serve` and the one-shot subcommands — one dispatcher (and
//! therefore one warm [`rs_core::engine::RsEngine`]) per worker thread —
//! then fold the [`rs_core::request::RsResponse`]s into a
//! JSON-serializable summary. The corpus runner is a batch *client* of the
//! service dispatch path, not a third execution stack.
//!
//! Error containment is per file: a malformed `.ddg` becomes an `ok: false`
//! entry carrying the structured [`RsError`] and the run continues.
//! Summaries are deterministic in everything except wall-clock fields,
//! independent of `jobs` (asserted by `tests/corpus_cli.rs`).

use rs_core::request::{codes, reg_type_from_name, RsError, RsOp, RsRequest};
use rs_serve::{Dispatcher, FaultPlan};
use serde::Serialize;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// What to run per file.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CorpusMode {
    /// Saturation analysis of every register type.
    Analyze,
    /// Analysis plus reduction to the given per-type budget.
    Reduce {
        /// Register budget per type.
        registers: usize,
    },
    /// Analysis plus the full Figure-1 pipeline under a uniform budget.
    Pipeline {
        /// Register budget per type.
        registers: usize,
    },
}

impl CorpusMode {
    fn op(self) -> RsOp {
        match self {
            CorpusMode::Analyze => RsOp::Analyze,
            CorpusMode::Reduce { .. } => RsOp::Reduce,
            CorpusMode::Pipeline { .. } => RsOp::Pipeline,
        }
    }

    fn registers(self) -> Option<usize> {
        match self {
            CorpusMode::Analyze => None,
            CorpusMode::Reduce { registers } | CorpusMode::Pipeline { registers } => {
                Some(registers)
            }
        }
    }
}

/// Corpus run configuration.
#[derive(Clone, Debug)]
pub struct CorpusOptions {
    /// Worker threads (clamped to ≥ 1).
    pub jobs: usize,
    /// Per-file work.
    pub mode: CorpusMode,
    /// Per-file deadline; a file whose analysis exceeds it is recorded as
    /// a `timeout` entry (with the run continuing).
    pub timeout_ms: Option<u64>,
    /// Extra attempts for transiently-failed files (codes `panic` and
    /// `overloaded`), with exponential backoff between attempts.
    pub retries: usize,
    /// Fault injection plan (chaos testing); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for CorpusOptions {
    fn default() -> Self {
        CorpusOptions {
            jobs: 1,
            mode: CorpusMode::Analyze,
            timeout_ms: None,
            retries: 0,
            faults: None,
        }
    }
}

/// Whether a failed response is worth retrying: injected/contained panics
/// and shed-on-overload answers are transient (the next attempt runs on a
/// replaced engine or an idler queue); every other code is deterministic
/// for the same input and would just fail again.
fn is_transient(code: &str) -> bool {
    code == codes::PANIC || code == codes::OVERLOADED
}

/// Per-type analysis outcome of one file.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CorpusTypeSummary {
    /// Register type (index form, as in `rs_core::pipeline::TypeReport`).
    pub reg_type: u8,
    /// Number of values of this type.
    pub values: usize,
    /// Greedy-k saturation estimate `RS*` (in reduce/pipeline modes: the
    /// estimate immediately before this type's reduction).
    pub saturation: usize,
    /// Reduction outcome (reduce/pipeline modes only).
    pub reduce: Option<CorpusReduceSummary>,
}

/// Reduction outcome of one (file, type) pair.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct CorpusReduceSummary {
    /// Register budget applied.
    pub budget: usize,
    /// Saturation after reduction (best reached when `fits` is false).
    pub rs_after: usize,
    /// Serialization arcs added.
    pub arcs_added: usize,
    /// Critical path before reduction.
    pub cp_before: i64,
    /// Critical path after reduction.
    pub cp_after: i64,
    /// Whether the budget was met.
    pub fits: bool,
}

/// Outcome of one corpus file.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusFileSummary {
    /// File name relative to the corpus directory.
    pub file: String,
    /// Whether the file parsed and analysed.
    pub ok: bool,
    /// Structured error (shared `{code, message}` shape) when `ok` is false.
    pub error: Option<RsError>,
    /// Operation count (incl. ⊥); 0 when the file failed to parse.
    pub ops: usize,
    /// Edge count.
    pub edges: usize,
    /// Critical path length.
    pub critical_path: i64,
    /// List-schedule makespan (pipeline mode with every budget met).
    pub makespan: Option<i64>,
    /// Per-type outcomes, ascending register type.
    pub types: Vec<CorpusTypeSummary>,
    /// Wall-clock milliseconds spent on this file (excluded from the
    /// `jobs`-independence guarantee).
    pub millis: f64,
    /// Transient-failure retries this file needed (excluded from the
    /// `jobs`-independence guarantee: the fault schedule depends on
    /// cross-worker arrival order).
    pub retries: usize,
}

impl CorpusFileSummary {
    /// The `jobs`-independent content of this entry (everything except
    /// timing) — what `--jobs 1` and `--jobs N` runs must agree on.
    #[allow(clippy::type_complexity)]
    pub fn deterministic_view(
        &self,
    ) -> (
        &str,
        bool,
        &Option<RsError>,
        usize,
        usize,
        i64,
        Option<i64>,
        &[CorpusTypeSummary],
    ) {
        (
            &self.file,
            self.ok,
            &self.error,
            self.ops,
            self.edges,
            self.critical_path,
            self.makespan,
            &self.types,
        )
    }
}

/// Summary of a whole corpus run.
#[derive(Clone, Debug, Serialize)]
pub struct CorpusSummary {
    /// Corpus directory as given.
    pub dir: String,
    /// Worker threads used.
    pub jobs: usize,
    /// Mode label (`"analyze"`, `"reduce"`, `"pipeline"`).
    pub mode: String,
    /// Files discovered.
    pub file_count: usize,
    /// Files analysed successfully.
    pub analyzed: usize,
    /// Files skipped with an error entry.
    pub failed: usize,
    /// Total wall-clock milliseconds of the parallel region.
    pub total_millis: f64,
    /// Per-file entries, sorted by file name.
    pub files: Vec<CorpusFileSummary>,
}

/// Runs the corpus under `dir`. Returns an error only for driver-level
/// failures (unreadable directory, no `.ddg` files); malformed corpus files
/// are contained as `ok: false` entries.
pub fn run_corpus(dir: &Path, opts: &CorpusOptions) -> Result<CorpusSummary, RsError> {
    if opts.mode.registers() == Some(0) {
        return Err(RsError::usage("register budget must be at least 1"));
    }
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| {
            RsError::new(
                codes::IO,
                format!("cannot read directory {}: {e}", dir.display()),
            )
        })?
        .filter_map(|entry| {
            let path = entry.ok()?.path();
            (path.is_file() && path.extension().is_some_and(|x| x == "ddg")).then_some(path)
        })
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(RsError::usage(format!(
            "no .ddg files in {}",
            dir.display()
        )));
    }

    let jobs = opts.jobs.clamp(1, paths.len());
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<CorpusFileSummary>> = (0..paths.len()).map(|_| None).collect();
    let results = Mutex::new(&mut slots);

    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..jobs {
            scope.spawn(|| {
                // Per-worker dispatcher: a private warm engine across files,
                // the same execution path as `rsat serve` (cache-less —
                // every corpus file is distinct work).
                let mut dispatcher = Dispatcher::new();
                if let Some(plan) = &opts.faults {
                    dispatcher.set_faults(Arc::clone(plan));
                }
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(path) = paths.get(i) else { break };
                    let summary = run_file(&mut dispatcher, dir, path, opts);
                    results.lock().unwrap()[i] = Some(summary);
                }
            });
        }
    });
    let total_millis = start.elapsed().as_secs_f64() * 1e3;

    let files: Vec<CorpusFileSummary> = slots
        .into_iter()
        .map(|s| s.expect("worker filled every slot"))
        .collect();
    let analyzed = files.iter().filter(|f| f.ok).count();
    Ok(CorpusSummary {
        dir: dir.display().to_string(),
        jobs,
        mode: opts.mode.op().name().to_string(),
        file_count: files.len(),
        analyzed,
        failed: files.len() - analyzed,
        total_millis,
        files,
    })
}

fn run_file(
    dispatcher: &mut Dispatcher,
    dir: &Path,
    path: &Path,
    opts: &CorpusOptions,
) -> CorpusFileSummary {
    let mode = opts.mode;
    let name = path.strip_prefix(dir).unwrap_or(path).display().to_string();
    let start = Instant::now();
    let fail = |error: RsError, start: Instant, retries: usize| CorpusFileSummary {
        file: name.clone(),
        ok: false,
        error: Some(error),
        ops: 0,
        edges: 0,
        critical_path: 0,
        makespan: None,
        types: Vec::new(),
        millis: start.elapsed().as_secs_f64() * 1e3,
        retries,
    };

    let input = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            return fail(
                RsError::new(codes::IO, format!("cannot read: {e}")),
                start,
                0,
            )
        }
    };

    let mut req = RsRequest::new(mode.op(), input);
    req.registers = mode.registers();
    req.cache = false;
    req.timeout_ms = opts.timeout_ms;
    let mut retries = 0;
    let resp = loop {
        let resp = dispatcher.dispatch(&req);
        if resp.ok || retries >= opts.retries {
            break resp;
        }
        match resp.error.as_ref() {
            Some(e) if is_transient(&e.code) => {
                retries += 1;
                // Exponential backoff: 10 ms, 20 ms, 40 ms, ... capped at
                // half a second so a chaos run cannot stall the corpus.
                let backoff = Duration::from_millis(10 << (retries - 1).min(6));
                std::thread::sleep(backoff.min(Duration::from_millis(500)));
            }
            _ => break resp,
        }
    };
    if !resp.ok {
        let error = resp
            .error
            .unwrap_or_else(|| RsError::new(codes::ENGINE, "missing error detail"));
        return fail(error, start, retries);
    }
    let result = resp.result.expect("ok response carries a result");

    let types = result
        .types
        .iter()
        .map(|tr| CorpusTypeSummary {
            reg_type: reg_type_from_name(&tr.reg_type)
                .map(|t| t.0)
                .expect("dispatcher emits known type names"),
            values: tr.values,
            saturation: tr.saturation,
            reduce: tr.reduce.as_ref().map(|r| CorpusReduceSummary {
                budget: r.budget,
                rs_after: r.rs_after,
                arcs_added: r.arcs_added,
                cp_before: r.cp_before,
                cp_after: r.cp_after,
                fits: r.fits,
            }),
        })
        .collect();

    CorpusFileSummary {
        file: name,
        ok: true,
        error: None,
        ops: result.ops,
        edges: result.edges,
        critical_path: result.critical_path,
        makespan: result.makespan,
        types,
        millis: start.elapsed().as_secs_f64() * 1e3,
        retries,
    }
}

/// Renders the human-readable run summary printed by `rsat corpus` and
/// stored as the `.txt` sidecar.
pub fn render_text(summary: &CorpusSummary) -> String {
    use rs_core::model::RegType;
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "corpus {}: {} files, {} analyzed, {} failed, jobs {}, mode {}, {:.1} ms",
        summary.dir,
        summary.file_count,
        summary.analyzed,
        summary.failed,
        summary.jobs,
        summary.mode,
        summary.total_millis
    );
    for f in &summary.files {
        if f.ok {
            let types: Vec<String> = f
                .types
                .iter()
                .map(|t| {
                    let mut s = format!("{:?}: RS* = {}", RegType(t.reg_type), t.saturation);
                    if let Some(r) = &t.reduce {
                        let _ = write!(
                            s,
                            " -> {} (budget {}, +{} arcs{})",
                            r.rs_after,
                            r.budget,
                            r.arcs_added,
                            if r.fits { "" } else { ", INFEASIBLE" }
                        );
                    }
                    s
                })
                .collect();
            let _ = writeln!(
                out,
                "  {}: {} ops, {} edges, cp {} | {}",
                f.file,
                f.ops,
                f.edges,
                f.critical_path,
                types.join("; ")
            );
        } else {
            let _ = writeln!(
                out,
                "  {}: SKIPPED ({})",
                f.file,
                f.error.as_ref().map_or("unknown error", |e| &e.message)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture_dir() -> PathBuf {
        PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../examples/data"))
    }

    fn error_message(f: &CorpusFileSummary) -> &str {
        &f.error.as_ref().expect("failed entry has an error").message
    }

    #[test]
    fn runs_shipped_fixtures() {
        let summary = run_corpus(&fixture_dir(), &CorpusOptions::default()).unwrap();
        assert!(summary.file_count >= 2);
        assert_eq!(summary.failed, 0);
        assert!(summary.files.iter().all(|f| f.ok && !f.types.is_empty()));
        // sorted by name
        let names: Vec<_> = summary.files.iter().map(|f| f.file.clone()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn jobs_do_not_change_the_analysis() {
        let one = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        let four = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 4,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(one.file_count, four.file_count);
        for (a, b) in one.files.iter().zip(&four.files) {
            assert_eq!(a.deterministic_view(), b.deterministic_view());
        }
    }

    #[test]
    fn malformed_file_is_contained() {
        let dir = std::env::temp_dir().join("rsat_corpus_unit");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.ddg"), "op a load float\n").unwrap();
        std::fs::write(
            dir.join("bad.ddg"),
            "op a load float\nflow a ghost 1 float\n",
        )
        .unwrap();
        let summary = run_corpus(&dir, &CorpusOptions::default()).unwrap();
        assert_eq!(summary.file_count, 2);
        assert_eq!(summary.analyzed, 1);
        assert_eq!(summary.failed, 1);
        let bad = summary.files.iter().find(|f| f.file == "bad.ddg").unwrap();
        assert!(!bad.ok);
        assert_eq!(bad.error.as_ref().unwrap().code, codes::PARSE);
        assert!(error_message(bad).contains("line 2"), "{:?}", bad.error);
        let text = render_text(&summary);
        assert!(text.contains("SKIPPED"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cyclic_and_self_loop_files_are_contained() {
        // builder-level model violations must surface as parse errors, not
        // worker panics that abort the whole run
        let dir = std::env::temp_dir().join("rsat_corpus_cyclic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("good.ddg"), "op a load float\n").unwrap();
        std::fs::write(
            dir.join("cycle.ddg"),
            "op a load float\nop b store none\nserial a b 1\nserial b a 1\n",
        )
        .unwrap();
        std::fs::write(dir.join("selfloop.ddg"), "op a load float\nserial a a 1\n").unwrap();
        std::fs::write(
            dir.join("vliw_lat.ddg"),
            "target vliw\nop a load float\nop b store none\nflow a b 0 float\n",
        )
        .unwrap();
        let summary = run_corpus(
            &dir,
            &CorpusOptions {
                jobs: 2,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(summary.file_count, 4);
        assert_eq!(summary.analyzed, 1);
        assert_eq!(summary.failed, 3);
        let by_name = |n: &str| summary.files.iter().find(|f| f.file == n).unwrap();
        assert!(error_message(by_name("cycle.ddg")).contains("cycle"));
        assert!(error_message(by_name("selfloop.ddg")).contains("self-loop"));
        assert!(error_message(by_name("vliw_lat.ddg")).contains("latency"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reduce_mode_skips_duplicate_analysis_but_reports_saturation() {
        let summary = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Reduce { registers: 3 },
                ..Default::default()
            },
        )
        .unwrap();
        let expr = summary.files.iter().find(|f| f.file == "expr.ddg").unwrap();
        let float = expr.types.iter().find(|t| t.reg_type == 1).unwrap();
        assert_eq!(float.saturation, 4);
        let r = float.reduce.as_ref().unwrap();
        assert!(r.fits && r.rs_after <= 3 && r.arcs_added >= 1);
    }

    #[test]
    fn pipeline_mode_reports_makespan() {
        let summary = run_corpus(
            &fixture_dir(),
            &CorpusOptions {
                jobs: 1,
                mode: CorpusMode::Pipeline { registers: 4 },
                ..Default::default()
            },
        )
        .unwrap();
        let daxpy = summary
            .files
            .iter()
            .find(|f| f.file == "daxpy.ddg")
            .unwrap();
        assert!(daxpy.ok);
        assert!(
            daxpy.makespan.is_some(),
            "pipeline mode surfaces the schedule makespan"
        );
    }

    #[test]
    fn transient_faults_are_retried_with_backoff() {
        let dir = std::env::temp_dir().join("rsat_corpus_retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("a.ddg"), "op a load float\n").unwrap();
        std::fs::write(dir.join("b.ddg"), "op b load float\n").unwrap();
        // jobs=1 makes the fault schedule line up with file order:
        // tick 1 (a.ddg) clean, tick 2 (b.ddg) panics, tick 3 (the retry
        // of b.ddg) clean again.
        let faulted = |retries| CorpusOptions {
            jobs: 1,
            retries,
            faults: Some(Arc::new(FaultPlan::from_spec("panic=2").unwrap())),
            ..Default::default()
        };
        let no_retry = run_corpus(&dir, &faulted(0)).unwrap();
        assert_eq!(no_retry.analyzed, 1);
        let b = no_retry.files.iter().find(|f| f.file == "b.ddg").unwrap();
        assert_eq!(b.error.as_ref().unwrap().code, codes::PANIC);

        let retried = run_corpus(&dir, &faulted(2)).unwrap();
        assert_eq!(retried.analyzed, 2, "retry recovers the panicked file");
        let b = retried.files.iter().find(|f| f.file == "b.ddg").unwrap();
        assert!(b.ok);
        assert_eq!(b.retries, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_transient_failures_are_not_retried() {
        let dir = std::env::temp_dir().join("rsat_corpus_no_retry");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.ddg"), "op a load float\nflow a g 1 float\n").unwrap();
        let summary = run_corpus(
            &dir,
            &CorpusOptions {
                retries: 3,
                ..Default::default()
            },
        )
        .unwrap();
        let bad = summary.files.iter().find(|f| f.file == "bad.ddg").unwrap();
        assert_eq!(bad.error.as_ref().unwrap().code, codes::PARSE);
        assert_eq!(bad.retries, 0, "parse errors are deterministic");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_dir_is_a_driver_error() {
        let dir = std::env::temp_dir().join("rsat_corpus_empty");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        assert!(run_corpus(&dir, &CorpusOptions::default()).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn zero_budget_is_a_driver_error() {
        for mode in [
            CorpusMode::Reduce { registers: 0 },
            CorpusMode::Pipeline { registers: 0 },
        ] {
            let e = run_corpus(
                &fixture_dir(),
                &CorpusOptions {
                    jobs: 1,
                    mode,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(e.message.contains("at least 1"), "{e}");
        }
    }
}
