//! The worker pool: a bounded queue feeding per-worker [`Dispatcher`]s.
//!
//! Backpressure is the queue bound — [`PoolHandle::submit`] blocks the
//! producer (the stdio/socket reader) while the queue is full, so a slow
//! consumer throttles intake instead of growing memory without bound.

use crate::cache::MemoCache;
use crate::checkpoint::CheckpointStore;
use crate::dispatch::{process_line_at, Dispatcher, WatchSlot};
use crate::fault::FaultPlan;
use rs_core::request::{codes, RsResponse};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A blocking bounded MPMC queue (mutex + condvars).
pub struct Bounded<T> {
    state: Mutex<BoundedState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct BoundedState<T> {
    items: VecDeque<T>,
    capacity: usize,
    closed: bool,
}

impl<T> Bounded<T> {
    /// A queue holding at most `capacity` items (min 1).
    pub fn new(capacity: usize) -> Self {
        Bounded {
            state: Mutex::new(BoundedState {
                items: VecDeque::new(),
                capacity: capacity.max(1),
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Blocks until there is room, then enqueues. Returns `false` (item
    /// dropped) if the queue was closed.
    pub fn push(&self, item: T) -> bool {
        let mut state = crate::lock_recover(&self.state);
        loop {
            if state.closed {
                return false;
            }
            if state.items.len() < state.capacity {
                state.items.push_back(item);
                self.not_empty.notify_one();
                return true;
            }
            state = self.not_full.wait(state).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Blocks until an item is available; `None` once closed and drained.
    pub fn pop(&self) -> Option<T> {
        let mut state = crate::lock_recover(&self.state);
        loop {
            if let Some(item) = state.items.pop_front() {
                self.not_full.notify_one();
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self
                .not_empty
                .wait(state)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Closes the queue: producers fail fast, consumers drain then stop.
    pub fn close(&self) {
        let mut state = crate::lock_recover(&self.state);
        state.closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Where a worker delivers a finished response.
///
/// `seq` is the submission sequence number; sinks that care about output
/// order (the stdio server) reassemble with it, sinks that do not (load
/// generators) just record.
pub trait ResponseSink: Send + Sync {
    /// Delivers response number `seq`, both typed and pre-serialized.
    fn emit(&self, seq: u64, response: &RsResponse, json: &str);
}

/// One queued request line.
pub struct Job {
    /// Submission sequence number (per sink).
    pub seq: u64,
    /// The raw request line (JSON).
    pub line: String,
    /// Where the response goes.
    pub sink: Arc<dyn ResponseSink>,
    /// When the job entered the queue — a request's `timeout_ms` budget
    /// is anchored here, so queue wait counts against its deadline and
    /// jobs whose whole budget drained while queued are shed.
    pub enqueued: Instant,
}

impl Job {
    /// A job stamped with the current time as its enqueue instant.
    pub fn new(seq: u64, line: String, sink: Arc<dyn ResponseSink>) -> Self {
        Job {
            seq,
            line,
            sink,
            enqueued: Instant::now(),
        }
    }
}

/// Service configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Worker threads (0 = one per available CPU, capped at 8).
    pub workers: usize,
    /// Bounded queue capacity (backpressure threshold).
    pub queue: usize,
    /// Memoization cache capacity, in results.
    pub cache_capacity: usize,
    /// Watchdog grace beyond a request's deadline before its token is
    /// force-cancelled and the worker's engine marked for replacement.
    pub grace_ms: u64,
    /// Fault injection plan (chaos testing); `None` in production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            queue: 64,
            cache_capacity: crate::cache::DEFAULT_CACHE_CAPACITY,
            grace_ms: 1000,
            faults: None,
        }
    }
}

impl ServeConfig {
    /// The worker count after resolving the `0 = auto` default.
    pub fn effective_workers(&self) -> usize {
        if self.workers > 0 {
            return self.workers;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    }
}

/// Request/outcome counters shared by all workers.
#[derive(Default)]
pub struct PoolCounters {
    requests: AtomicU64,
    ok: AtomicU64,
    failed: AtomicU64,
    timeouts: AtomicU64,
    shed: AtomicU64,
    watchdog_cancels: AtomicU64,
    engines_replaced: AtomicU64,
}

/// State shared between the pool owner, connection readers, and watchdog.
pub struct PoolShared {
    queue: Bounded<Job>,
    cache: Arc<MemoCache>,
    /// Interrupted-search checkpoints, shared by every worker so a retry
    /// resumes no matter which worker picks it up. This is also how a
    /// watchdog force-cancel *salvages* work: the cancelled solve still
    /// returns cooperatively, its checkpoint lands here, and the retry
    /// continues from it instead of paying for the lost nodes again.
    ckpts: Arc<CheckpointStore>,
    counters: PoolCounters,
    slots: Vec<WatchSlot>,
    stop_watchdog: AtomicBool,
}

/// A cloneable submission handle (used by per-connection reader threads).
#[derive(Clone)]
pub struct PoolHandle(Arc<PoolShared>);

impl PoolHandle {
    /// Enqueues a job, blocking while the queue is full (backpressure).
    /// Returns `false` if the pool has shut down.
    pub fn submit(&self, job: Job) -> bool {
        self.0.queue.push(job)
    }
}

/// Cumulative service statistics, reported at shutdown.
#[derive(Clone, Copy, Debug, serde::Serialize)]
pub struct ServeStats {
    /// Requests dequeued by workers.
    pub requests: u64,
    /// `ok:true` responses.
    pub ok: u64,
    /// `ok:false` responses (includes timeouts and shed requests).
    pub failed: u64,
    /// Deadline-expired responses (code `timeout`, partial result).
    pub timeouts: u64,
    /// Requests shed before execution (code `overloaded`).
    pub shed: u64,
    /// Watchdog force-cancels of work stuck past deadline + grace.
    pub watchdog_cancels: u64,
    /// Engines replaced after a forced cancel (panic replacements are
    /// counted under `failed`, not here).
    pub engines_replaced: u64,
    /// Memoization cache hits.
    pub cache_hits: u64,
    /// Memoization cache misses.
    pub cache_misses: u64,
    /// Interrupted-search checkpoints deposited for later resume.
    pub checkpoints_stored: u64,
    /// Retried requests that resumed a parked checkpoint instead of
    /// restarting their search.
    pub resumed: u64,
}

/// A pool of worker threads, each owning a warm [`Dispatcher`] over one
/// shared [`MemoCache`].
pub struct ServePool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl ServePool {
    /// Spawns the workers and the watchdog.
    pub fn new(cfg: &ServeConfig) -> Self {
        let n = cfg.effective_workers();
        let shared = Arc::new(PoolShared {
            queue: Bounded::new(cfg.queue),
            cache: Arc::new(MemoCache::with_capacity(cfg.cache_capacity)),
            ckpts: Arc::new(CheckpointStore::default()),
            counters: PoolCounters::default(),
            slots: (0..n).map(|_| WatchSlot::default()).collect(),
            stop_watchdog: AtomicBool::new(false),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = Arc::clone(&shared);
                let faults = cfg.faults.clone();
                std::thread::Builder::new()
                    .name(format!("rsat-worker-{i}"))
                    .spawn(move || worker_loop(&shared, i, faults))
                    // lint:allow(S-01) pool construction is startup, not a request path; failing to spawn means the service never comes up
                    .expect("spawn worker")
            })
            .collect();
        let watchdog = {
            let shared = Arc::clone(&shared);
            let grace = Duration::from_millis(cfg.grace_ms);
            std::thread::Builder::new()
                .name("rsat-watchdog".into())
                .spawn(move || watchdog_loop(&shared, grace))
                // lint:allow(S-01) pool construction is startup, not a request path; failing to spawn means the service never comes up
                .expect("spawn watchdog")
        };
        ServePool {
            shared,
            workers,
            watchdog: Some(watchdog),
        }
    }

    /// A submission handle for reader threads.
    pub fn handle(&self) -> PoolHandle {
        PoolHandle(Arc::clone(&self.shared))
    }

    /// Enqueues a job, blocking while the queue is full (backpressure).
    pub fn submit(&self, job: Job) -> bool {
        self.shared.queue.push(job)
    }

    /// The shared memoization cache.
    pub fn cache(&self) -> Arc<MemoCache> {
        Arc::clone(&self.shared.cache)
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        snapshot(&self.shared)
    }

    /// Closes the queue, drains in-flight work, joins the workers and the
    /// watchdog.
    pub fn shutdown(mut self) -> ServeStats {
        self.shared.queue.close();
        for w in self.workers {
            let _ = w.join();
        }
        self.shared.stop_watchdog.store(true, Ordering::Relaxed);
        if let Some(w) = self.watchdog.take() {
            let _ = w.join();
        }
        snapshot(&self.shared)
    }
}

fn snapshot(shared: &PoolShared) -> ServeStats {
    let (cache_hits, cache_misses) = shared.cache.counters();
    let (checkpoints_stored, resumed) = shared.ckpts.counters();
    ServeStats {
        requests: shared.counters.requests.load(Ordering::Relaxed),
        ok: shared.counters.ok.load(Ordering::Relaxed),
        failed: shared.counters.failed.load(Ordering::Relaxed),
        timeouts: shared.counters.timeouts.load(Ordering::Relaxed),
        shed: shared.counters.shed.load(Ordering::Relaxed),
        watchdog_cancels: shared.counters.watchdog_cancels.load(Ordering::Relaxed),
        engines_replaced: shared.counters.engines_replaced.load(Ordering::Relaxed),
        cache_hits,
        cache_misses,
        checkpoints_stored,
        resumed,
    }
}

fn worker_loop(shared: &PoolShared, index: usize, faults: Option<Arc<FaultPlan>>) {
    let mut dispatcher = Dispatcher::with_cache(Arc::clone(&shared.cache));
    dispatcher.set_checkpoint_store(Arc::clone(&shared.ckpts));
    let slot = shared.slots[index].clone();
    dispatcher.set_watch(slot.clone());
    if let Some(plan) = faults {
        dispatcher.set_faults(plan);
    }
    while let Some(job) = shared.queue.pop() {
        let (response, json) = process_line_at(&mut dispatcher, &job.line, job.enqueued);
        if slot.take_forced() {
            // A watchdog had to force this request's cancel: the engine
            // may have been interrupted somewhere its own polls never
            // reach, so swap it out before the next request.
            dispatcher.replace_engine();
            shared
                .counters
                .engines_replaced
                .fetch_add(1, Ordering::Relaxed);
        }
        shared.counters.requests.fetch_add(1, Ordering::Relaxed);
        if response.ok {
            shared.counters.ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.counters.failed.fetch_add(1, Ordering::Relaxed);
            match response.error.as_ref().map(|e| e.code.as_str()) {
                Some(codes::TIMEOUT) => {
                    shared.counters.timeouts.fetch_add(1, Ordering::Relaxed);
                }
                Some(codes::OVERLOADED) => {
                    shared.counters.shed.fetch_add(1, Ordering::Relaxed);
                }
                _ => {}
            }
        }
        job.sink.emit(job.seq, &response, &json);
    }
}

/// Sweeps every worker's [`WatchSlot`] until shutdown, force-cancelling
/// in-flight work stuck past its deadline plus `grace`.
fn watchdog_loop(shared: &PoolShared, grace: Duration) {
    // Sweep often enough that a stuck request overshoots its grace by at
    // most ~1/4 of it (bounded to keep an idle daemon cheap).
    let sweep = (grace / 4).clamp(Duration::from_millis(5), Duration::from_millis(250));
    while !shared.stop_watchdog.load(Ordering::Relaxed) {
        let now = Instant::now();
        for slot in &shared.slots {
            if slot.check(now, grace) {
                shared
                    .counters
                    .watchdog_cancels
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
        std::thread::sleep(sweep);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_queue_blocks_then_drains() {
        let q = Arc::new(Bounded::new(2));
        assert!(q.push(1));
        assert!(q.push(2));
        let q2 = Arc::clone(&q);
        let pusher = std::thread::spawn(move || q2.push(3));
        // the pusher is blocked until a pop frees a slot
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!pusher.is_finished(), "push must block while full");
        assert_eq!(q.pop(), Some(1));
        assert!(pusher.join().unwrap());
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), Some(3));
        q.close();
        assert_eq!(q.pop(), None);
        assert!(!q.push(4), "closed queue rejects pushes");
    }
}
