//! The `rsat serve` transports: newline-delimited JSON over stdio or a
//! Unix socket.
//!
//! One reader thread per input stream submits lines to the shared
//! [`ServePool`]; an [`InOrderSink`] per stream reassembles worker output
//! back into submission order, so responses always appear in the order the
//! requests were read even though workers finish out of order.

use crate::pool::{Job, PoolHandle, ResponseSink, ServeConfig, ServePool, ServeStats};
use rs_core::request::RsResponse;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

struct InOrderState<W> {
    next: u64,
    pending: BTreeMap<u64, String>,
    writer: W,
}

/// A sink that writes one JSON line per response, in submission order.
pub struct InOrderSink<W> {
    state: Mutex<InOrderState<W>>,
}

impl<W: Write + Send> InOrderSink<W> {
    /// Wraps a writer; responses are buffered until their turn.
    pub fn new(writer: W) -> Self {
        InOrderSink {
            state: Mutex::new(InOrderState {
                next: 0,
                pending: BTreeMap::new(),
                writer,
            }),
        }
    }

    /// Recovers the writer (used by tests after all workers are done).
    pub fn into_writer(self) -> W {
        self.state
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .writer
    }
}

impl<W: Write + Send> ResponseSink for InOrderSink<W> {
    fn emit(&self, seq: u64, _response: &RsResponse, json: &str) {
        let mut state = crate::lock_recover(&self.state);
        state.pending.insert(seq, json.to_string());
        loop {
            let next = state.next;
            let Some(line) = state.pending.remove(&next) else {
                break;
            };
            state.next += 1;
            // A vanished client must not kill the daemon: drop the output.
            let w = &mut state.writer;
            let _ = writeln!(w, "{line}").and_then(|()| w.flush());
        }
    }
}

/// Serves newline-delimited JSON requests from `reader`, writing responses
/// to `writer` in request order. Returns at EOF with the final statistics
/// and the writer (for tests that inspect the output buffer).
///
/// Backpressure: the reader blocks on [`ServePool::submit`] while the
/// bounded queue is full. Empty lines are skipped.
pub fn serve_io<R, W>(reader: R, writer: W, cfg: &ServeConfig) -> (ServeStats, W)
where
    R: BufRead,
    W: Write + Send + 'static,
{
    let pool = ServePool::new(cfg);
    let sink = Arc::new(InOrderSink::new(writer));
    let mut seq = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let job = Job::new(seq, line, Arc::clone(&sink) as Arc<dyn ResponseSink>);
        if !pool.submit(job) {
            break;
        }
        seq += 1;
    }
    let stats = pool.shutdown();
    let sink = Arc::try_unwrap(sink)
        .ok()
        // lint:allow(S-01) runs after shutdown() joined every worker, so the Arc is provably unshared; no request is in flight
        .expect("all workers joined, sink unshared");
    (stats, sink.into_writer())
}

/// A Unix-socket front end over a shared [`ServePool`].
///
/// Each accepted connection gets a reader thread and its own in-order
/// response stream; all connections share the pool (and therefore the
/// memoization cache).
pub struct UnixServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<UnixStream>>>,
    accept: Option<JoinHandle<()>>,
    pool: Option<ServePool>,
}

impl UnixServer {
    /// Binds `path` (replacing any stale socket file) and starts accepting.
    pub fn bind(path: &Path, cfg: &ServeConfig) -> io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let pool = ServePool::new(cfg);
        let handle = pool.handle();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<UnixStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::Builder::new()
                .name("rsat-accept".to_string())
                .spawn(move || accept_loop(&listener, &handle, &stop, &conns))
                // lint:allow(S-01) bind() is startup, not a request path; failing to spawn the acceptor means the server never starts
                .expect("spawn accept thread")
        };
        Ok(UnixServer {
            path: path.to_path_buf(),
            stop,
            conns,
            accept: Some(accept),
            pool: Some(pool),
        })
    }

    /// Current statistics snapshot.
    pub fn stats(&self) -> ServeStats {
        // lint:allow(S-01) the Option is only vacated by stop(self), which consumes the server; unreachable while callable
        self.pool.as_ref().expect("pool alive").stats()
    }

    /// Stops accepting, unblocks connection readers, drains in-flight
    /// work, and removes the socket file.
    pub fn stop(mut self) -> ServeStats {
        self.stop.store(true, Ordering::SeqCst);
        for conn in crate::lock_recover(&self.conns).drain(..) {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        // lint:allow(S-01) the Option is only vacated here, and stop(self) consumes the server; unreachable twice
        let stats = self.pool.take().expect("pool alive until stop").shutdown();
        let _ = std::fs::remove_file(&self.path);
        stats
    }
}

fn accept_loop(
    listener: &UnixListener,
    handle: &PoolHandle,
    stop: &AtomicBool,
    conns: &Mutex<Vec<UnixStream>>,
) {
    let mut readers: Vec<JoinHandle<()>> = Vec::new();
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                if let Ok(clone) = stream.try_clone() {
                    crate::lock_recover(conns).push(clone);
                }
                let handle = handle.clone();
                // A spawn failure (fd/thread exhaustion) drops this one
                // connection; the accept loop and existing clients live on.
                let spawned = std::thread::Builder::new()
                    .name("rsat-conn".to_string())
                    .spawn(move || serve_connection(stream, &handle));
                match spawned {
                    Ok(reader) => readers.push(reader),
                    Err(_) => continue,
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(15));
            }
            Err(_) => break,
        }
    }
    for reader in readers {
        let _ = reader.join();
    }
}

/// Reads request lines from one connection until EOF; responses flow back
/// through a per-connection [`InOrderSink`] over a clone of the stream.
fn serve_connection(stream: UnixStream, handle: &PoolHandle) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let sink = Arc::new(InOrderSink::new(write_half));
    let reader = BufReader::new(stream);
    let mut seq = 0u64;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let job = Job::new(seq, line, Arc::clone(&sink) as Arc<dyn ResponseSink>);
        if !handle.submit(job) {
            break;
        }
        seq += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::request::{RsOp, RsRequest};

    fn request_line(ddg: &str) -> String {
        serde_json::to_string(&RsRequest::new(RsOp::Analyze, ddg)).unwrap()
    }

    #[test]
    fn responses_come_back_in_request_order() {
        // A large DAG first, a tiny one second: with several workers the
        // tiny one finishes first, but output order must match input order.
        let mut big = String::new();
        for i in 0..40 {
            big.push_str(&format!(
                "op v{i} load float\nop s{i} store none\nflow v{i} s{i} 4 float\n"
            ));
        }
        let mut input = String::new();
        let mut line_big: RsRequest = RsRequest::new(RsOp::Analyze, big);
        line_big.id = Some("big".into());
        let mut line_small = RsRequest::new(RsOp::Analyze, "op a load float\n");
        line_small.id = Some("small".into());
        input.push_str(&serde_json::to_string(&line_big).unwrap());
        input.push('\n');
        input.push_str(&serde_json::to_string(&line_small).unwrap());
        input.push('\n');

        let cfg = ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        };
        let (stats, out) = serve_io(input.as_bytes(), Vec::new(), &cfg);
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.ok, 2);
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"big\""), "{}", lines[0]);
        assert!(lines[1].contains("\"small\""), "{}", lines[1]);
    }

    #[test]
    fn malformed_line_mid_stream_does_not_kill_the_daemon() {
        let good = request_line("op a load float\nop s store none\nflow a s 4 float\n");
        let bad_json = "this is not json";
        let bad_ddg = serde_json::to_string(&RsRequest::new(
            RsOp::Analyze,
            "op a load float\nflow a ghost 1 float\n",
        ))
        .unwrap();
        let input = format!("{good}\n{bad_json}\n{bad_ddg}\n{good}\n");
        let (stats, out) = serve_io(input.as_bytes(), Vec::new(), &ServeConfig::default());
        assert_eq!(stats.requests, 4);
        assert_eq!(stats.ok, 2);
        assert_eq!(stats.failed, 2);
        let text = String::from_utf8(out).unwrap();
        let oks: Vec<bool> = text
            .lines()
            .map(|l| {
                serde_json::from_str(l)
                    .unwrap()
                    .get("ok")
                    .and_then(|v| v.as_bool())
                    .unwrap()
            })
            .collect();
        assert_eq!(oks, vec![true, false, false, true]);
    }

    #[test]
    fn unix_socket_round_trip() {
        let path =
            std::env::temp_dir().join(format!("rsat-serve-test-{}.sock", std::process::id()));
        let server = UnixServer::bind(&path, &ServeConfig::default()).expect("bind");
        let mut client = UnixStream::connect(&path).expect("connect");
        let line = request_line("op a load float\nop b load float\n");
        client.write_all(line.as_bytes()).unwrap();
        client.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(client.try_clone().unwrap());
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        assert!(response.contains("\"ok\": true") || response.contains("\"ok\":true"));
        drop(reader);
        drop(client);
        let stats = server.stop();
        assert_eq!(stats.requests, 1);
        assert!(!path.exists(), "socket file removed on stop");
    }
}
