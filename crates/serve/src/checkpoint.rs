//! Bounded retention of interrupted-search checkpoints.
//!
//! When a solver inside a request is interrupted (deadline expiry, a
//! watchdog force-cancel, or a node budget), it emits a
//! [`rs_lp::SearchCheckpoint`] alongside its partial result. The
//! dispatcher parks those snapshots here, keyed by the request's cache
//! key, so a **retry of the same request resumes the search node-for-node
//! instead of restarting it** — the mirror image of the [`crate::cache`]
//! memoization: the cache replays finished work, this store continues
//! unfinished work.
//!
//! A request can hold several checkpoints (one per register type whose
//! intLP was interrupted), so the stored unit is a list of named slots.
//! Entries are taken (removed) on resume — a checkpoint is a one-shot
//! continuation; if the resumed solve is interrupted again it deposits a
//! fresh, further-along snapshot under the same key. Eviction is FIFO,
//! like the memo cache. The store is shared by every worker of a pool,
//! which is what lets the watchdog's force-cancel *salvage* work: the
//! cancelled worker still finishes its solve call cooperatively, its
//! checkpoint lands here, and whichever worker picks up the retry
//! continues from it.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of retained checkpoint entries (requests, not slots).
pub const DEFAULT_CHECKPOINT_CAPACITY: usize = 64;

/// One interrupted solver within a request: `(slot, checkpoint_json)`.
/// The slot names which solver the snapshot belongs to (e.g. the register
/// type of an interrupted intLP), so a retry resumes each solver from its
/// own frontier.
pub type CheckpointSlot = (String, String);

struct Inner {
    map: HashMap<String, Vec<CheckpointSlot>>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
}

/// A bounded, thread-safe checkpoint store with stored/resumed counters.
pub struct CheckpointStore {
    inner: Mutex<Inner>,
    stored: AtomicU64,
    resumed: AtomicU64,
}

impl Default for CheckpointStore {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CHECKPOINT_CAPACITY)
    }
}

impl CheckpointStore {
    /// A store that evicts FIFO past `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        CheckpointStore {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            stored: AtomicU64::new(0),
            resumed: AtomicU64::new(0),
        }
    }

    /// Deposits the interrupted slots of one request, replacing any
    /// previous entry under the same key (the new snapshot is strictly
    /// further along). Empty slot lists are ignored.
    pub fn put(&self, key: String, slots: Vec<CheckpointSlot>) {
        if slots.is_empty() {
            return;
        }
        let mut inner = crate::lock_recover(&self.inner);
        if inner.map.insert(key.clone(), slots).is_none() {
            while inner.map.len() > inner.capacity {
                match inner.order.pop_front() {
                    Some(old) => {
                        inner.map.remove(&old);
                    }
                    None => break,
                }
            }
            inner.order.push_back(key);
        }
        self.stored.fetch_add(1, Ordering::Relaxed);
    }

    /// Takes (removes) the retained slots for a key, counting a resumed
    /// request when present. One-shot: a second retry after this take
    /// starts cold unless the resumed solve re-deposits.
    pub fn take(&self, key: &str) -> Option<Vec<CheckpointSlot>> {
        let mut inner = crate::lock_recover(&self.inner);
        let slots = inner.map.remove(key)?;
        inner.order.retain(|k| k != key);
        self.resumed.fetch_add(1, Ordering::Relaxed);
        Some(slots)
    }

    /// Cumulative `(stored, resumed)` counters: checkpoint deposits and
    /// retried requests that found one to continue from.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.stored.load(Ordering::Relaxed),
            self.resumed.load(Ordering::Relaxed),
        )
    }

    /// Whether a checkpoint is parked for this key (without consuming it).
    /// Batch clients use this to tell a *resumed* retry (the next attempt
    /// continues a saved frontier) from a cold one.
    pub fn contains(&self, key: &str) -> bool {
        crate::lock_recover(&self.inner).map.contains_key(key)
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        crate::lock_recover(&self.inner).map.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slots(tag: &str) -> Vec<CheckpointSlot> {
        vec![("float".to_string(), format!("{{\"ck\":\"{tag}\"}}"))]
    }

    #[test]
    fn take_is_one_shot_and_counts() {
        let store = CheckpointStore::with_capacity(8);
        assert!(store.take("a").is_none());
        store.put("a".into(), slots("1"));
        assert_eq!(store.len(), 1);
        let got = store.take("a").expect("stored entry");
        assert_eq!(got[0].0, "float");
        assert!(store.take("a").is_none(), "take consumes the entry");
        assert_eq!(store.counters(), (1, 1));
    }

    #[test]
    fn replacement_keeps_one_entry_per_key() {
        let store = CheckpointStore::with_capacity(8);
        store.put("a".into(), slots("old"));
        store.put("a".into(), slots("new"));
        assert_eq!(store.len(), 1);
        let got = store.take("a").unwrap();
        assert!(got[0].1.contains("new"), "latest snapshot wins");
    }

    #[test]
    fn eviction_is_fifo_and_empty_slots_are_ignored() {
        let store = CheckpointStore::with_capacity(2);
        store.put("a".into(), slots("1"));
        store.put("b".into(), slots("2"));
        store.put("c".into(), slots("3"));
        assert_eq!(store.len(), 2);
        assert!(store.take("a").is_none(), "oldest entry evicted");
        assert!(store.take("b").is_some());
        assert!(store.take("c").is_some());
        store.put("d".into(), Vec::new());
        assert!(store.is_empty(), "empty slot lists are not stored");
    }
}
