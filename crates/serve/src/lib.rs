//! # rs-serve — the warm-engine analysis service
//!
//! Everything behind `rsat serve`, and the single execution path the
//! one-shot CLI subcommands and the corpus runner share:
//!
//! - [`dispatch::Dispatcher`] — one warm [`rs_core::RsEngine`] per worker,
//!   per-request fault isolation (panics and malformed payloads answer
//!   `ok:false`, never kill the process), optional memoization;
//! - [`cache::MemoCache`] — content-keyed result cache (DAG bytes + op +
//!   params) with hit/miss counters surfaced in every response;
//! - [`checkpoint::CheckpointStore`] — bounded retention of interrupted
//!   branch-and-bound checkpoints keyed by the same cache key, so a
//!   retried request *resumes* its search node-for-node instead of
//!   restarting (the continuation mirror of the memo cache);
//! - [`pool::ServePool`] — a bounded work queue with backpressure feeding
//!   per-worker dispatchers, plus queue-wait load shedding and a watchdog
//!   that force-cancels work stuck past its deadline;
//! - [`fault::FaultPlan`] — deterministic fault injection (forced panics,
//!   delays, spurious errors) for chaos testing the above;
//! - [`server`] — newline-delimited JSON transports (stdio, Unix socket)
//!   with in-order response reassembly.
//!
//! The request/response schema itself ([`rs_core::request`]) lives in
//! `rs-core`; this crate depends on `rs-sched` so the `pipeline` operation
//! can schedule and allocate, which is why execution cannot live in
//! `rs-core` (the scheduler depends on it).

#![forbid(unsafe_code)]

pub mod cache;
pub mod checkpoint;
pub mod dispatch;
pub mod fault;
pub mod pool;
pub mod server;

pub use cache::MemoCache;
pub use checkpoint::{CheckpointSlot, CheckpointStore};
pub use dispatch::{process_line, process_line_at, Dispatcher, WatchSlot};
pub use fault::{FaultAction, FaultPlan};
pub use pool::{Job, PoolHandle, ResponseSink, ServeConfig, ServePool, ServeStats};
pub use server::{serve_io, InOrderSink, UnixServer};

/// Locks a mutex, recovering from poisoning instead of panicking.
///
/// A worker that panics while holding one of the service's locks has
/// already been isolated and answered `ok:false` by the dispatcher's
/// panic boundary; propagating the poison would turn that one contained
/// failure into a process-wide outage on the next lock. Every structure
/// guarded this way (memo cache, checkpoint store, connection list,
/// in-order sink, bounded queue) is consistent after any partial update,
/// so continuing with the recovered state is sound.
pub(crate) fn lock_recover<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}
