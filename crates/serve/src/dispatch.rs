//! The single execution path behind every `rsat` front end.
//!
//! A [`Dispatcher`] owns one warm [`RsEngine`] and (optionally) a shared
//! [`MemoCache`]; [`Dispatcher::dispatch`] turns an [`RsRequest`] into an
//! [`RsResponse`], never panicking outward: engine panics are caught, the
//! engine is replaced, and the request answers `ok:false` with code
//! `panic`.

use crate::cache::MemoCache;
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::{Ddg, RegType};
use rs_core::parse::{parse_ddg, print_ddg};
use rs_core::reduce::ReduceOutcome;
use rs_core::request::{
    codes, reg_type_from_name, reg_type_name, AllocResult, CacheInfo, IlpStats, ReduceResult,
    RsError, RsOp, RsRequest, RsResponse, RsResult, SolveResult, TypeResult,
};
use rs_core::spill::SpillPass;
use rs_core::RsEngine;
use rs_sched::{ListScheduler, RegisterAllocator, Resources};
use serde::Deserialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// One warm worker: engine + optional shared cache.
pub struct Dispatcher {
    params: GreedyK,
    engine: RsEngine,
    cache: Option<Arc<MemoCache>>,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher {
    /// A cache-less dispatcher with default engine parameters (the one-shot
    /// CLI and corpus workers use this: every request computes cold).
    pub fn new() -> Self {
        Dispatcher {
            params: GreedyK::new(),
            engine: RsEngine::new(),
            cache: None,
        }
    }

    /// A dispatcher answering from (and filling) a shared memoization
    /// cache.
    pub fn with_cache(cache: Arc<MemoCache>) -> Self {
        Dispatcher {
            cache: Some(cache),
            ..Dispatcher::new()
        }
    }

    /// Cumulative cache counters (zeros without a cache).
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.as_ref().map_or((0, 0), |c| c.counters())
    }

    fn cache_info(&self, hit: bool) -> CacheInfo {
        let (hits, misses) = self.cache_counters();
        CacheInfo { hit, hits, misses }
    }

    /// Executes one request: validate, consult the cache, run the engine
    /// under panic containment, fill the cache.
    pub fn dispatch(&mut self, req: &RsRequest) -> RsResponse {
        let start = Instant::now();
        let id = req.id.clone();
        if let Err(e) = req.validate() {
            return RsResponse::failure(id, e, self.cache_info(false), millis_since(start));
        }
        let key = match (&self.cache, req.cache) {
            (Some(_), true) => Some(req.cache_key()),
            _ => None,
        };
        if let (Some(cache), Some(key)) = (&self.cache, &key) {
            if let Some(result) = cache.lookup(key) {
                return RsResponse::success(id, result, self.cache_info(true), millis_since(start));
            }
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| execute(&mut self.engine, req)));
        match outcome {
            Ok(Ok(result)) => {
                if let (Some(cache), Some(key)) = (&self.cache, key) {
                    cache.insert(key, &result);
                }
                RsResponse::success(id, result, self.cache_info(false), millis_since(start))
            }
            Ok(Err(e)) => RsResponse::failure(id, e, self.cache_info(false), millis_since(start)),
            Err(payload) => {
                // The engine scratch may be mid-mutation: replace it, keep
                // serving.
                self.engine = RsEngine::with_params(self.params.clone());
                let e = RsError::new(
                    codes::PANIC,
                    format!("engine panicked: {}", panic_message(&payload)),
                );
                RsResponse::failure(id, e, self.cache_info(false), millis_since(start))
            }
        }
    }
}

fn millis_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Decodes one newline-delimited JSON request line and dispatches it.
///
/// Returns the response and its serialized JSON line. A line that is not
/// valid JSON, or not a valid request object, yields an `ok:false` response
/// with code `request` — the caller (daemon, corpus) keeps going.
pub fn process_line(dispatcher: &mut Dispatcher, line: &str) -> (RsResponse, String) {
    let response = match serde_json::from_str(line) {
        Err(e) => RsResponse::failure(
            None,
            RsError::new(codes::REQUEST, format!("malformed request JSON: {e}")),
            dispatcher.cache_info(false),
            0.0,
        ),
        Ok(value) => match rs_core::request::RsRequest::from_value(&value) {
            Err(e) => {
                // Best effort: echo the id even when the request is invalid.
                let id = value.get("id").and_then(|v| v.as_str()).map(str::to_string);
                RsResponse::failure(
                    id,
                    RsError::new(codes::REQUEST, format!("invalid request: {e}")),
                    dispatcher.cache_info(false),
                    0.0,
                )
            }
            Ok(req) => dispatcher.dispatch(&req),
        },
    };
    let json = serde_json::to_string(&response).expect("responses always serialize");
    (response, json)
}

/// Runs the validated request against the engine.
fn execute(engine: &mut RsEngine, req: &RsRequest) -> Result<RsResult, RsError> {
    let mut ddg = parse_ddg(&req.ddg).map_err(|e| RsError::new(codes::PARSE, e.to_string()))?;
    let types: Vec<RegType> = match req.reg_type.as_deref() {
        Some(name) => vec![reg_type_from_name(name).expect("validated")],
        None => ddg.reg_types(),
    };
    let mut result = RsResult {
        ops: ddg.num_ops(),
        edges: ddg.graph().edge_count(),
        critical_path: ddg.critical_path(),
        types: Vec::new(),
        makespan: None,
        ddg_out: None,
    };
    match req.op {
        RsOp::Analyze => {
            for &t in &types {
                result.types.push(analyze_type(engine, &ddg, t, req));
            }
        }
        RsOp::Reduce => {
            let budget = req.registers.expect("validated");
            for &t in &types {
                result
                    .types
                    .push(reduce_type(engine, &mut ddg, t, budget, req.spill)?);
            }
            if req.emit_ddg {
                result.ddg_out = Some(print_ddg(&ddg));
            }
        }
        RsOp::Pipeline => {
            let budget = req.registers.expect("validated");
            let resources = match req.issue {
                None | Some(4) => Resources::four_issue(),
                Some(1) => Resources::single_issue(),
                Some(8) => Resources::wide_issue(),
                Some(_) => unreachable!("validated"),
            };
            for &t in &types {
                result
                    .types
                    .push(reduce_type(engine, &mut ddg, t, budget, false)?);
            }
            let all_fit = result
                .types
                .iter()
                .all(|tr| tr.reduce.as_ref().is_some_and(|r| r.fits));
            if all_fit {
                let sched = ListScheduler::new(resources).schedule(&ddg);
                result.makespan = Some(sched.makespan);
                for (tr, &t) in result.types.iter_mut().zip(&types) {
                    let alloc = RegisterAllocator::new().allocate(&ddg, t, &sched.sigma, budget);
                    tr.alloc = Some(AllocResult {
                        registers_used: alloc.registers_used,
                        spills: alloc.spilled.len(),
                    });
                }
            }
            if req.emit_ddg {
                result.ddg_out = Some(print_ddg(&ddg));
            }
        }
    }
    Ok(result)
}

fn analyze_type(engine: &mut RsEngine, ddg: &Ddg, t: RegType, req: &RsRequest) -> TypeResult {
    let threads = req.threads.max(1);
    let a = engine.analyze(ddg, t);
    let saturating = a
        .saturating_values
        .iter()
        .map(|&v| ddg.graph().node(v).name.clone())
        .collect();
    let mut tr = TypeResult {
        reg_type: reg_type_name(t),
        values: ddg.values(t).len(),
        saturation: a.saturation,
        saturating,
        optimal: a.provably_optimal,
        exact: None,
        ilp: None,
        ilp_stats: None,
        ilp_error: None,
        reduce: None,
        alloc: None,
    };
    if req.exact {
        let e = ExactRs::with_threads(threads).saturation(ddg, t);
        tr.exact = Some(SolveResult {
            saturation: e.saturation,
            proven_optimal: e.proven_optimal,
        });
    }
    if req.ilp {
        match RsIlp::with_threads(threads).saturation(ddg, t) {
            Ok(r) => {
                tr.ilp = Some(SolveResult {
                    saturation: r.saturation,
                    proven_optimal: r.proven_optimal,
                });
                if req.stats {
                    let st = &r.milp_stats;
                    tr.ilp_stats = Some(IlpStats {
                        nodes: st.nodes,
                        lp_solves: st.lp_solves,
                        warm_solves: st.warm_solves,
                        warm_hits: st.warm_hits,
                        dive_reinstalls: st.dive_reinstalls,
                        pseudocost_branches: st.pseudocost_branches,
                        strong_branch_probes: st.strong_branch_probes,
                        pivots: st.pivots,
                        bound_flips: st.bound_flips,
                        rows: st.rows,
                        cols: st.cols,
                    });
                }
            }
            Err(e) => tr.ilp_error = Some(RsError::new(codes::ENGINE, e.to_string())),
        }
    }
    tr
}

/// Reduces one type in place, optionally spilling when serialization alone
/// cannot meet the budget. An unmeetable budget is *not* an `Err` — it
/// reports `fits: false` so batch clients see partial results; front ends
/// decide whether that is fatal.
fn reduce_type(
    engine: &mut RsEngine,
    ddg: &mut Ddg,
    t: RegType,
    budget: usize,
    spill: bool,
) -> Result<TypeResult, RsError> {
    let values = ddg.values(t).len();
    let cp_before = ddg.critical_path();
    let out = engine.reduce(ddg, t, budget);
    let (saturation, reduce) = match out {
        ReduceOutcome::AlreadyFits { rs } => (
            rs,
            ReduceResult {
                budget,
                rs_after: rs,
                arcs_added: 0,
                cp_before,
                cp_after: cp_before,
                fits: true,
                spilled: Vec::new(),
            },
        ),
        ReduceOutcome::Reduced {
            rs_before,
            rs_after,
            cp_before,
            cp_after,
            added_arcs,
            ..
        } => (
            rs_before,
            ReduceResult {
                budget,
                rs_after,
                arcs_added: added_arcs.len(),
                cp_before,
                cp_after,
                fits: true,
                spilled: Vec::new(),
            },
        ),
        ReduceOutcome::Failed {
            rs_before,
            best_rs,
            cp_after,
            added_arcs,
        } => {
            let spilled = if spill {
                SpillPass::new().spill_to_fit(ddg, t, budget)
            } else {
                None
            };
            match spilled {
                Some(res) => {
                    *ddg = res.ddg;
                    (
                        rs_before,
                        ReduceResult {
                            budget,
                            rs_after: res.rs_after,
                            arcs_added: res.reduction_arcs,
                            cp_before,
                            cp_after: ddg.critical_path(),
                            fits: true,
                            spilled: res.spilled_values,
                        },
                    )
                }
                None => (
                    rs_before,
                    ReduceResult {
                        budget,
                        rs_after: best_rs,
                        arcs_added: added_arcs.len(),
                        cp_before,
                        cp_after,
                        fits: false,
                        spilled: Vec::new(),
                    },
                ),
            }
        }
    };
    Ok(TypeResult {
        reg_type: reg_type_name(t),
        values,
        saturation,
        saturating: Vec::new(),
        optimal: false,
        exact: None,
        ilp: None,
        ilp_stats: None,
        ilp_error: None,
        reduce: Some(reduce),
        alloc: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAINS: &str = "op a load float\nop sa store none\nflow a sa 4 float\n\
                          op b load float\nop sb store none\nflow b sb 4 float\n\
                          op c load float\nop sc store none\nflow c sc 4 float\n\
                          op d load float\nop sd store none\nflow d sd 4 float\n";

    #[test]
    fn analyze_reports_saturation() {
        let mut d = Dispatcher::new();
        let resp = d.dispatch(&RsRequest::new(RsOp::Analyze, CHAINS));
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        assert_eq!(float.saturation, 4);
        assert_eq!(float.saturating.len(), 4);
    }

    #[test]
    fn reduce_meets_budget_and_emits_ddg() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Reduce, CHAINS);
        req.registers = Some(2);
        req.emit_ddg = true;
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let red = float.reduce.as_ref().unwrap();
        assert!(red.fits);
        assert!(red.rs_after <= 2);
        assert!(red.arcs_added > 0);
        let out = result.ddg_out.as_deref().expect("emit_ddg");
        assert!(parse_ddg(out).is_ok(), "emitted DDG re-parses");
    }

    #[test]
    fn infeasible_reduce_reports_fits_false_not_error() {
        let two_into_one = "op l1 load float\nop l2 load float\nop add falu float\n\
                            op st store none\nflow l1 add 4 float\nflow l2 add 4 float\n\
                            flow add st 3 float\n";
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Reduce, two_into_one);
        req.registers = Some(1);
        let resp = d.dispatch(&req);
        assert!(resp.ok);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        assert!(!float.reduce.as_ref().unwrap().fits);
    }

    #[test]
    fn parse_failures_carry_the_parse_code() {
        let mut d = Dispatcher::new();
        let resp = d.dispatch(&RsRequest::new(
            RsOp::Analyze,
            "op a load float\nflow a ghost 1 float\n",
        ));
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.code, codes::PARSE);
        assert!(err.message.contains("line 2"), "{}", err.message);
    }

    #[test]
    fn pipeline_schedules_and_allocates() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Pipeline, CHAINS);
        req.registers = Some(4);
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        assert!(result.makespan.is_some());
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let alloc = float.alloc.unwrap();
        assert!(alloc.registers_used <= 4);
        assert_eq!(alloc.spills, 0);
    }

    #[test]
    fn cache_hit_is_bit_identical_to_cold_result() {
        let cache = Arc::new(MemoCache::with_capacity(16));
        let mut d = Dispatcher::with_cache(cache);
        let req = RsRequest::new(RsOp::Analyze, CHAINS);
        let cold = d.dispatch(&req);
        let warm = d.dispatch(&req);
        assert!(!cold.cache.hit);
        assert!(warm.cache.hit);
        assert_eq!(warm.cache.hits, 1);
        assert_eq!(
            serde_json::to_string(&warm.result).unwrap(),
            serde_json::to_string(&cold.result).unwrap(),
            "hit result must be bit-identical to the cold result"
        );
    }

    #[test]
    fn malformed_line_is_contained_and_next_request_answers() {
        let mut d = Dispatcher::new();
        let (bad, _) = process_line(&mut d, "{\"v\":1,\"op\":\"analyze\"");
        assert!(!bad.ok);
        assert_eq!(bad.error.unwrap().code, codes::REQUEST);
        let good = serde_json::to_string(&RsRequest::new(RsOp::Analyze, CHAINS)).unwrap();
        let (ok, json) = process_line(&mut d, &good);
        assert!(ok.ok);
        assert!(
            json.contains("\"ok\": true") || json.contains("\"ok\":true"),
            "{json}"
        );
    }
}
