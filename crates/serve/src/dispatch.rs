//! The single execution path behind every `rsat` front end.
//!
//! A [`Dispatcher`] owns one warm [`RsEngine`] and (optionally) a shared
//! [`MemoCache`]; [`Dispatcher::dispatch`] turns an [`RsRequest`] into an
//! [`RsResponse`], never panicking outward: engine panics are caught, the
//! engine is replaced, and the request answers `ok:false` with code
//! `panic`.

use crate::cache::MemoCache;
use crate::checkpoint::{CheckpointSlot, CheckpointStore};
use crate::fault::{FaultAction, FaultPlan};
use rs_core::exact::ExactRs;
use rs_core::heuristic::GreedyK;
use rs_core::ilp::RsIlp;
use rs_core::model::{Ddg, RegType};
use rs_core::parse::{parse_ddg, print_ddg};
use rs_core::reduce::ReduceOutcome;
use rs_core::request::{
    codes, reg_type_from_name, reg_type_name, AllocResult, CacheInfo, IlpStats, ReduceResult,
    RsError, RsOp, RsRequest, RsResponse, RsResult, SolveResult, TypeResult,
};
use rs_core::spill::SpillPass;
use rs_core::RsEngine;
use rs_core::{Cancel, MilpError, SearchCheckpoint};
use rs_sched::{ListScheduler, RegisterAllocator, Resources};
use serde::Deserialize;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// One worker's in-flight registration, shared with the pool watchdog.
///
/// While a deadline-carrying request executes, the dispatcher publishes
/// its cancel token and hard deadline here. The watchdog (one thread per
/// [`crate::pool::ServePool`]) sweeps all slots and force-cancels any
/// entry stuck past `deadline + grace` — covering code paths whose own
/// cooperative polls are too sparse (or an injected fault's sleep). A
/// forced cancel latches; the worker observes it after the request ends
/// and replaces its engine as a hygiene measure.
#[derive(Clone, Default)]
pub struct WatchSlot {
    inner: Arc<Mutex<WatchState>>,
}

#[derive(Default)]
struct WatchState {
    inflight: Option<(Cancel, Instant)>,
    forced: bool,
}

impl WatchSlot {
    /// Registers an in-flight request (only deadline-carrying requests
    /// are watchable; others pass `None` and are skipped).
    pub fn begin(&self, cancel: &Cancel, deadline: Option<Instant>) {
        if let Some(dl) = deadline {
            let mut st = crate::lock_recover(&self.inner);
            st.inflight = Some((cancel.clone(), dl));
        }
    }

    /// Ends the in-flight window (the forced flag stays latched).
    pub fn clear(&self) {
        crate::lock_recover(&self.inner).inflight = None;
    }

    /// Watchdog sweep: force-cancels an entry stuck past `deadline +
    /// grace`. Returns `true` when this sweep fired the cancel.
    pub fn check(&self, now: Instant, grace: Duration) -> bool {
        let mut st = crate::lock_recover(&self.inner);
        match &st.inflight {
            Some((cancel, dl)) if now > *dl + grace => {
                cancel.cancel();
                st.inflight = None; // fire once per request
                st.forced = true;
                true
            }
            _ => false,
        }
    }

    /// Consumes the forced-cancel latch (worker side, after a request).
    pub fn take_forced(&self) -> bool {
        let mut st = crate::lock_recover(&self.inner);
        std::mem::take(&mut st.forced)
    }
}

/// One warm worker: engine + optional shared cache + optional shared
/// checkpoint store.
pub struct Dispatcher {
    params: GreedyK,
    engine: RsEngine,
    cache: Option<Arc<MemoCache>>,
    ckpts: Option<Arc<CheckpointStore>>,
    faults: Option<Arc<FaultPlan>>,
    watch: Option<WatchSlot>,
}

impl Default for Dispatcher {
    fn default() -> Self {
        Self::new()
    }
}

impl Dispatcher {
    /// A cache-less dispatcher with default engine parameters (the one-shot
    /// CLI and corpus workers use this: every request computes cold).
    pub fn new() -> Self {
        Dispatcher {
            params: GreedyK::new(),
            engine: RsEngine::new(),
            cache: None,
            ckpts: None,
            faults: None,
            watch: None,
        }
    }

    /// Retains interrupted-search checkpoints in `store`, keyed by cache
    /// key, so retried requests resume instead of restarting (see
    /// [`CheckpointStore`]). Works with or without a result cache — the
    /// corpus runner uses a store on cache-less dispatchers.
    pub fn set_checkpoint_store(&mut self, store: Arc<CheckpointStore>) {
        self.ckpts = Some(store);
    }

    /// Injects faults per `plan` at this dispatcher's probe point (chaos
    /// testing; see [`FaultPlan`]).
    pub fn set_faults(&mut self, plan: Arc<FaultPlan>) {
        self.faults = Some(plan);
    }

    /// Registers this dispatcher's in-flight window with a pool watchdog.
    pub fn set_watch(&mut self, slot: WatchSlot) {
        self.watch = Some(slot);
    }

    /// Discards the (possibly mid-mutation) engine for a fresh one.
    pub fn replace_engine(&mut self) {
        self.engine = RsEngine::with_params(self.params.clone());
    }

    /// A dispatcher answering from (and filling) a shared memoization
    /// cache.
    pub fn with_cache(cache: Arc<MemoCache>) -> Self {
        Dispatcher {
            cache: Some(cache),
            ..Dispatcher::new()
        }
    }

    /// Cumulative cache counters (zeros without a cache).
    pub fn cache_counters(&self) -> (u64, u64) {
        self.cache.as_ref().map_or((0, 0), |c| c.counters())
    }

    fn cache_info(&self, hit: bool) -> CacheInfo {
        let (hits, misses) = self.cache_counters();
        CacheInfo { hit, hits, misses }
    }

    /// Executes one request: validate, consult the cache, run the engine
    /// under panic containment, fill the cache.
    pub fn dispatch(&mut self, req: &RsRequest) -> RsResponse {
        self.dispatch_at(req, Instant::now())
    }

    /// [`Self::dispatch`] with an explicit arrival time: a request's
    /// `timeout_ms` deadline is anchored at `enqueued`, so queue wait
    /// counts against the budget. On expiry the engine and solvers cancel
    /// cooperatively and the response degrades to
    /// [`RsResponse::timeout`] — `ok:false`, code `timeout`, best partial
    /// result attached. Degraded results are never cached.
    pub fn dispatch_at(&mut self, req: &RsRequest, enqueued: Instant) -> RsResponse {
        let start = Instant::now();
        let id = req.id.clone();
        if let Err(e) = req.validate() {
            return RsResponse::failure(id, e, self.cache_info(false), millis_since(start));
        }
        // The canonical key does double duty: memoization (only when the
        // request allows caching) and checkpoint retention (whenever a
        // store is attached — also for cache-disabled requests, since
        // resuming never replays a stale result, it only continues exact
        // work from a saved frontier).
        let memo = self.cache.is_some() && req.cache;
        let key = if memo || self.ckpts.is_some() {
            Some(req.cache_key())
        } else {
            None
        };
        if memo {
            if let (Some(cache), Some(key)) = (&self.cache, &key) {
                if let Some(result) = cache.lookup(key) {
                    return RsResponse::success(
                        id,
                        result,
                        self.cache_info(true),
                        millis_since(start),
                    );
                }
            }
        }
        // A retried request takes its predecessor's interrupted-search
        // snapshots before executing; the solvers below continue from
        // them node-for-node.
        let resume_slots = match (&self.ckpts, &key) {
            (Some(store), Some(key)) => store.take(key).unwrap_or_default(),
            _ => Vec::new(),
        };
        let mut harvested: Vec<CheckpointSlot> = Vec::new();
        let deadline = req
            .timeout_ms
            .map(|ms| enqueued + Duration::from_millis(ms));
        let cancel = match deadline {
            Some(dl) => Cancel::with_deadline(dl),
            None => Cancel::new(),
        };
        self.engine.set_cancel(cancel.clone());
        if let Some(w) = &self.watch {
            w.begin(&cancel, deadline);
        }
        let fault = self.faults.as_ref().map_or(FaultAction::None, |p| p.next());
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            match fault {
                FaultAction::None => {}
                FaultAction::Panic => panic!("injected fault: panic"),
                FaultAction::Error => {
                    return Err(RsError::new(codes::ENGINE, "injected fault: engine error"));
                }
                FaultAction::Delay(ms) => std::thread::sleep(Duration::from_millis(ms)),
            }
            execute(
                &mut self.engine,
                req,
                &cancel,
                &resume_slots,
                &mut harvested,
            )
        }));
        if let Some(w) = &self.watch {
            w.clear();
        }
        self.engine.clear_cancel();
        // Park whatever the solvers left unfinished — on timeouts *and* on
        // `ok` answers whose search hit a node budget — so the next retry
        // of this request continues instead of restarting. This is also
        // the watchdog-salvage path: a force-cancelled solve still returns
        // cooperatively, and its checkpoint lands here.
        if let (Some(store), Some(key)) = (&self.ckpts, &key) {
            if !harvested.is_empty() {
                store.put(key.clone(), harvested);
            }
        }
        match outcome {
            Ok(Ok(result)) => {
                // Timeout is decided by the token, not the wall clock: the
                // flag latches only when some loop actually observed the
                // expired deadline and cut work short, so an untouched
                // result that merely finished late still answers `ok`.
                if cancel.is_set() {
                    let e = RsError::new(
                        codes::TIMEOUT,
                        format!(
                            "deadline of {} ms expired; best partial result attached",
                            req.timeout_ms.unwrap_or(0)
                        ),
                    );
                    return RsResponse::timeout(
                        id,
                        e,
                        result,
                        self.cache_info(false),
                        millis_since(start),
                    );
                }
                if memo {
                    if let (Some(cache), Some(key)) = (&self.cache, key) {
                        cache.insert(key, &result);
                    }
                }
                RsResponse::success(id, result, self.cache_info(false), millis_since(start))
            }
            Ok(Err(e)) => RsResponse::failure(id, e, self.cache_info(false), millis_since(start)),
            Err(payload) => {
                // The engine scratch may be mid-mutation: replace it, keep
                // serving.
                self.replace_engine();
                let e = RsError::new(
                    codes::PANIC,
                    format!("engine panicked: {}", panic_message(&payload)),
                );
                RsResponse::failure(id, e, self.cache_info(false), millis_since(start))
            }
        }
    }
}

fn millis_since(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic payload".to_string()
    }
}

/// Decodes one newline-delimited JSON request line and dispatches it.
///
/// Returns the response and its serialized JSON line. A line that is not
/// valid JSON, or not a valid request object, yields an `ok:false` response
/// with code `request` — the caller (daemon, corpus) keeps going.
pub fn process_line(dispatcher: &mut Dispatcher, line: &str) -> (RsResponse, String) {
    process_line_at(dispatcher, line, Instant::now())
}

/// [`process_line`] with an explicit enqueue time. A request whose entire
/// `timeout_ms` budget was consumed waiting in the queue is *shed*: it
/// answers `ok:false` with code `overloaded` without executing, so a
/// backlogged server degrades by dropping stale work instead of burning
/// workers on answers nobody is still waiting for.
pub fn process_line_at(
    dispatcher: &mut Dispatcher,
    line: &str,
    enqueued: Instant,
) -> (RsResponse, String) {
    let response = match serde_json::from_str(line) {
        Err(e) => RsResponse::failure(
            None,
            RsError::new(codes::REQUEST, format!("malformed request JSON: {e}")),
            dispatcher.cache_info(false),
            0.0,
        ),
        Ok(value) => match rs_core::request::RsRequest::from_value(&value) {
            Err(e) => {
                // Best effort: echo the id even when the request is invalid.
                let id = value.get("id").and_then(|v| v.as_str()).map(str::to_string);
                RsResponse::failure(
                    id,
                    RsError::new(codes::REQUEST, format!("invalid request: {e}")),
                    dispatcher.cache_info(false),
                    0.0,
                )
            }
            Ok(req) => {
                let waited = enqueued.elapsed();
                match req.timeout_ms {
                    Some(ms) if waited >= Duration::from_millis(ms) => RsResponse::failure(
                        req.id.clone(),
                        RsError::new(
                            codes::OVERLOADED,
                            format!(
                                "shed before execution: queued {} ms against a {ms} ms deadline",
                                waited.as_millis()
                            ),
                        ),
                        dispatcher.cache_info(false),
                        0.0,
                    ),
                    _ => dispatcher.dispatch_at(&req, enqueued),
                }
            }
        },
    };
    // Derive-generated serialization of an owned response cannot fail; if
    // it ever does, degrade to a hand-built error line — the request loop
    // must answer something rather than panic (lint rule S-01).
    let json = serde_json::to_string(&response).unwrap_or_else(|e| {
        let msg = format!("response serialization failed: {e}");
        let quoted =
            serde_json::to_string(&msg).unwrap_or_else(|_| "\"serialization failed\"".into());
        format!(
            "{{\"v\":{},\"ok\":false,\"error\":{{\"code\":\"{}\",\"message\":{quoted}}}}}",
            rs_core::request::PROTOCOL_VERSION,
            rs_core::request::codes::PANIC,
        )
    });
    (response, json)
}

/// Runs the validated request against the engine.
///
/// `resume` carries named checkpoints from an earlier interrupted attempt
/// of this request; solvers that find their slot continue from it.
/// Interrupted solves deposit fresh checkpoints into `harvest`.
fn execute(
    engine: &mut RsEngine,
    req: &RsRequest,
    cancel: &Cancel,
    resume: &[CheckpointSlot],
    harvest: &mut Vec<CheckpointSlot>,
) -> Result<RsResult, RsError> {
    let mut ddg = parse_ddg(&req.ddg).map_err(|e| RsError::new(codes::PARSE, e.to_string()))?;
    let types: Vec<RegType> = match req.reg_type.as_deref() {
        Some(name) => vec![reg_type_from_name(name).ok_or_else(|| {
            RsError::new(codes::REQUEST, format!("unknown register type `{name}`"))
        })?],
        None => ddg.reg_types(),
    };
    let mut result = RsResult {
        ops: ddg.num_ops(),
        edges: ddg.graph().edge_count(),
        critical_path: ddg.critical_path(),
        types: Vec::new(),
        makespan: None,
        ddg_out: None,
    };
    match req.op {
        RsOp::Analyze => {
            for &t in &types {
                result
                    .types
                    .push(analyze_type(engine, &ddg, t, req, cancel, resume, harvest));
            }
        }
        RsOp::Reduce => {
            let budget = req.registers.ok_or_else(missing_budget)?;
            for &t in &types {
                result
                    .types
                    .push(reduce_type(engine, &mut ddg, t, budget, req.spill)?);
            }
            if req.emit_ddg {
                result.ddg_out = Some(print_ddg(&ddg));
            }
        }
        RsOp::Pipeline => {
            let budget = req.registers.ok_or_else(missing_budget)?;
            let resources = match req.issue {
                None | Some(4) => Resources::four_issue(),
                Some(1) => Resources::single_issue(),
                Some(8) => Resources::wide_issue(),
                Some(w) => {
                    return Err(RsError::new(
                        codes::REQUEST,
                        format!("unsupported issue width {w} (want 1, 4, or 8)"),
                    ))
                }
            };
            for &t in &types {
                result
                    .types
                    .push(reduce_type(engine, &mut ddg, t, budget, false)?);
            }
            let all_fit = result
                .types
                .iter()
                .all(|tr| tr.reduce.as_ref().is_some_and(|r| r.fits));
            if all_fit {
                let sched = ListScheduler::new(resources).schedule(&ddg);
                result.makespan = Some(sched.makespan);
                for (tr, &t) in result.types.iter_mut().zip(&types) {
                    let alloc = RegisterAllocator::new().allocate(&ddg, t, &sched.sigma, budget);
                    tr.alloc = Some(AllocResult {
                        registers_used: alloc.registers_used,
                        spills: alloc.spilled.len(),
                    });
                }
            }
            if req.emit_ddg {
                result.ddg_out = Some(print_ddg(&ddg));
            }
        }
    }
    Ok(result)
}

/// Validation guarantees a budget for reduce/pipeline, but requests built
/// programmatically can reach [`execute`] unvalidated — answer typed
/// (code `request`) instead of panicking the worker.
fn missing_budget() -> RsError {
    RsError::new(codes::REQUEST, "reduce requires a register budget")
}

#[allow(clippy::too_many_arguments)]
fn analyze_type(
    engine: &mut RsEngine,
    ddg: &Ddg,
    t: RegType,
    req: &RsRequest,
    cancel: &Cancel,
    resume: &[CheckpointSlot],
    harvest: &mut Vec<CheckpointSlot>,
) -> TypeResult {
    let threads = req.threads.max(1);
    let a = engine.analyze(ddg, t);
    let saturating = a
        .saturating_values
        .iter()
        .map(|&v| ddg.graph().node(v).name.clone())
        .collect();
    let mut tr = TypeResult {
        reg_type: reg_type_name(t),
        values: ddg.values(t).len(),
        saturation: a.saturation,
        saturating,
        optimal: a.provably_optimal,
        exact: None,
        ilp: None,
        ilp_stats: None,
        ilp_error: None,
        reduce: None,
        alloc: None,
    };
    if req.exact {
        let mut solver = ExactRs::with_threads(threads);
        solver.cancel = cancel.clone();
        let e = solver.saturation(ddg, t);
        tr.exact = Some(SolveResult {
            saturation: e.saturation,
            proven_optimal: e.proven_optimal,
            bound: if e.proven_optimal {
                None
            } else {
                Some(e.upper_bound)
            },
            resume: None,
            resumed: false,
        });
    }
    if req.ilp {
        let mut solver = RsIlp::with_threads(threads);
        solver.milp.cancel = cancel.clone();
        if let Some(audit) = req.audit {
            solver.milp.audit = audit;
        }
        // The per-request checkpoint slot for this solver is the register
        // type name: each interrupted intLP resumes its own frontier.
        let slot = reg_type_name(t);
        let prior = resume
            .iter()
            .find(|(name, _)| name == &slot)
            .and_then(|(_, json)| SearchCheckpoint::from_json(json).ok());
        let run = solver.saturation_resumable(ddg, t, prior.as_ref());
        // The resume token surfaced to clients is the checkpoint JSON
        // itself — opaque to them, exact to us. The same snapshot is
        // harvested into the dispatcher's store so a plain retry resumes
        // even when the client dropped the token.
        let token = run.checkpoint.as_ref().map(|ck| ck.to_json());
        if let Some(json) = token.clone() {
            harvest.push((slot, json));
        }
        match run.result {
            Ok(r) => {
                tr.ilp = Some(SolveResult {
                    saturation: r.saturation,
                    proven_optimal: r.proven_optimal,
                    bound: if r.proven_optimal {
                        None
                    } else {
                        Some(r.upper_bound)
                    },
                    resume: token,
                    resumed: r.milp_stats.resumed,
                });
                if req.stats {
                    let st = &r.milp_stats;
                    tr.ilp_stats = Some(IlpStats {
                        nodes: st.nodes,
                        lp_solves: st.lp_solves,
                        warm_solves: st.warm_solves,
                        warm_hits: st.warm_hits,
                        dive_reinstalls: st.dive_reinstalls,
                        pseudocost_branches: st.pseudocost_branches,
                        strong_branch_probes: st.strong_branch_probes,
                        pivots: st.pivots,
                        dse_pivots: st.dse_pivots,
                        bound_flips: st.bound_flips,
                        cuts_added: st.cuts_added,
                        cut_rounds: st.cut_rounds,
                        propagation_fathoms: st.propagation_fathoms,
                        rows: st.rows,
                        cols: st.cols,
                        trace_digest: st.trace_digest,
                        audited: st.audited,
                    });
                }
            }
            // Budget/deadline exhaustion without any incumbent is a
            // degradation, not an engine fault: type it `timeout` so
            // clients (and the CLI) render "interrupted" instead of a
            // fatal solver error. Genuine solver faults keep `engine`.
            Err(MilpError::BudgetExhausted) => {
                tr.ilp_error = Some(RsError::new(
                    codes::TIMEOUT,
                    "intLP interrupted before any incumbent was found",
                ));
            }
            // Audit rejections are a property of the submitted model or
            // resume state, not an engine fault: type them `request` so
            // clients see *their* input (or retained checkpoint) was bad.
            Err(MilpError::Audit(a)) => {
                tr.ilp_error = Some(RsError::new(
                    codes::REQUEST,
                    format!("rejected by pre-solve audit: {a}"),
                ));
            }
            Err(e) => tr.ilp_error = Some(RsError::new(codes::ENGINE, e.to_string())),
        }
    }
    tr
}

/// Reduces one type in place, optionally spilling when serialization alone
/// cannot meet the budget. An unmeetable budget is *not* an `Err` — it
/// reports `fits: false` so batch clients see partial results; front ends
/// decide whether that is fatal.
fn reduce_type(
    engine: &mut RsEngine,
    ddg: &mut Ddg,
    t: RegType,
    budget: usize,
    spill: bool,
) -> Result<TypeResult, RsError> {
    let values = ddg.values(t).len();
    let cp_before = ddg.critical_path();
    let out = engine.reduce(ddg, t, budget);
    let (saturation, reduce) = match out {
        ReduceOutcome::AlreadyFits { rs } => (
            rs,
            ReduceResult {
                budget,
                rs_after: rs,
                arcs_added: 0,
                cp_before,
                cp_after: cp_before,
                fits: true,
                spilled: Vec::new(),
            },
        ),
        ReduceOutcome::Reduced {
            rs_before,
            rs_after,
            cp_before,
            cp_after,
            added_arcs,
            ..
        } => (
            rs_before,
            ReduceResult {
                budget,
                rs_after,
                arcs_added: added_arcs.len(),
                cp_before,
                cp_after,
                fits: true,
                spilled: Vec::new(),
            },
        ),
        ReduceOutcome::Failed {
            rs_before,
            best_rs,
            cp_after,
            added_arcs,
        } => {
            let spilled = if spill {
                SpillPass::new().spill_to_fit(ddg, t, budget)
            } else {
                None
            };
            match spilled {
                Some(res) => {
                    *ddg = res.ddg;
                    (
                        rs_before,
                        ReduceResult {
                            budget,
                            rs_after: res.rs_after,
                            arcs_added: res.reduction_arcs,
                            cp_before,
                            cp_after: ddg.critical_path(),
                            fits: true,
                            spilled: res.spilled_values,
                        },
                    )
                }
                None => (
                    rs_before,
                    ReduceResult {
                        budget,
                        rs_after: best_rs,
                        arcs_added: added_arcs.len(),
                        cp_before,
                        cp_after,
                        fits: false,
                        spilled: Vec::new(),
                    },
                ),
            }
        }
    };
    Ok(TypeResult {
        reg_type: reg_type_name(t),
        values,
        saturation,
        saturating: Vec::new(),
        optimal: false,
        exact: None,
        ilp: None,
        ilp_stats: None,
        ilp_error: None,
        reduce: Some(reduce),
        alloc: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const CHAINS: &str = "op a load float\nop sa store none\nflow a sa 4 float\n\
                          op b load float\nop sb store none\nflow b sb 4 float\n\
                          op c load float\nop sc store none\nflow c sc 4 float\n\
                          op d load float\nop sd store none\nflow d sd 4 float\n";

    #[test]
    fn analyze_reports_saturation() {
        let mut d = Dispatcher::new();
        let resp = d.dispatch(&RsRequest::new(RsOp::Analyze, CHAINS));
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        assert_eq!(float.saturation, 4);
        assert_eq!(float.saturating.len(), 4);
    }

    #[test]
    fn reduce_meets_budget_and_emits_ddg() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Reduce, CHAINS);
        req.registers = Some(2);
        req.emit_ddg = true;
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let red = float.reduce.as_ref().unwrap();
        assert!(red.fits);
        assert!(red.rs_after <= 2);
        assert!(red.arcs_added > 0);
        let out = result.ddg_out.as_deref().expect("emit_ddg");
        assert!(parse_ddg(out).is_ok(), "emitted DDG re-parses");
    }

    #[test]
    fn infeasible_reduce_reports_fits_false_not_error() {
        let two_into_one = "op l1 load float\nop l2 load float\nop add falu float\n\
                            op st store none\nflow l1 add 4 float\nflow l2 add 4 float\n\
                            flow add st 3 float\n";
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Reduce, two_into_one);
        req.registers = Some(1);
        let resp = d.dispatch(&req);
        assert!(resp.ok);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        assert!(!float.reduce.as_ref().unwrap().fits);
    }

    #[test]
    fn parse_failures_carry_the_parse_code() {
        let mut d = Dispatcher::new();
        let resp = d.dispatch(&RsRequest::new(
            RsOp::Analyze,
            "op a load float\nflow a ghost 1 float\n",
        ));
        assert!(!resp.ok);
        let err = resp.error.unwrap();
        assert_eq!(err.code, codes::PARSE);
        assert!(err.message.contains("line 2"), "{}", err.message);
    }

    #[test]
    fn pipeline_schedules_and_allocates() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Pipeline, CHAINS);
        req.registers = Some(4);
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        assert!(result.makespan.is_some());
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let alloc = float.alloc.unwrap();
        assert!(alloc.registers_used <= 4);
        assert_eq!(alloc.spills, 0);
    }

    #[test]
    fn cache_hit_is_bit_identical_to_cold_result() {
        let cache = Arc::new(MemoCache::with_capacity(16));
        let mut d = Dispatcher::with_cache(cache);
        let req = RsRequest::new(RsOp::Analyze, CHAINS);
        let cold = d.dispatch(&req);
        let warm = d.dispatch(&req);
        assert!(!cold.cache.hit);
        assert!(warm.cache.hit);
        assert_eq!(warm.cache.hits, 1);
        assert_eq!(
            serde_json::to_string(&warm.result).unwrap(),
            serde_json::to_string(&cold.result).unwrap(),
            "hit result must be bit-identical to the cold result"
        );
    }

    #[test]
    fn expired_deadline_degrades_to_timeout_with_partial_result() {
        let mut d = Dispatcher::new();
        // Reduce polls the token every serialization step, so an
        // already-expired deadline trips on the first step. (An analyze
        // that proves optimality before any poll still answers `ok` —
        // timeout is decided by the token, not the wall clock.)
        let mut req = RsRequest::new(RsOp::Reduce, CHAINS);
        req.registers = Some(2);
        req.timeout_ms = Some(0); // expired on arrival: every poll trips
        let resp = d.dispatch(&req);
        assert!(!resp.ok);
        assert_eq!(resp.error.as_ref().unwrap().code, codes::TIMEOUT);
        let result = resp.result.expect("timeout keeps the partial result");
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        assert!(float.saturation >= 1, "partial result reports the RS seen");
        let red = float.reduce.as_ref().expect("partial reduce attached");
        assert!(!red.fits, "interrupted reduction reports fits:false");
    }

    #[test]
    fn fast_requests_with_generous_deadlines_still_answer_ok() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Analyze, CHAINS);
        req.timeout_ms = Some(60_000);
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
    }

    #[test]
    fn degraded_results_are_not_cached() {
        let cache = Arc::new(MemoCache::with_capacity(16));
        let mut d = Dispatcher::with_cache(cache);
        let mut timed = RsRequest::new(RsOp::Reduce, CHAINS);
        timed.registers = Some(2);
        timed.timeout_ms = Some(0);
        let degraded = d.dispatch(&timed);
        assert_eq!(degraded.error.unwrap().code, codes::TIMEOUT);
        // Same cache key (timeout_ms is excluded): a cached degraded
        // result would surface here as a hit.
        let mut fresh_req = RsRequest::new(RsOp::Reduce, CHAINS);
        fresh_req.registers = Some(2);
        let fresh = d.dispatch(&fresh_req);
        assert!(fresh.ok);
        assert!(!fresh.cache.hit, "degraded result must not be cached");
    }

    #[test]
    fn retried_timeout_request_resumes_from_checkpoint() {
        use crate::checkpoint::CheckpointStore;
        let store = Arc::new(CheckpointStore::default());
        let mut d = Dispatcher::new();
        d.set_checkpoint_store(store.clone());
        let mut req = RsRequest::new(RsOp::Analyze, CHAINS);
        req.ilp = true;
        req.timeout_ms = Some(0); // expired on arrival: intLP interrupted at once
        let first = d.dispatch(&req);
        assert!(!first.ok);
        assert_eq!(first.error.unwrap().code, codes::TIMEOUT);
        assert_eq!(store.len(), 1, "interrupted intLP parked a checkpoint");
        // Same cache key (timeout_ms is excluded): the retry picks the
        // checkpoint up and finishes the search it started.
        let mut retry = RsRequest::new(RsOp::Analyze, CHAINS);
        retry.ilp = true;
        let second = d.dispatch(&retry);
        assert!(second.ok, "{:?}", second.error);
        let result = second.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let ilp = float.ilp.as_ref().expect("resumed intLP completed");
        assert!(ilp.resumed, "retry continued from the parked checkpoint");
        assert!(ilp.proven_optimal);
        assert_eq!(ilp.saturation, 4);
        assert!(ilp.resume.is_none(), "finished searches carry no token");
        assert!(store.is_empty(), "resume consumed the entry");
        assert_eq!(store.counters(), (1, 1));
    }

    #[test]
    fn cold_requests_without_checkpoints_report_resumed_false() {
        let mut d = Dispatcher::new();
        d.set_checkpoint_store(Arc::new(crate::checkpoint::CheckpointStore::default()));
        let mut req = RsRequest::new(RsOp::Analyze, CHAINS);
        req.ilp = true;
        let resp = d.dispatch(&req);
        assert!(resp.ok, "{:?}", resp.error);
        let result = resp.result.unwrap();
        let float = result.types.iter().find(|t| t.reg_type == "float").unwrap();
        let ilp = float.ilp.as_ref().unwrap();
        assert!(!ilp.resumed);
        assert!(ilp.resume.is_none());
    }

    #[test]
    fn stale_queued_request_is_shed_without_executing() {
        let mut d = Dispatcher::new();
        let mut req = RsRequest::new(RsOp::Analyze, CHAINS);
        req.timeout_ms = Some(10);
        let line = serde_json::to_string(&req).unwrap();
        let enqueued = Instant::now() - Duration::from_millis(50);
        let (resp, _) = process_line_at(&mut d, &line, enqueued);
        assert!(!resp.ok);
        assert_eq!(resp.error.unwrap().code, codes::OVERLOADED);
        assert!(resp.result.is_none(), "shed requests never execute");
    }

    #[test]
    fn watchdog_slot_force_cancels_and_latches() {
        let slot = WatchSlot::default();
        let cancel = Cancel::new();
        let deadline = Instant::now() - Duration::from_millis(5);
        slot.begin(&cancel, Some(deadline));
        assert!(
            !slot.check(deadline, Duration::from_millis(100)),
            "in grace"
        );
        assert!(slot.check(Instant::now(), Duration::ZERO));
        assert!(cancel.is_set(), "watchdog forced the token");
        assert!(!slot.check(Instant::now(), Duration::ZERO), "fires once");
        assert!(slot.take_forced());
        assert!(!slot.take_forced(), "latch is consumed");
        // Requests without a deadline are not watchable.
        slot.begin(&Cancel::new(), None);
        assert!(!slot.check(Instant::now(), Duration::ZERO));
    }

    #[test]
    fn injected_faults_answer_typed_and_service_continues() {
        use crate::fault::FaultPlan;
        let mut d = Dispatcher::new();
        d.set_faults(Arc::new(FaultPlan::from_spec("panic=3,error=2").unwrap()));
        let req = RsRequest::new(RsOp::Analyze, CHAINS);
        let first = d.dispatch(&req); // tick 1: clean
        let second = d.dispatch(&req); // tick 2: injected error
        let third = d.dispatch(&req); // tick 3: injected panic, contained
        let fourth = d.dispatch(&req); // tick 4: injected error
        assert!(first.ok);
        assert_eq!(second.error.unwrap().code, codes::ENGINE);
        assert_eq!(third.error.unwrap().code, codes::PANIC);
        assert_eq!(fourth.error.unwrap().code, codes::ENGINE);
        assert!(d.dispatch(&req).ok, "engine replaced, service continues");
    }

    #[test]
    fn unvalidated_requests_answer_typed_request_errors() {
        // Reaching execute() without validate() must not panic the worker.
        let cancel = Cancel::new();
        let mut engine = RsEngine::new();
        let mut hv = Vec::new();
        let mut req = RsRequest::new(RsOp::Reduce, CHAINS);
        let err = execute(&mut engine, &req, &cancel, &[], &mut hv).unwrap_err();
        assert_eq!(err.code, codes::REQUEST);
        req.reg_type = Some("flux".into());
        let err = execute(&mut engine, &req, &cancel, &[], &mut hv).unwrap_err();
        assert_eq!(err.code, codes::REQUEST);
        let mut req = RsRequest::new(RsOp::Pipeline, CHAINS);
        req.registers = Some(4);
        req.issue = Some(3);
        let err = execute(&mut engine, &req, &cancel, &[], &mut hv).unwrap_err();
        assert_eq!(err.code, codes::REQUEST);
        assert!(err.message.contains("issue width"), "{err}");
    }

    #[test]
    fn malformed_line_is_contained_and_next_request_answers() {
        let mut d = Dispatcher::new();
        let (bad, _) = process_line(&mut d, "{\"v\":1,\"op\":\"analyze\"");
        assert!(!bad.ok);
        assert_eq!(bad.error.unwrap().code, codes::REQUEST);
        let good = serde_json::to_string(&RsRequest::new(RsOp::Analyze, CHAINS)).unwrap();
        let (ok, json) = process_line(&mut d, &good);
        assert!(ok.ok);
        assert!(
            json.contains("\"ok\": true") || json.contains("\"ok\":true"),
            "{json}"
        );
    }
}
