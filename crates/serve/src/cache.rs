//! Content-keyed memoization of analysis results.
//!
//! The key is the canonical request signature ([`rs_core::request::RsRequest::cache_key`]):
//! DAG bytes + operation + every result-affecting parameter. Results are
//! deterministic and thread-count invariant, so a hit can be replayed
//! bit-identically. Only successful results are cached; eviction is FIFO.

use rs_core::request::RsResult;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Default number of cached results ([`MemoCache::with_capacity`] overrides).
pub const DEFAULT_CACHE_CAPACITY: usize = 1024;

struct Inner {
    map: HashMap<String, RsResult>,
    /// Insertion order, for FIFO eviction.
    order: VecDeque<String>,
    capacity: usize,
}

/// A bounded, thread-safe result cache with hit/miss counters.
pub struct MemoCache {
    inner: Mutex<Inner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Default for MemoCache {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }
}

impl MemoCache {
    /// A cache that evicts FIFO past `capacity` entries (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        MemoCache {
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: capacity.max(1),
            }),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Looks up a result, counting a hit or a miss.
    pub fn lookup(&self, key: &str) -> Option<RsResult> {
        let inner = crate::lock_recover(&self.inner);
        match inner.map.get(key) {
            Some(result) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a result, evicting the oldest entry when full. Concurrent
    /// inserts under the same key are idempotent (results are
    /// deterministic).
    pub fn insert(&self, key: String, result: &RsResult) {
        let mut inner = crate::lock_recover(&self.inner);
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= inner.capacity {
            match inner.order.pop_front() {
                Some(old) => {
                    inner.map.remove(&old);
                }
                None => break,
            }
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, result.clone());
    }

    /// Cumulative `(hits, misses)`.
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Entries currently cached.
    pub fn len(&self) -> usize {
        crate::lock_recover(&self.inner).map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(tag: usize) -> RsResult {
        RsResult {
            ops: tag,
            edges: 0,
            critical_path: 0,
            types: Vec::new(),
            makespan: None,
            ddg_out: None,
        }
    }

    #[test]
    fn hit_and_miss_counters_track_lookups() {
        let cache = MemoCache::with_capacity(8);
        assert!(cache.lookup("a").is_none());
        cache.insert("a".into(), &result(1));
        assert_eq!(cache.lookup("a").unwrap().ops, 1);
        assert_eq!(cache.counters(), (1, 1));
    }

    #[test]
    fn eviction_is_fifo() {
        let cache = MemoCache::with_capacity(2);
        cache.insert("a".into(), &result(1));
        cache.insert("b".into(), &result(2));
        cache.insert("c".into(), &result(3));
        assert_eq!(cache.len(), 2);
        assert!(cache.lookup("a").is_none(), "oldest entry evicted");
        assert!(cache.lookup("b").is_some());
        assert!(cache.lookup("c").is_some());
    }
}
