//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] is shared (via `Arc`) by every worker in a pool and
//! fires on a global request counter, so a given spec produces the same
//! fault schedule for the same arrival order regardless of which worker
//! picks a request up. Three probe points exist, all inside the panic
//! containment of [`crate::dispatch::Dispatcher::dispatch`]:
//!
//! - `panic=N` — every Nth probed request panics before execution
//!   (exercises catch-unwind + engine replacement, wire code `panic`),
//! - `error=N` — every Nth probed request returns a spurious engine
//!   error (wire code `engine`) without executing,
//! - `delay=N:MS` — every Nth probed request sleeps `MS` milliseconds
//!   before executing (exercises deadline expiry, queue backlog, and the
//!   watchdog).
//!
//! Precedence when several fire on the same tick: panic > error > delay.
//! The spec string (e.g. `"panic=7,delay=5:40,error=11"`) comes from
//! `--faults` flags or the `RSAT_FAULTS` environment variable.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a probe point should do for the current request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Execute normally.
    None,
    /// Panic (the dispatcher's containment turns this into code `panic`).
    Panic,
    /// Return a spurious engine error without executing.
    Error,
    /// Sleep this many milliseconds, then execute normally.
    Delay(u64),
}

/// A deterministic, counter-driven fault schedule.
#[derive(Debug, Default)]
pub struct FaultPlan {
    panic_every: u64,
    error_every: u64,
    delay_every: u64,
    delay_ms: u64,
    ticks: AtomicU64,
}

impl FaultPlan {
    /// Parses a spec like `"panic=7,delay=5:40,error=11"`. Unknown keys
    /// and malformed clauses are errors; an empty spec is a no-op plan.
    pub fn from_spec(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(',').filter(|c| !c.trim().is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            let key = key.trim();
            let val = val.trim();
            let parse = |s: &str| {
                s.parse::<u64>()
                    .map_err(|_| format!("fault clause `{clause}`: `{s}` is not a number"))
            };
            match key {
                "panic" => plan.panic_every = parse(val)?,
                "error" => plan.error_every = parse(val)?,
                "delay" => {
                    let (every, ms) = val
                        .split_once(':')
                        .ok_or_else(|| format!("fault clause `{clause}` wants delay=N:MS"))?;
                    plan.delay_every = parse(every)?;
                    plan.delay_ms = parse(ms)?;
                }
                other => return Err(format!("unknown fault kind `{other}`")),
            }
        }
        Ok(plan)
    }

    /// Reads `RSAT_FAULTS`; `Ok(None)` when unset or empty. A malformed
    /// value is a **startup error** — silently ignoring it would run the
    /// daemon without the chaos schedule the operator asked for, which is
    /// exactly the run where you cannot tell. Same contract as a malformed
    /// `--faults` flag.
    pub fn from_env() -> Result<Option<Arc<FaultPlan>>, String> {
        let spec = match std::env::var("RSAT_FAULTS") {
            Ok(s) => s,
            Err(_) => return Ok(None),
        };
        if spec.trim().is_empty() {
            return Ok(None);
        }
        match FaultPlan::from_spec(&spec) {
            Ok(plan) => Ok(Some(Arc::new(plan))),
            Err(e) => Err(format!("invalid RSAT_FAULTS: {e}")),
        }
    }

    /// True when no clause can ever fire.
    pub fn is_empty(&self) -> bool {
        self.panic_every == 0 && self.error_every == 0 && self.delay_every == 0
    }

    /// Advances the global counter and reports what this request should do.
    pub fn next(&self) -> FaultAction {
        let n = self.ticks.fetch_add(1, Ordering::Relaxed) + 1;
        if self.panic_every > 0 && n % self.panic_every == 0 {
            FaultAction::Panic
        } else if self.error_every > 0 && n % self.error_every == 0 {
            FaultAction::Error
        } else if self.delay_every > 0 && n % self.delay_every == 0 {
            FaultAction::Delay(self.delay_ms)
        } else {
            FaultAction::None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_round_trip_fires_on_schedule() {
        let plan = FaultPlan::from_spec("panic=4,delay=3:25,error=6").unwrap();
        let got: Vec<FaultAction> = (0..12).map(|_| plan.next()).collect();
        // tick:     1     2     3         4      5     6      7     8      9        10    11    12
        // delay=3:              x                x                         x                    x
        // panic=4:                        x                    x                                x
        // error=6:                               (6)                                            (12)
        // precedence panic > error > delay.
        use FaultAction::{Delay, Error, None as No, Panic};
        assert_eq!(
            got,
            vec![
                No,
                No,
                Delay(25),
                Panic,
                No,
                Error,
                No,
                Panic,
                Delay(25),
                No,
                No,
                Panic
            ]
        );
    }

    #[test]
    fn empty_and_malformed_specs() {
        assert!(FaultPlan::from_spec("").unwrap().is_empty());
        assert!(FaultPlan::from_spec("  ").unwrap().is_empty());
        assert!(FaultPlan::from_spec("panic").is_err());
        assert!(FaultPlan::from_spec("panic=x").is_err());
        assert!(FaultPlan::from_spec("delay=3").is_err());
        assert!(FaultPlan::from_spec("jitter=3").is_err());
        let plan = FaultPlan::from_spec("panic=0").unwrap();
        assert!(plan.is_empty(), "every=0 disables the clause");
        assert_eq!(plan.next(), FaultAction::None);
    }
}
