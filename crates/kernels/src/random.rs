//! Seeded random layered-DAG generator for the breadth experiments.
//!
//! The generator produces loop-body-shaped DDGs: operations arranged in
//! layers (so the DAG property is structural), flow edges from value
//! producers to later-layer consumers, a configurable fraction of
//! value-producing operations, and realistic per-class latencies from the
//! target description. Everything is deterministic in the seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};
use rs_graph::NodeId;

/// Generator parameters.
#[derive(Clone, Debug)]
pub struct RandomDagConfig {
    /// Number of operations (excluding the virtual `⊥`).
    pub ops: usize,
    /// Number of layers (≥ 2; depth/width trade-off).
    pub layers: usize,
    /// Probability of a flow edge from a producer to each later-layer op.
    pub edge_prob: f64,
    /// Fraction of operations producing a float value (the rest are
    /// stores/address ops; a small slice produces int values).
    pub value_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomDagConfig {
    fn default() -> Self {
        RandomDagConfig {
            ops: 16,
            layers: 4,
            edge_prob: 0.25,
            value_ratio: 0.7,
            seed: 0xC0FFEE,
        }
    }
}

impl RandomDagConfig {
    /// Convenience constructor for sweeps.
    pub fn sized(ops: usize, seed: u64) -> Self {
        RandomDagConfig {
            ops,
            layers: (ops / 4).clamp(2, 8),
            seed,
            ..Self::default()
        }
    }
}

/// Generates a random DDG against the target.
pub fn random_ddg(cfg: &RandomDagConfig, target: Target) -> Ddg {
    assert!(cfg.ops >= 2, "need at least two operations");
    let layers = cfg.layers.clamp(2, cfg.ops);
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut b = DdgBuilder::new(target);

    // Assign ops to layers round-robin with jitter, so every layer is
    // populated.
    let mut layer_of: Vec<usize> = (0..cfg.ops).map(|i| i * layers / cfg.ops).collect();
    for l in layer_of.iter_mut() {
        if *l + 1 < layers && rng.gen_bool(0.25) {
            *l += 1;
        }
    }
    layer_of.sort_unstable();

    let classes_float = [
        OpClass::Load,
        OpClass::FloatAlu,
        OpClass::FloatMul,
        OpClass::FloatAlu,
        OpClass::FloatMul,
        OpClass::FloatDiv,
    ];
    let classes_other = [OpClass::Store, OpClass::Addr, OpClass::IntAlu];

    struct OpInfo {
        id: NodeId,
        layer: usize,
        writes: Option<RegType>,
    }
    let mut ops: Vec<OpInfo> = Vec::with_capacity(cfg.ops);
    for (i, &layer) in layer_of.iter().enumerate() {
        let roll: f64 = rng.gen();
        let (class, writes) = if roll < cfg.value_ratio {
            let class = classes_float[rng.gen_range(0..classes_float.len())];
            (class, Some(RegType::FLOAT))
        } else if roll < cfg.value_ratio + (1.0 - cfg.value_ratio) * 0.4 {
            (OpClass::IntAlu, Some(RegType::INT))
        } else {
            let class = classes_other[rng.gen_range(0..classes_other.len())];
            let writes = matches!(class, OpClass::Addr | OpClass::IntAlu).then_some(RegType::INT);
            (class, writes)
        };
        let id = b.op(format!("op{i}"), class, writes);
        ops.push(OpInfo { id, layer, writes });
    }

    // Flow/serial edges: from each op to later-layer ops with probability
    // edge_prob; every op beyond the first layer gets at least one
    // predecessor so the DAG is connected-ish.
    for j in 0..ops.len() {
        if ops[j].layer == 0 {
            continue;
        }
        let mut has_pred = false;
        for i in 0..j {
            if ops[i].layer >= ops[j].layer {
                continue;
            }
            if rng.gen_bool(cfg.edge_prob) {
                add_dependence(&mut b, &mut rng, ops[i].id, ops[i].writes, ops[j].id);
                has_pred = true;
            }
        }
        if !has_pred {
            // pick a random earlier-layer op (if the jitter left none, the
            // node simply becomes an extra source)
            let candidates: Vec<usize> = (0..j).filter(|&i| ops[i].layer < ops[j].layer).collect();
            if !candidates.is_empty() {
                let pick = candidates[rng.gen_range(0..candidates.len())];
                add_dependence(&mut b, &mut rng, ops[pick].id, ops[pick].writes, ops[j].id);
            }
        }
    }
    b.finish()
}

fn add_dependence(
    b: &mut DdgBuilder,
    rng: &mut StdRng,
    from: NodeId,
    from_writes: Option<RegType>,
    to: NodeId,
) {
    match from_writes {
        Some(t) => {
            // flow dependence with the producer's latency
            b.flow_default(from, to, t);
        }
        None => {
            b.serial(from, to, rng.gen_range(1..=2));
        }
    }
}

/// A standard sweep of seeded DAGs for the experiments: `count` DAGs of
/// `ops` operations each, seeds derived from `base_seed`.
pub fn sweep(ops: usize, count: usize, base_seed: u64, target: Target) -> Vec<Ddg> {
    (0..count)
        .map(|i| {
            random_ddg(
                &RandomDagConfig::sized(ops, base_seed.wrapping_add(i as u64 * 7919)),
                target.clone(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::heuristic::GreedyK;

    #[test]
    fn deterministic_in_seed() {
        let cfg = RandomDagConfig::default();
        let a = random_ddg(&cfg, Target::superscalar());
        let b = random_ddg(&cfg, Target::superscalar());
        assert_eq!(a.num_ops(), b.num_ops());
        assert_eq!(a.graph().edge_count(), b.graph().edge_count());
        let rs_a = GreedyK::new().saturation(&a, RegType::FLOAT).saturation;
        let rs_b = GreedyK::new().saturation(&b, RegType::FLOAT).saturation;
        assert_eq!(rs_a, rs_b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = random_ddg(&RandomDagConfig::default(), Target::superscalar());
        let cfg2 = RandomDagConfig {
            seed: 42,
            ..RandomDagConfig::default()
        };
        let b = random_ddg(&cfg2, Target::superscalar());
        // edge structure almost surely differs
        assert!(
            a.graph().edge_count() != b.graph().edge_count()
                || a.values(RegType::FLOAT).len() != b.values(RegType::FLOAT).len(),
            "suspiciously identical DAGs from different seeds"
        );
    }

    #[test]
    fn sweep_produces_valid_dags() {
        for d in sweep(14, 10, 7, Target::superscalar()) {
            assert!(d.is_acyclic());
            assert_eq!(d.num_ops(), 15); // 14 + ⊥

            // analyzable without panic
            for t in d.reg_types() {
                let _ = GreedyK::new().saturation(&d, t);
            }
        }
    }

    #[test]
    fn vliw_target_generates_valid_flow_latencies() {
        let cfg = RandomDagConfig::sized(20, 99);
        let d = random_ddg(&cfg, Target::vliw());
        assert!(d.is_acyclic());
    }

    #[test]
    fn scales_to_larger_sizes() {
        let cfg = RandomDagConfig::sized(60, 5);
        let d = random_ddg(&cfg, Target::superscalar());
        assert_eq!(d.num_ops(), 61);
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT);
        assert!(rs.saturation <= d.values(RegType::FLOAT).len());
    }
}
