//! # rs-kernels — the experiment corpus
//!
//! The paper evaluates on "some scientific codes extracted from SpecFP,
//! whetstone, livermore and linpack … simply some loop bodies (excluding
//! branches)". The original DDG extractions are not available, so this
//! crate models the classic kernels' loop bodies by hand — same operation
//! mix (long-latency loads, FP multiply/add chains, address arithmetic),
//! same sizes (tens of operations), same value structure (fan-out loads,
//! reductions, stencils) — and complements them with a seeded random
//! layered-DAG generator for the breadth sweeps.
//!
//! Every builder takes the [`Target`] so the same kernel can be analysed
//! under superscalar and VLIW delay models.

#![forbid(unsafe_code)]

pub mod figure2;
pub mod linpack;
pub mod livermore;
pub mod random;
pub mod specfp;
pub mod whetstone;

use rs_core::model::{Ddg, Target};

/// A named kernel of the corpus.
pub struct Kernel {
    /// Short identifier, e.g. `"lll1"`.
    pub name: &'static str,
    /// One-line description of the modelled loop body.
    pub description: &'static str,
    /// DDG builder.
    pub build: fn(Target) -> Ddg,
}

/// The full named corpus (Livermore + LINPACK + whetstone + SpecFP-like).
pub fn corpus() -> Vec<Kernel> {
    vec![
        Kernel {
            name: "lll1",
            description: "Livermore loop 1: hydro fragment x[k]=q+y[k]*(r*z[k+10]+t*z[k+11])",
            build: livermore::lll1_hydro,
        },
        Kernel {
            name: "lll2",
            description: "Livermore loop 2: ICCG inner body (reduction of products)",
            build: livermore::lll2_iccg,
        },
        Kernel {
            name: "lll3",
            description: "Livermore loop 3: inner product q += z[k]*x[k] (unrolled x4)",
            build: livermore::lll3_inner_product,
        },
        Kernel {
            name: "lll5",
            description: "Livermore loop 5: tri-diagonal elimination x[i]=z[i]*(y[i]-x[i-1])",
            build: livermore::lll5_tridiag,
        },
        Kernel {
            name: "lll7",
            description: "Livermore loop 7: equation of state fragment (wide FMA tree)",
            build: livermore::lll7_state,
        },
        Kernel {
            name: "lll9",
            description: "Livermore loop 9: integrate predictors (wide dot product)",
            build: livermore::lll9_predictors,
        },
        Kernel {
            name: "lll11",
            description: "Livermore loop 11: first sum (serial prefix recurrence)",
            build: livermore::lll11_first_sum,
        },
        Kernel {
            name: "lll12",
            description: "Livermore loop 12: first difference (shared loads)",
            build: livermore::lll12_first_diff,
        },
        Kernel {
            name: "daxpy",
            description: "LINPACK daxpy: dy[i] += da*dx[i] (unrolled x4)",
            build: linpack::daxpy,
        },
        Kernel {
            name: "ddot",
            description: "LINPACK ddot: sum += dx[i]*dy[i] (unrolled x4)",
            build: linpack::ddot,
        },
        Kernel {
            name: "dscal",
            description: "LINPACK dscal: dx[i] = da*dx[i] (unrolled x4)",
            build: linpack::dscal,
        },
        Kernel {
            name: "whet_p3",
            description: "Whetstone module 3: array-element arithmetic cycle",
            build: whetstone::p3_array,
        },
        Kernel {
            name: "whet_p8",
            description: "Whetstone module 8: procedure call body (mul/div chain)",
            build: whetstone::p8_proc,
        },
        Kernel {
            name: "tomcatv",
            description: "SpecFP-like tomcatv mesh stencil fragment",
            build: specfp::tomcatv_stencil,
        },
        Kernel {
            name: "swim",
            description: "SpecFP-like swim shallow-water update fragment",
            build: specfp::swim_update,
        },
        Kernel {
            name: "fppp",
            description: "SpecFP-like fpppp two-electron fragment (deep FP dependence chain)",
            build: specfp::fppp_chain,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::heuristic::GreedyK;
    use rs_core::model::RegType;

    #[test]
    fn corpus_builds_on_both_targets() {
        for k in corpus() {
            for target in [Target::superscalar(), Target::vliw()] {
                let d = (k.build)(target);
                assert!(d.is_acyclic(), "{} must be a DAG", k.name);
                assert!(
                    d.num_ops() >= 8,
                    "{} too small ({} ops)",
                    k.name,
                    d.num_ops()
                );
                assert!(
                    !d.values(RegType::FLOAT).is_empty() || !d.values(RegType::INT).is_empty(),
                    "{} has no register values",
                    k.name
                );
            }
        }
    }

    #[test]
    fn corpus_has_nontrivial_saturation() {
        let g = GreedyK::new();
        let mut nontrivial = 0;
        for k in corpus() {
            let d = (k.build)(Target::superscalar());
            for t in d.reg_types() {
                if g.saturation(&d, t).saturation >= 3 {
                    nontrivial += 1;
                }
            }
        }
        assert!(
            nontrivial >= 8,
            "expected most kernels to exert register pressure, got {nontrivial}"
        );
    }

    #[test]
    fn corpus_names_unique() {
        let names: Vec<_> = corpus().iter().map(|k| k.name).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }
}
