//! LINPACK BLAS-1 loop bodies (daxpy / ddot / dscal), unrolled by four —
//! the form compilers actually schedule.

use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};

const F: RegType = RegType::FLOAT;
const I: RegType = RegType::INT;

/// `dy[i] = dy[i] + da * dx[i]`, unrolled x4, with address updates.
pub fn daxpy(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let da = b.op("da", OpClass::Copy, Some(F));
    let ix = b.op("ix", OpClass::IntAlu, Some(I));
    let iy = b.op("iy", OpClass::IntAlu, Some(I));
    for j in 0..4 {
        let ax = b.op(format!("&dx[i+{j}]"), OpClass::Addr, Some(I));
        let ay = b.op(format!("&dy[i+{j}]"), OpClass::Addr, Some(I));
        b.flow(ix, ax, 1, I);
        b.flow(iy, ay, 1, I);
        let x = b.op(format!("load dx[i+{j}]"), OpClass::Load, Some(F));
        let y = b.op(format!("load dy[i+{j}]"), OpClass::Load, Some(F));
        b.serial(ax, x, 1);
        b.serial(ay, y, 1);
        let m = b.op(format!("da*dx{j}"), OpClass::FloatMul, Some(F));
        b.flow(da, m, 1, F);
        b.flow(x, m, 4, F);
        let s = b.op(format!("dy{j}+m{j}"), OpClass::FloatAlu, Some(F));
        b.flow(y, s, 4, F);
        b.flow(m, s, 4, F);
        let st = b.op(format!("store dy[i+{j}]"), OpClass::Store, None);
        b.flow(s, st, 3, F);
        b.flow(ay, st, 1, I);
    }
    b.finish()
}

/// `dtemp += dx[i] * dy[i]`, unrolled x4 with a partial-sum tree.
pub fn ddot(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let mut prods = Vec::new();
    for j in 0..4 {
        let x = b.op(format!("load dx[i+{j}]"), OpClass::Load, Some(F));
        let y = b.op(format!("load dy[i+{j}]"), OpClass::Load, Some(F));
        let m = b.op(format!("x{j}*y{j}"), OpClass::FloatMul, Some(F));
        b.flow(x, m, 4, F);
        b.flow(y, m, 4, F);
        prods.push(m);
    }
    let acc = b.op("dtemp", OpClass::Copy, Some(F));
    let s01 = b.op("p0+p1", OpClass::FloatAlu, Some(F));
    b.flow(prods[0], s01, 4, F);
    b.flow(prods[1], s01, 4, F);
    let s23 = b.op("p2+p3", OpClass::FloatAlu, Some(F));
    b.flow(prods[2], s23, 4, F);
    b.flow(prods[3], s23, 4, F);
    let tot = b.op("s01+s23", OpClass::FloatAlu, Some(F));
    b.flow(s01, tot, 3, F);
    b.flow(s23, tot, 3, F);
    let upd = b.op("dtemp+tot", OpClass::FloatAlu, Some(F));
    b.flow(acc, upd, 1, F);
    b.flow(tot, upd, 3, F);
    b.finish()
}

/// `dx[i] = da * dx[i]`, unrolled x4 — short independent def-use chains,
/// the easily-reducible end of the corpus.
pub fn dscal(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let da = b.op("da", OpClass::Copy, Some(F));
    for j in 0..4 {
        let x = b.op(format!("load dx[i+{j}]"), OpClass::Load, Some(F));
        let m = b.op(format!("da*x{j}"), OpClass::FloatMul, Some(F));
        b.flow(da, m, 1, F);
        b.flow(x, m, 4, F);
        let st = b.op(format!("store dx[i+{j}]"), OpClass::Store, None);
        b.flow(m, st, 3, F);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::heuristic::GreedyK;
    use rs_core::reduce::Reducer;

    #[test]
    fn daxpy_has_mixed_pressure() {
        let d = daxpy(Target::superscalar());
        let g = GreedyK::new();
        let f = g.saturation(&d, RegType::FLOAT).saturation;
        let i = g.saturation(&d, RegType::INT).saturation;
        assert!(f >= 6, "float pressure {f}");
        assert!(i >= 2, "int pressure {i}");
    }

    #[test]
    fn ddot_all_loads_alive() {
        let d = ddot(Target::superscalar());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 8, "got {rs}");
    }

    #[test]
    fn dscal_reduces_cleanly() {
        let mut d = dscal(Target::superscalar());
        let before = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(before >= 4);
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 3);
        assert!(out.fits(), "{:?}", out);
    }
}
