//! The paper's Figure 2 example DAG.
//!
//! Four values `a, b, c, d`: `a` is long-lived (its single use is 17 cycles
//! away), `b, c, d` are short-lived (one cycle to their uses). All four can
//! be scheduled to be simultaneously alive, so `RS = 4`:
//!
//! - **Part (a)** — the initial DAG: if the processor has ≥ 4 registers the
//!   RS analysis leaves it untouched.
//! - **Part (b)** — a register-*minimization* approach chains `b, c, d`
//!   under `a`'s 17-cycle shadow (zero critical-path cost), restricting the
//!   DAG to 2 registers *regardless of how many exist*.
//! - **Part (c)** — RS *reduction* with 3 available registers adds a single
//!   serialization, leaving the scheduler free to use 1, 2 or 3 registers.

use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};
use rs_graph::NodeId;

/// Node handles of the Figure 2 DAG.
#[derive(Clone, Copy, Debug)]
pub struct Figure2 {
    /// The long-lived value (latency 17 to its use).
    pub a: NodeId,
    /// Short-lived value.
    pub b: NodeId,
    /// Short-lived value.
    pub c: NodeId,
    /// Short-lived value.
    pub d: NodeId,
}

/// Builds the Figure 2(a) DAG. Register type is FLOAT.
pub fn figure2(target: Target) -> (Ddg, Figure2) {
    let mut bld = DdgBuilder::new(target);
    let a = bld.op("a", OpClass::Load, Some(RegType::FLOAT));
    let ua = bld.op("use a", OpClass::Store, None);
    bld.flow(a, ua, 17, RegType::FLOAT);
    let mut short = Vec::new();
    for name in ["b", "c", "d"] {
        let v = bld.op(name, OpClass::IntAlu, Some(RegType::FLOAT));
        let u = bld.op(format!("use {name}"), OpClass::Store, None);
        bld.flow(v, u, 1, RegType::FLOAT);
        short.push(v);
    }
    (
        bld.finish(),
        Figure2 {
            a,
            b: short[0],
            c: short[1],
            d: short[2],
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::exact::ExactRs;
    use rs_core::heuristic::GreedyK;
    use rs_core::minimize::minimize_register_need;
    use rs_core::reduce::{ReduceOutcome, Reducer};

    #[test]
    fn saturation_is_four() {
        let (d, _) = figure2(Target::superscalar());
        assert_eq!(GreedyK::new().saturation(&d, RegType::FLOAT).saturation, 4);
        let e = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(e.proven_optimal);
        assert_eq!(e.saturation, 4);
    }

    #[test]
    fn four_registers_leave_dag_untouched() {
        let (mut d, _) = figure2(Target::superscalar());
        let edges = d.graph().edge_count();
        let out = Reducer::new().reduce(&mut d, RegType::FLOAT, 4);
        assert!(matches!(out, ReduceOutcome::AlreadyFits { rs: 4 }));
        assert_eq!(d.graph().edge_count(), edges);
    }

    #[test]
    fn three_registers_need_fewer_arcs_than_minimization() {
        let (mut reduced, _) = figure2(Target::superscalar());
        let out = Reducer::new().reduce(&mut reduced, RegType::FLOAT, 3);
        assert!(out.fits());
        let arcs_reduction = out.added_arcs().len();
        assert_eq!(
            out.ilp_loss(),
            0,
            "the 17-cycle shadow absorbs the serialization"
        );

        let (mut minimized, _) = figure2(Target::superscalar());
        let m = minimize_register_need(&mut minimized, RegType::FLOAT);
        assert!(
            m.rs_after <= 2,
            "minimization drives the need to ~2: {:?}",
            m.rs_after
        );
        assert!(
            m.added_arcs.len() > arcs_reduction,
            "minimization arcs {} vs reduction arcs {}",
            m.added_arcs.len(),
            arcs_reduction
        );
        // and the reduced DAG retains more freedom: saturation 3 vs ~2
        let rs_red = ExactRs::new()
            .saturation(&reduced, RegType::FLOAT)
            .saturation;
        let rs_min = ExactRs::new()
            .saturation(&minimized, RegType::FLOAT)
            .saturation;
        assert!(
            rs_red > rs_min,
            "reduction {rs_red} vs minimization {rs_min}"
        );
        assert_eq!(rs_red, 3);
    }
}
