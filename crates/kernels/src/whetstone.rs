//! Whetstone benchmark module bodies.

use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};

const F: RegType = RegType::FLOAT;

/// Whetstone module 3 — array-element arithmetic:
/// ```text
/// e1[1] = (e1[1] + e1[2] + e1[3] - e1[4]) * t
/// e1[2] = (e1[1] + e1[2] - e1[3] + e1[4]) * t
/// e1[3] = (e1[1] - e1[2] + e1[3] + e1[4]) * t
/// e1[4] = (-e1[1] + e1[2] + e1[3] + e1[4]) * t
/// ```
/// Each statement recombines the freshly computed elements — a dense
/// dependence web with true recurrences.
pub fn p3_array(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let t = b.op("t", OpClass::Copy, Some(F));
    let mut e: Vec<_> = (1..=4)
        .map(|i| b.op(format!("load e1[{i}]"), OpClass::Load, Some(F)))
        .collect();
    for stmt in 0..4 {
        // three adds/subs folding the four current elements
        let s1 = b.op(format!("st{stmt}.s1"), OpClass::FloatAlu, Some(F));
        b.flow(e[0], s1, lat(&b, e[0]), F);
        b.flow(e[1], s1, lat(&b, e[1]), F);
        let s2 = b.op(format!("st{stmt}.s2"), OpClass::FloatAlu, Some(F));
        b.flow(s1, s2, 3, F);
        b.flow(e[2], s2, lat(&b, e[2]), F);
        let s3 = b.op(format!("st{stmt}.s3"), OpClass::FloatAlu, Some(F));
        b.flow(s2, s3, 3, F);
        b.flow(e[3], s3, lat(&b, e[3]), F);
        let m = b.op(format!("st{stmt}.mul_t"), OpClass::FloatMul, Some(F));
        b.flow(s3, m, 3, F);
        b.flow(t, m, 1, F);
        e[stmt] = m; // the statement redefines one element
    }
    // final stores of the updated elements
    for (i, &v) in e.iter().enumerate() {
        let st = b.op(format!("store e1[{}]", i + 1), OpClass::Store, None);
        b.flow(v, st, 4, F);
    }
    b.finish()
}

fn lat(b: &DdgBuilder, _n: rs_graph::NodeId) -> i64 {
    // loads deliver in 4, recomputed elements in 4 (mul latency)
    let _ = b;
    4
}

/// Whetstone module 8 — procedure body `p(x, y)`:
/// `x1 = (x + y) * t; y1 = (x1 + y) * t; x = (y1 + x) / t2 …` —
/// a divide-heavy serial chain with a couple of parallel side values.
pub fn p8_proc(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let x = b.op("x", OpClass::Copy, Some(F));
    let y = b.op("y", OpClass::Copy, Some(F));
    let t = b.op("t", OpClass::Copy, Some(F));
    let t2 = b.op("t2", OpClass::Copy, Some(F));
    let s1 = b.op("x+y", OpClass::FloatAlu, Some(F));
    b.flow(x, s1, 1, F);
    b.flow(y, s1, 1, F);
    let x1 = b.op("(x+y)*t", OpClass::FloatMul, Some(F));
    b.flow(s1, x1, 3, F);
    b.flow(t, x1, 1, F);
    let s2 = b.op("x1+y", OpClass::FloatAlu, Some(F));
    b.flow(x1, s2, 4, F);
    b.flow(y, s2, 1, F);
    let y1 = b.op("(x1+y)*t", OpClass::FloatMul, Some(F));
    b.flow(s2, y1, 3, F);
    b.flow(t, y1, 1, F);
    let s3 = b.op("y1+x", OpClass::FloatAlu, Some(F));
    b.flow(y1, s3, 4, F);
    b.flow(x, s3, 1, F);
    let xd = b.op("(y1+x)/t2", OpClass::FloatDiv, Some(F));
    b.flow(s3, xd, 3, F);
    b.flow(t2, xd, 1, F);
    let yd = b.op("(x1*y1)/t2", OpClass::FloatDiv, Some(F));
    let m = b.op("x1*y1", OpClass::FloatMul, Some(F));
    b.flow(x1, m, 4, F);
    b.flow(y1, m, 4, F);
    b.flow(m, yd, 4, F);
    b.flow(t2, yd, 1, F);
    let stx = b.op("store x", OpClass::Store, None);
    b.flow(xd, stx, 17, F);
    let sty = b.op("store y", OpClass::Store, None);
    b.flow(yd, sty, 17, F);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::heuristic::GreedyK;

    #[test]
    fn p3_is_a_dense_web() {
        let d = p3_array(Target::superscalar());
        assert!(d.is_acyclic());
        assert!(d.num_ops() >= 20);
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 4, "got {rs}");
    }

    #[test]
    fn p8_divide_chain_builds() {
        let d = p8_proc(Target::superscalar());
        assert!(d.is_acyclic());
        // the two 17-cycle divides dominate the critical path
        assert!(d.critical_path() >= 17 + 17);
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 4, "got {rs}");
    }
}
