//! Livermore loop bodies (FORTRAN kernels from the classic LFK suite),
//! modelled as DDGs: loads for array reads, FP arithmetic for the
//! expressions, integer address arithmetic, stores for array writes.

use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};

const F: RegType = RegType::FLOAT;
const I: RegType = RegType::INT;

/// Livermore loop 1 — hydro fragment:
/// `x[k] = q + y[k] * (r * z[k+10] + t * z[k+11])`.
pub fn lll1_hydro(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    // address arithmetic
    let k = b.op("k = i*8", OpClass::IntAlu, Some(I));
    let a_y = b.op("&y[k]", OpClass::Addr, Some(I));
    let a_z10 = b.op("&z[k+10]", OpClass::Addr, Some(I));
    let a_z11 = b.op("&z[k+11]", OpClass::Addr, Some(I));
    let a_x = b.op("&x[k]", OpClass::Addr, Some(I));
    b.flow(k, a_y, 1, I);
    b.flow(k, a_z10, 1, I);
    b.flow(k, a_z11, 1, I);
    b.flow(k, a_x, 1, I);
    // loads
    let y = b.op("load y[k]", OpClass::Load, Some(F));
    let z10 = b.op("load z[k+10]", OpClass::Load, Some(F));
    let z11 = b.op("load z[k+11]", OpClass::Load, Some(F));
    b.serial(a_y, y, 1);
    b.serial(a_z10, z10, 1);
    b.serial(a_z11, z11, 1);
    // loop-invariant scalars live in registers: modelled as copies
    let q = b.op("q", OpClass::Copy, Some(F));
    let r = b.op("r", OpClass::Copy, Some(F));
    let t = b.op("t", OpClass::Copy, Some(F));
    // r*z[k+10]
    let m1 = b.op("r*z10", OpClass::FloatMul, Some(F));
    b.flow(r, m1, 1, F);
    b.flow(z10, m1, 4, F);
    // t*z[k+11]
    let m2 = b.op("t*z11", OpClass::FloatMul, Some(F));
    b.flow(t, m2, 1, F);
    b.flow(z11, m2, 4, F);
    // sum and outer multiply-add
    let s1 = b.op("m1+m2", OpClass::FloatAlu, Some(F));
    b.flow(m1, s1, 4, F);
    b.flow(m2, s1, 4, F);
    let m3 = b.op("y*s1", OpClass::FloatMul, Some(F));
    b.flow(y, m3, 4, F);
    b.flow(s1, m3, 3, F);
    let s2 = b.op("q+m3", OpClass::FloatAlu, Some(F));
    b.flow(q, s2, 1, F);
    b.flow(m3, s2, 4, F);
    // store
    let st = b.op("store x[k]", OpClass::Store, None);
    b.flow(s2, st, 3, F);
    b.flow(a_x, st, 1, I);
    b.finish()
}

/// Livermore loop 2 — ICCG inner body, a short reduction of products:
/// `q -= x[k]*v[k] + x[k+1]*v[k+1]` style fragment.
pub fn lll2_iccg(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let base = b.op("addr base", OpClass::Addr, Some(I));
    let mut partials = Vec::new();
    for j in 0..3 {
        let ax = b.op(format!("&x[k+{j}]"), OpClass::Addr, Some(I));
        b.flow(base, ax, 1, I);
        let x = b.op(format!("load x[k+{j}]"), OpClass::Load, Some(F));
        let v = b.op(format!("load v[k+{j}]"), OpClass::Load, Some(F));
        b.serial(ax, x, 1);
        b.serial(ax, v, 1);
        let m = b.op(format!("x{j}*v{j}"), OpClass::FloatMul, Some(F));
        b.flow(x, m, 4, F);
        b.flow(v, m, 4, F);
        partials.push(m);
    }
    let q0 = b.op("q", OpClass::Copy, Some(F));
    let s1 = b.op("p0+p1", OpClass::FloatAlu, Some(F));
    b.flow(partials[0], s1, 4, F);
    b.flow(partials[1], s1, 4, F);
    let s2 = b.op("s1+p2", OpClass::FloatAlu, Some(F));
    b.flow(s1, s2, 3, F);
    b.flow(partials[2], s2, 4, F);
    let q1 = b.op("q - s2", OpClass::FloatAlu, Some(F));
    b.flow(q0, q1, 1, F);
    b.flow(s2, q1, 3, F);
    b.finish()
}

/// Livermore loop 3 — inner product, unrolled by four:
/// `q += z[k]*x[k]` with a partial-sum tree (the classic ILP rewrite).
pub fn lll3_inner_product(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let mut products = Vec::new();
    for j in 0..4 {
        let z = b.op(format!("load z[k+{j}]"), OpClass::Load, Some(F));
        let x = b.op(format!("load x[k+{j}]"), OpClass::Load, Some(F));
        let m = b.op(format!("z{j}*x{j}"), OpClass::FloatMul, Some(F));
        b.flow(z, m, 4, F);
        b.flow(x, m, 4, F);
        products.push(m);
    }
    let s01 = b.op("p0+p1", OpClass::FloatAlu, Some(F));
    b.flow(products[0], s01, 4, F);
    b.flow(products[1], s01, 4, F);
    let s23 = b.op("p2+p3", OpClass::FloatAlu, Some(F));
    b.flow(products[2], s23, 4, F);
    b.flow(products[3], s23, 4, F);
    let q0 = b.op("q", OpClass::Copy, Some(F));
    let s = b.op("s01+s23", OpClass::FloatAlu, Some(F));
    b.flow(s01, s, 3, F);
    b.flow(s23, s, 3, F);
    let q1 = b.op("q+s", OpClass::FloatAlu, Some(F));
    b.flow(q0, q1, 1, F);
    b.flow(s, q1, 3, F);
    b.finish()
}

/// Livermore loop 5 — tri-diagonal elimination:
/// `x[i] = z[i] * (y[i] - x[i-1])` — a recurrence: tight serial chain next
/// to parallel loads, the low-saturation end of the corpus.
pub fn lll5_tridiag(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let xprev = b.op("x[i-1]", OpClass::Copy, Some(F));
    let mut carry = xprev;
    for j in 0..3 {
        let y = b.op(format!("load y[{j}]"), OpClass::Load, Some(F));
        let z = b.op(format!("load z[{j}]"), OpClass::Load, Some(F));
        let sub = b.op(format!("y{j}-x"), OpClass::FloatAlu, Some(F));
        b.flow(y, sub, 4, F);
        b.flow(carry, sub, if j == 0 { 1 } else { 3 }, F);
        let mul = b.op(format!("z{j}*sub{j}"), OpClass::FloatMul, Some(F));
        b.flow(z, mul, 4, F);
        b.flow(sub, mul, 3, F);
        let st = b.op(format!("store x[{j}]"), OpClass::Store, None);
        b.flow(mul, st, 4, F);
        carry = mul;
    }
    b.finish()
}

/// Livermore loop 7 — equation of state fragment:
/// `x[k] = u[k] + r*(z[k] + r*y[k]) + t*(u[k+3] + r*(u[k+2] + r*u[k+1])
///        + t*(u[k+6] + r*(u[k+5] + r*u[k+4])))`
/// — the big, wide one: nine loads and a deep FMA tree.
pub fn lll7_state(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let loads: Vec<_> = ["u0", "z", "y", "u3", "u2", "u1", "u6", "u5", "u4"]
        .iter()
        .map(|n| b.op(format!("load {n}"), OpClass::Load, Some(F)))
        .collect();
    let r = b.op("r", OpClass::Copy, Some(F));
    let t = b.op("t", OpClass::Copy, Some(F));
    // helper: a + r*b
    let fma = |b: &mut DdgBuilder, name: &str, a_val, b_val, scale| {
        let m = b.op(format!("{name}.mul"), OpClass::FloatMul, Some(F));
        b.flow(scale, m, 1, F);
        b.flow(b_val, m, 4, F);
        let s = b.op(format!("{name}.add"), OpClass::FloatAlu, Some(F));
        b.flow(a_val, s, 4, F);
        b.flow(m, s, 4, F);
        s
    };
    let inner1 = fma(&mut b, "z+r*y", loads[1], loads[2], r);
    let term1 = fma(&mut b, "u0+r*(...)", loads[0], inner1, r);
    let inner2 = fma(&mut b, "u2+r*u1", loads[4], loads[5], r);
    let mid = fma(&mut b, "u3+r*(...)", loads[3], inner2, r);
    let inner3 = fma(&mut b, "u5+r*u4", loads[7], loads[8], r);
    let last = fma(&mut b, "u6+r*(...)", loads[6], inner3, r);
    let tail = fma(&mut b, "mid+t*last", mid, last, t);
    let total = fma(&mut b, "term1+t*tail", term1, tail, t);
    let st = b.op("store x[k]", OpClass::Store, None);
    b.flow(total, st, 4, F);
    b.finish()
}

/// Livermore loop 9 — integrate predictors: a wide dot-product-like
/// combination of ten coefficient loads against one px row.
pub fn lll9_predictors(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let dm: Vec<_> = (0..5)
        .map(|i| b.op(format!("dm{i}"), OpClass::Copy, Some(F)))
        .collect();
    let px: Vec<_> = (0..5)
        .map(|i| b.op(format!("load px[{i}]"), OpClass::Load, Some(F)))
        .collect();
    let mut terms = Vec::new();
    for i in 0..5 {
        let m = b.op(format!("dm{i}*px{i}"), OpClass::FloatMul, Some(F));
        b.flow(dm[i], m, 1, F);
        b.flow(px[i], m, 4, F);
        terms.push(m);
    }
    // balanced reduction tree
    while terms.len() > 1 {
        let mut next = Vec::new();
        for pair in terms.chunks(2) {
            if pair.len() == 2 {
                let s = b.op("sum", OpClass::FloatAlu, Some(F));
                b.flow(pair[0], s, 4, F);
                b.flow(pair[1], s, 4, F);
                next.push(s);
            } else {
                next.push(pair[0]);
            }
        }
        terms = next;
    }
    let st = b.op("store px[0]", OpClass::Store, None);
    b.flow(terms[0], st, 3, F);
    b.finish()
}

/// Livermore loop 11 — first sum (prefix sum): the fully serial recurrence
/// `x[k] = x[k-1] + y[k]`, unrolled x4. The anti-parallel extreme of the
/// corpus: RS stays small no matter the schedule.
pub fn lll11_first_sum(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let mut carry = b.op("x[k-1]", OpClass::Copy, Some(F));
    for j in 0..4 {
        let y = b.op(format!("load y[{j}]"), OpClass::Load, Some(F));
        let s = b.op(format!("x{j}"), OpClass::FloatAlu, Some(F));
        b.flow(carry, s, if j == 0 { 1 } else { 3 }, F);
        b.flow(y, s, 4, F);
        let st = b.op(format!("store x[{j}]"), OpClass::Store, None);
        b.flow(s, st, 3, F);
        carry = s;
    }
    b.finish()
}

/// Livermore loop 12 — first difference: `x[k] = y[k+1] − y[k]`, unrolled
/// x4 with shared loads between adjacent differences.
pub fn lll12_first_diff(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let loads: Vec<_> = (0..5)
        .map(|j| b.op(format!("load y[{j}]"), OpClass::Load, Some(F)))
        .collect();
    for j in 0..4 {
        let d = b.op(format!("y{}−y{}", j + 1, j), OpClass::FloatAlu, Some(F));
        b.flow(loads[j + 1], d, 4, F);
        b.flow(loads[j], d, 4, F);
        let st = b.op(format!("store x[{j}]"), OpClass::Store, None);
        b.flow(d, st, 3, F);
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::exact::ExactRs;
    use rs_core::heuristic::GreedyK;

    #[test]
    fn lll1_structure() {
        let d = lll1_hydro(Target::superscalar());
        assert!(d.is_acyclic());
        // y, z10, z11, q, r, t, m1, m2, s1, m3, s2
        assert_eq!(d.values(RegType::FLOAT).len(), 11);
        assert_eq!(d.values(RegType::INT).len(), 5);
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT);
        assert!(rs.saturation >= 4, "float RS* = {}", rs.saturation);
    }

    #[test]
    fn lll3_saturation_bounded_by_values() {
        let d = lll3_inner_product(Target::superscalar());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT);
        assert!(rs.saturation <= d.values(RegType::FLOAT).len());
        assert!(
            rs.saturation >= 8,
            "all loads can be alive: {}",
            rs.saturation
        );
    }

    #[test]
    fn lll5_recurrence_has_low_saturation() {
        let d = lll5_tridiag(Target::superscalar());
        let wide = lll7_state(Target::superscalar());
        let rs5 = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        let rs7 = GreedyK::new().saturation(&wide, RegType::FLOAT).saturation;
        assert!(rs5 < rs7, "recurrence ({rs5}) vs wide tree ({rs7})");
    }

    #[test]
    fn lll9_wide_dot_product() {
        let d = lll9_predictors(Target::superscalar());
        assert!(d.is_acyclic());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 10, "all 10 inputs can be alive: {rs}");
    }

    #[test]
    fn lll11_recurrence_is_narrow() {
        let d = lll11_first_sum(Target::superscalar());
        let rs = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(rs.proven_optimal);
        // the serial carry bounds the saturation well below the value count
        assert!(rs.saturation < d.values(RegType::FLOAT).len());
    }

    #[test]
    fn lll12_shared_loads_raise_pressure() {
        let d = lll12_first_diff(Target::superscalar());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 5, "all five shared loads alive: {rs}");
    }

    #[test]
    fn lll2_exact_vs_heuristic_near_optimal() {
        let d = lll2_iccg(Target::superscalar());
        let h = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        let e = ExactRs::new().saturation(&d, RegType::FLOAT);
        assert!(e.proven_optimal);
        assert!(e.saturation >= h);
        assert!(
            e.saturation - h <= 1,
            "paper: error ≤ 1 register (got {h} vs {})",
            e.saturation
        );
    }
}
