//! SpecFP-flavoured loop bodies: stencil, shallow-water update, deep
//! dependence chain — the shapes the floating-point Spec codes exercise.

use rs_core::model::{Ddg, DdgBuilder, OpClass, RegType, Target};

const F: RegType = RegType::FLOAT;
const I: RegType = RegType::INT;

/// A tomcatv-like 5-point mesh stencil fragment:
/// `new = c0*p[i][j] + c1*(p[i-1][j] + p[i+1][j] + p[i][j-1] + p[i][j+1])`.
pub fn tomcatv_stencil(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let idx = b.op("i*stride+j", OpClass::IntMul, Some(I));
    let names = ["c", "n", "s", "w", "e"];
    let mut loads = Vec::new();
    for n in names {
        let a = b.op(format!("&p[{n}]"), OpClass::Addr, Some(I));
        b.flow(idx, a, 3, I);
        let l = b.op(format!("load p[{n}]"), OpClass::Load, Some(F));
        b.serial(a, l, 1);
        loads.push(l);
    }
    let c0 = b.op("c0", OpClass::Copy, Some(F));
    let c1 = b.op("c1", OpClass::Copy, Some(F));
    let s1 = b.op("n+s", OpClass::FloatAlu, Some(F));
    b.flow(loads[1], s1, 4, F);
    b.flow(loads[2], s1, 4, F);
    let s2 = b.op("w+e", OpClass::FloatAlu, Some(F));
    b.flow(loads[3], s2, 4, F);
    b.flow(loads[4], s2, 4, F);
    let s3 = b.op("(n+s)+(w+e)", OpClass::FloatAlu, Some(F));
    b.flow(s1, s3, 3, F);
    b.flow(s2, s3, 3, F);
    let m1 = b.op("c1*ring", OpClass::FloatMul, Some(F));
    b.flow(c1, m1, 1, F);
    b.flow(s3, m1, 3, F);
    let m0 = b.op("c0*center", OpClass::FloatMul, Some(F));
    b.flow(c0, m0, 1, F);
    b.flow(loads[0], m0, 4, F);
    let out = b.op("m0+m1", OpClass::FloatAlu, Some(F));
    b.flow(m0, out, 4, F);
    b.flow(m1, out, 4, F);
    let st = b.op("store new", OpClass::Store, None);
    b.flow(out, st, 3, F);
    b.flow(idx, st, 3, I);
    b.finish()
}

/// A swim-like shallow-water variable update: three coupled field updates
/// sharing operand loads — wide and store-heavy.
pub fn swim_update(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let loads: Vec<_> = ["u", "v", "p", "cu", "cv", "z", "h"]
        .iter()
        .map(|n| b.op(format!("load {n}"), OpClass::Load, Some(F)))
        .collect();
    let dt = b.op("tdts8", OpClass::Copy, Some(F));
    // unew = uold + tdts8*(z+z)*(cv+cv) - tdts8*(h-h)
    let zsum = b.op("z+z'", OpClass::FloatAlu, Some(F));
    b.flow(loads[5], zsum, 4, F);
    b.flow(loads[2], zsum, 4, F);
    let cvsum = b.op("cv+cv'", OpClass::FloatAlu, Some(F));
    b.flow(loads[4], cvsum, 4, F);
    b.flow(loads[3], cvsum, 4, F);
    let m1 = b.op("zsum*cvsum", OpClass::FloatMul, Some(F));
    b.flow(zsum, m1, 3, F);
    b.flow(cvsum, m1, 3, F);
    let m2 = b.op("tdts8*m1", OpClass::FloatMul, Some(F));
    b.flow(dt, m2, 1, F);
    b.flow(m1, m2, 4, F);
    let hdiff = b.op("h-h'", OpClass::FloatAlu, Some(F));
    b.flow(loads[6], hdiff, 4, F);
    b.flow(loads[2], hdiff, 4, F);
    let unew = b.op("u+m2-hdiff", OpClass::FloatAlu, Some(F));
    b.flow(loads[0], unew, 4, F);
    b.flow(m2, unew, 4, F);
    b.flow(hdiff, unew, 3, F);
    let stu = b.op("store unew", OpClass::Store, None);
    b.flow(unew, stu, 3, F);
    // vnew = vold - tdts8*(z)*(cu) + hdiff
    let m3 = b.op("z*cu", OpClass::FloatMul, Some(F));
    b.flow(loads[5], m3, 4, F);
    b.flow(loads[3], m3, 4, F);
    let m4 = b.op("tdts8*m3", OpClass::FloatMul, Some(F));
    b.flow(dt, m4, 1, F);
    b.flow(m3, m4, 4, F);
    let vnew = b.op("v-m4+hdiff", OpClass::FloatAlu, Some(F));
    b.flow(loads[1], vnew, 4, F);
    b.flow(m4, vnew, 4, F);
    b.flow(hdiff, vnew, 3, F);
    let stv = b.op("store vnew", OpClass::Store, None);
    b.flow(vnew, stv, 3, F);
    // pnew = pold - tdts8*(cu + cv)
    let cusum = b.op("cu+cv", OpClass::FloatAlu, Some(F));
    b.flow(loads[3], cusum, 4, F);
    b.flow(loads[4], cusum, 4, F);
    let m5 = b.op("tdts8*cusum", OpClass::FloatMul, Some(F));
    b.flow(dt, m5, 1, F);
    b.flow(cusum, m5, 3, F);
    let pnew = b.op("p-m5", OpClass::FloatAlu, Some(F));
    b.flow(loads[2], pnew, 4, F);
    b.flow(m5, pnew, 4, F);
    let stp = b.op("store pnew", OpClass::Store, None);
    b.flow(pnew, stp, 3, F);
    b.finish()
}

/// An fpppp-like fragment: a deep chain of dependent multiplies with a few
/// long-lived operands — high pressure *and* a long critical path.
pub fn fppp_chain(target: Target) -> Ddg {
    let mut b = DdgBuilder::new(target);
    let coeffs: Vec<_> = (0..4)
        .map(|i| b.op(format!("load c{i}"), OpClass::Load, Some(F)))
        .collect();
    let x = b.op("load x", OpClass::Load, Some(F));
    let mut acc = x;
    for (i, &c) in coeffs.iter().enumerate() {
        // Horner step: acc = acc*x + c — every coefficient stays live until
        // its step, stressing the register file.
        let m = b.op(format!("h{i}.mul"), OpClass::FloatMul, Some(F));
        b.flow(acc, m, 4, F);
        b.flow(x, m, 4, F);
        let s = b.op(format!("h{i}.add"), OpClass::FloatAlu, Some(F));
        b.flow(m, s, 4, F);
        b.flow(c, s, 4, F);
        acc = s;
    }
    let st = b.op("store poly", OpClass::Store, None);
    b.flow(acc, st, 3, F);
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::heuristic::GreedyK;

    #[test]
    fn stencil_mixes_types() {
        let d = tomcatv_stencil(Target::superscalar());
        assert!(!d.values(RegType::INT).is_empty());
        assert!(d.values(RegType::FLOAT).len() >= 10);
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 5, "got {rs}");
    }

    #[test]
    fn swim_is_wide() {
        let d = swim_update(Target::superscalar());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        assert!(rs >= 7, "got {rs}");
    }

    #[test]
    fn horner_keeps_coefficients_alive() {
        let d = fppp_chain(Target::superscalar());
        let rs = GreedyK::new().saturation(&d, RegType::FLOAT).saturation;
        // x + 4 coefficients + the running accumulator
        assert!(rs >= 5, "got {rs}");
    }
}
