//! Critical-path list scheduling under functional-unit constraints.
//!
//! Standard greedy list scheduling: at each cycle, ready operations are
//! issued in priority order while unit capacities and the issue width
//! allow. Priority is the longest path to the bottom node (critical-path
//! priority), the classic choice for acyclic scheduling.
//!
//! The bottom node `⊥` is virtual: it consumes no resources and issues as
//! soon as its dependences allow, so `σ(⊥)` *is* the makespan.

use crate::resources::{FuKind, Resources};
use rs_core::model::Ddg;
use rs_graph::paths::longest_to;
use rs_graph::NodeId;

/// A computed schedule.
#[derive(Clone, Debug)]
pub struct Schedule {
    /// Issue cycle per node (indexed by `NodeId::index`).
    pub sigma: Vec<i64>,
    /// Total schedule time `σ(⊥)`.
    pub makespan: i64,
}

/// The list scheduler.
#[derive(Clone, Debug)]
pub struct ListScheduler {
    /// Machine resources.
    pub resources: Resources,
}

impl ListScheduler {
    /// Creates a scheduler for the given machine.
    pub fn new(resources: Resources) -> Self {
        ListScheduler { resources }
    }

    /// Schedules the DDG. Panics if the graph is cyclic (the
    /// register-saturation passes guarantee acyclicity).
    pub fn schedule(&self, ddg: &Ddg) -> Schedule {
        let g = ddg.graph();
        let n = g.node_count();
        let bottom = ddg.bottom();
        let priority = longest_to(g, bottom);

        // earliest[v]: data-ready cycle given already-issued predecessors.
        let mut earliest: Vec<i64> = vec![0; n];
        let mut remaining_preds: Vec<usize> =
            (0..n).map(|i| g.in_degree(NodeId(i as u32))).collect();
        let mut scheduled: Vec<Option<i64>> = vec![None; n];
        let mut ready: Vec<NodeId> = g
            .node_ids()
            .filter(|&v| remaining_preds[v.index()] == 0)
            .collect();

        let mut cycle: i64 = 0;
        let mut done = 0usize;
        while done < n {
            // Issue as many ready ops as capacities allow this cycle.
            let mut width_left = self.resources.issue_width;
            let mut unit_left = [
                self.resources.capacity(FuKind::Memory),
                self.resources.capacity(FuKind::IntUnit),
                self.resources.capacity(FuKind::FloatUnit),
                self.resources.capacity(FuKind::Misc),
            ];
            let unit_idx = |k: FuKind| match k {
                FuKind::Memory => 0usize,
                FuKind::IntUnit => 1,
                FuKind::FloatUnit => 2,
                FuKind::Misc => 3,
            };

            // Priority order: longest path to ⊥ descending, id ascending.
            ready.sort_by_key(|&v| (-(priority[v.index()].unwrap_or(0)), v.index()));

            let mut issued_this_cycle: Vec<NodeId> = Vec::new();
            let mut i = 0;
            while i < ready.len() {
                let v = ready[i];
                if earliest[v.index()] > cycle {
                    i += 1;
                    continue;
                }
                let op = g.node(v);
                let is_bottom = op.is_bottom;
                let kind = FuKind::of(op.class);
                let fits = is_bottom || (width_left > 0 && unit_left[unit_idx(kind)] > 0);
                if fits {
                    if !is_bottom {
                        width_left -= 1;
                        unit_left[unit_idx(kind)] -= 1;
                    }
                    scheduled[v.index()] = Some(cycle);
                    issued_this_cycle.push(v);
                    ready.swap_remove(i);
                    done += 1;
                    // don't advance i: swap_remove replaced position i
                } else {
                    i += 1;
                }
            }

            // Release successors.
            for v in issued_this_cycle {
                for e in g.out_edges(v) {
                    let w = g.dst(e);
                    let ready_at = cycle + g.latency(e);
                    if ready_at > earliest[w.index()] {
                        earliest[w.index()] = ready_at;
                    }
                    remaining_preds[w.index()] -= 1;
                    if remaining_preds[w.index()] == 0 {
                        ready.push(w);
                    }
                }
            }

            if done < n {
                // Advance to the next interesting cycle: the minimum earliest
                // time among ready ops not issuable now, or cycle + 1.
                let next = ready
                    .iter()
                    .map(|&v| earliest[v.index()])
                    .filter(|&t| t > cycle)
                    .min();
                cycle = match next {
                    Some(t) if ready.iter().all(|&v| earliest[v.index()] > cycle) => t,
                    _ => cycle + 1,
                };
            }
        }

        let sigma: Vec<i64> = scheduled
            .into_iter()
            .map(|s| s.expect("all scheduled"))
            .collect();
        let makespan = sigma[bottom.index()];
        Schedule { sigma, makespan }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rs_core::lifetime::is_valid_schedule;
    use rs_core::model::{DdgBuilder, OpClass, RegType, Target};

    fn chains(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..k {
            let v = b.op(format!("l{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        b.finish()
    }

    #[test]
    fn schedule_is_valid_and_tight() {
        let d = chains(2);
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
        assert!(is_valid_schedule(&d, &sched.sigma));
        // 2 loads issue at cycle 0 (2 memory ports), stores at 4, ⊥ at 5
        assert_eq!(sched.makespan, 5);
    }

    #[test]
    fn resource_pressure_stretches_makespan() {
        let d = chains(4);
        let wide = ListScheduler::new(Resources::wide_issue()).schedule(&d);
        let narrow = ListScheduler::new(Resources::single_issue()).schedule(&d);
        assert!(is_valid_schedule(&d, &wide.sigma));
        assert!(is_valid_schedule(&d, &narrow.sigma));
        assert!(narrow.makespan > wide.makespan);
        // single issue: 8 ops, ≥ 8 cycles
        assert!(narrow.makespan >= 8);
    }

    #[test]
    fn makespan_at_least_critical_path() {
        let d = chains(3);
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
        assert!(sched.makespan >= d.critical_path());
    }

    #[test]
    fn serialization_arcs_respected() {
        let mut d = chains(2);
        // force chain 1 after chain 0's store
        let s0 = rs_graph::NodeId(1);
        let l1 = rs_graph::NodeId(2);
        d.add_serial(s0, l1, 1);
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
        assert!(is_valid_schedule(&d, &sched.sigma));
        assert!(sched.sigma[l1.index()] > sched.sigma[s0.index()]);
    }

    /// The produced schedule never violates per-cycle unit capacities or
    /// the issue width — checked against the schedule itself, not the
    /// scheduler's internal state.
    #[test]
    fn capacities_respected_every_cycle() {
        use rs_core::model::Ddg;
        use std::collections::HashMap;

        fn check(d: &Ddg, res: &Resources) {
            let sched = ListScheduler::new(res.clone()).schedule(d);
            assert!(is_valid_schedule(d, &sched.sigma));
            let mut per_cycle: HashMap<i64, (usize, [usize; 4])> = HashMap::new();
            for n in d.graph().node_ids() {
                let op = d.graph().node(n);
                if op.is_bottom {
                    continue;
                }
                let slot = per_cycle.entry(sched.sigma[n.index()]).or_default();
                slot.0 += 1;
                let k = match FuKind::of(op.class) {
                    FuKind::Memory => 0,
                    FuKind::IntUnit => 1,
                    FuKind::FloatUnit => 2,
                    FuKind::Misc => 3,
                };
                slot.1[k] += 1;
            }
            for (cycle, (total, units)) in per_cycle {
                assert!(total <= res.issue_width, "cycle {cycle}: {total} issued");
                assert!(units[0] <= res.memory, "cycle {cycle}: memory over");
                assert!(units[1] <= res.int_unit, "cycle {cycle}: int over");
                assert!(units[2] <= res.float_unit, "cycle {cycle}: float over");
                assert!(units[3] <= res.misc, "cycle {cycle}: misc over");
            }
        }

        for k in [4usize, 8, 12] {
            let d = chains(k);
            check(&d, &Resources::single_issue());
            check(&d, &Resources::four_issue());
            check(&d, &Resources::wide_issue());
        }
    }

    /// Critical-path priority: on a machine with one float unit, the op
    /// that starts the longest chain issues first.
    #[test]
    fn critical_chain_prioritized() {
        use rs_core::model::DdgBuilder;
        let mut b = DdgBuilder::new(Target::superscalar());
        // short chain: s1 -> st1 ; long chain: l1 -> l2 -> l3 -> st2
        let s1 = b.op("short", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st1 = b.op("st1", OpClass::Store, None);
        b.flow(s1, st1, 3, RegType::FLOAT);
        let l1 = b.op("long1", OpClass::FloatAlu, Some(RegType::FLOAT));
        let l2 = b.op("long2", OpClass::FloatAlu, Some(RegType::FLOAT));
        let l3 = b.op("long3", OpClass::FloatAlu, Some(RegType::FLOAT));
        let st2 = b.op("st2", OpClass::Store, None);
        b.flow(l1, l2, 3, RegType::FLOAT);
        b.flow(l2, l3, 3, RegType::FLOAT);
        b.flow(l3, st2, 3, RegType::FLOAT);
        let d = b.finish();
        let res = Resources {
            issue_width: 1,
            memory: 1,
            int_unit: 1,
            float_unit: 1,
            misc: 1,
        };
        let sched = ListScheduler::new(res).schedule(&d);
        assert!(
            sched.sigma[l1.index()] < sched.sigma[s1.index()],
            "the long chain's head must issue before the short one"
        );
    }

    #[test]
    fn bottom_consumes_no_slot() {
        // a single op: ⊥ must not compete for issue slots
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op("x", OpClass::IntAlu, Some(RegType::INT));
        let d = b.finish();
        let sched = ListScheduler::new(Resources::single_issue()).schedule(&d);
        assert_eq!(sched.makespan, 1); // x at 0, ⊥ at 1 (latency 1)
    }
}
