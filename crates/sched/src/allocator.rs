//! Interval register allocation (left-edge algorithm).
//!
//! Once a schedule is fixed, value lifetimes are intervals and the
//! interference graph is an interval graph, for which left-edge allocation
//! is optimal: it succeeds with `R` registers iff `RN_σ ≤ R`. This is the
//! final pipeline stage and the end-to-end witness that the saturation
//! pre-pass did its job — *zero spills by construction*.

use rs_core::lifetime::lifetime_intervals;
use rs_core::model::{Ddg, RegType};
use rs_graph::interval::Interval;
use rs_graph::NodeId;
use std::collections::BTreeMap;

/// Outcome of an allocation attempt.
#[derive(Clone, Debug)]
pub struct AllocationResult {
    /// Register index assigned to each value (spilled values absent).
    pub assignment: BTreeMap<NodeId, usize>,
    /// Values that did not fit in the budget (would require spill code).
    pub spilled: Vec<NodeId>,
    /// Number of registers actually used.
    pub registers_used: usize,
}

impl AllocationResult {
    /// Whether every value got a register.
    pub fn success(&self) -> bool {
        self.spilled.is_empty()
    }
}

/// The left-edge allocator.
#[derive(Clone, Debug, Default)]
pub struct RegisterAllocator;

impl RegisterAllocator {
    /// Creates the allocator.
    pub fn new() -> Self {
        RegisterAllocator
    }

    /// Allocates registers of type `t` for the given schedule within
    /// `budget` registers. Values whose lifetime is empty need no register.
    pub fn allocate(
        &self,
        ddg: &Ddg,
        t: RegType,
        sigma: &[i64],
        budget: usize,
    ) -> AllocationResult {
        let mut intervals: Vec<(NodeId, Interval)> = lifetime_intervals(ddg, t, sigma)
            .into_iter()
            .filter(|(_, iv)| !iv.is_empty())
            .collect();
        // Left-edge: sort by start.
        intervals.sort_by_key(|&(n, iv)| (iv.start, iv.end, n));

        let mut assignment: BTreeMap<NodeId, usize> = BTreeMap::new();
        let mut spilled = Vec::new();
        // free_at[r] = cycle after which register r is free (exclusive end
        // of its last interval).
        let mut free_at: Vec<i64> = Vec::new();
        let mut used = 0usize;

        for (node, iv) in intervals {
            // Find a register free at iv.start (half-open: (a, b] frees at b).
            let mut chosen = None;
            for (r, &f) in free_at.iter().enumerate() {
                if f <= iv.start {
                    chosen = Some(r);
                    break;
                }
            }
            match chosen {
                Some(r) => {
                    free_at[r] = iv.end;
                    assignment.insert(node, r);
                }
                None if free_at.len() < budget => {
                    let r = free_at.len();
                    free_at.push(iv.end);
                    assignment.insert(node, r);
                    used = used.max(r + 1);
                }
                None => spilled.push(node),
            }
        }
        AllocationResult {
            assignment,
            spilled,
            registers_used: free_at.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::list::ListScheduler;
    use crate::resources::Resources;
    use rs_core::lifetime::register_need;
    use rs_core::model::{DdgBuilder, OpClass, Target};
    use rs_core::reduce::Reducer;

    fn chains(k: usize) -> Ddg {
        let mut b = DdgBuilder::new(Target::superscalar());
        for i in 0..k {
            let v = b.op(format!("l{i}"), OpClass::Load, Some(RegType::FLOAT));
            let s = b.op(format!("s{i}"), OpClass::Store, None);
            b.flow(v, s, 4, RegType::FLOAT);
        }
        b.finish()
    }

    #[test]
    fn allocation_matches_register_need() {
        let d = chains(3);
        let sched = ListScheduler::new(Resources::wide_issue()).schedule(&d);
        let rn = register_need(&d, RegType::FLOAT, &sched.sigma);
        let alloc = RegisterAllocator::new().allocate(&d, RegType::FLOAT, &sched.sigma, rn);
        assert!(alloc.success(), "left-edge must fit within RN");
        assert_eq!(alloc.registers_used, rn);
        // one fewer register must spill
        let tight = RegisterAllocator::new().allocate(&d, RegType::FLOAT, &sched.sigma, rn - 1);
        assert!(!tight.success());
        assert_eq!(tight.spilled.len() + tight.assignment.len(), 3);
    }

    #[test]
    fn no_two_interfering_values_share_a_register() {
        let d = chains(4);
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
        let alloc = RegisterAllocator::new().allocate(&d, RegType::FLOAT, &sched.sigma, 16);
        assert!(alloc.success());
        let ivs = lifetime_intervals(&d, RegType::FLOAT, &sched.sigma);
        for (a, iva) in &ivs {
            for (b, ivb) in &ivs {
                if a != b && iva.interferes(ivb) {
                    assert_ne!(
                        alloc.assignment.get(a),
                        alloc.assignment.get(b),
                        "{:?} and {:?} interfere but share a register",
                        a,
                        b
                    );
                }
            }
        }
    }

    /// The paper's end-to-end promise: reduce RS to the budget, schedule
    /// freely, allocate with zero spills.
    #[test]
    fn end_to_end_no_spills_after_reduction() {
        for budget in [2usize, 3] {
            let mut d = chains(5);
            let out = Reducer::new().reduce(&mut d, RegType::FLOAT, budget);
            assert!(out.fits(), "budget {budget}");
            let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
            let alloc = RegisterAllocator::new().allocate(&d, RegType::FLOAT, &sched.sigma, budget);
            assert!(
                alloc.success(),
                "budget {budget}: spilled {:?}",
                alloc.spilled
            );
            assert!(alloc.registers_used <= budget);
        }
    }

    #[test]
    fn empty_lifetime_values_need_no_register() {
        // x's only reader issues at x's cycle +1 with superscalar delays:
        // interval (0, 1]: nonempty. To get an empty interval we need
        // δr(reader) < δw(writer) which superscalar forbids; so check the
        // zero-value case instead.
        let mut b = DdgBuilder::new(Target::superscalar());
        b.op("st", OpClass::Store, None);
        let d = b.finish();
        let sched = ListScheduler::new(Resources::four_issue()).schedule(&d);
        let alloc = RegisterAllocator::new().allocate(&d, RegType::FLOAT, &sched.sigma, 0);
        assert!(alloc.success());
        assert_eq!(alloc.registers_used, 0);
    }
}
