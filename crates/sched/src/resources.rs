//! Functional-unit resource model.
//!
//! Each operation class maps to a functional-unit kind with a per-cycle
//! issue capacity. The model is deliberately simple (fully pipelined units,
//! issue-width cap) — the paper's point is precisely that the scheduler
//! under resource constraints can stay register-oblivious.

use rs_core::model::OpClass;

/// Functional-unit kinds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FuKind {
    /// Load/store unit.
    Memory,
    /// Integer ALU.
    IntUnit,
    /// Floating-point unit.
    FloatUnit,
    /// Catch-all (copies, address arithmetic, pseudo-ops).
    Misc,
}

impl FuKind {
    /// The unit an operation class issues on.
    pub fn of(class: OpClass) -> FuKind {
        match class {
            OpClass::Load | OpClass::Store => FuKind::Memory,
            OpClass::IntAlu | OpClass::IntMul => FuKind::IntUnit,
            OpClass::FloatAlu | OpClass::FloatMul | OpClass::FloatDiv => FuKind::FloatUnit,
            OpClass::Copy | OpClass::Addr | OpClass::Other => FuKind::Misc,
        }
    }
}

/// Per-cycle issue capacities.
#[derive(Clone, Debug)]
pub struct Resources {
    /// Total issue width per cycle.
    pub issue_width: usize,
    /// Memory unit slots per cycle.
    pub memory: usize,
    /// Integer unit slots per cycle.
    pub int_unit: usize,
    /// Float unit slots per cycle.
    pub float_unit: usize,
    /// Misc slots per cycle.
    pub misc: usize,
}

impl Resources {
    /// A generic 4-issue machine: 2 memory, 2 int, 2 float, 2 misc ports.
    pub fn four_issue() -> Self {
        Resources {
            issue_width: 4,
            memory: 2,
            int_unit: 2,
            float_unit: 2,
            misc: 2,
        }
    }

    /// A narrow 1-issue machine (sequential-ish; stresses ILP loss).
    pub fn single_issue() -> Self {
        Resources {
            issue_width: 1,
            memory: 1,
            int_unit: 1,
            float_unit: 1,
            misc: 1,
        }
    }

    /// An 8-issue machine with generous units (near-unbounded ILP).
    pub fn wide_issue() -> Self {
        Resources {
            issue_width: 8,
            memory: 4,
            int_unit: 4,
            float_unit: 4,
            misc: 4,
        }
    }

    /// Capacity of one unit kind.
    pub fn capacity(&self, kind: FuKind) -> usize {
        match kind {
            FuKind::Memory => self.memory,
            FuKind::IntUnit => self.int_unit,
            FuKind::FloatUnit => self.float_unit,
            FuKind::Misc => self.misc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_to_unit_mapping_total() {
        for class in OpClass::ALL {
            let _ = FuKind::of(class); // no panic: mapping is total
        }
        assert_eq!(FuKind::of(OpClass::Load), FuKind::Memory);
        assert_eq!(FuKind::of(OpClass::FloatDiv), FuKind::FloatUnit);
    }

    #[test]
    fn capacities() {
        let r = Resources::four_issue();
        assert_eq!(r.capacity(FuKind::Memory), 2);
        assert_eq!(r.issue_width, 4);
        let s = Resources::single_issue();
        for k in [
            FuKind::Memory,
            FuKind::IntUnit,
            FuKind::FloatUnit,
            FuKind::Misc,
        ] {
            assert_eq!(s.capacity(k), 1);
        }
    }
}
