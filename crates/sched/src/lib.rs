//! # rs-sched — the downstream passes of Figure 1
//!
//! After the register-saturation pre-pass has produced a DAG that fits the
//! register budget, a resource-constrained **list scheduler** and an
//! interval-based **register allocator** finish code generation. These are
//! the substrate the paper assumes exists ("the DAG … can be sent to the
//! scheduler and the register allocator"); they are implemented here so the
//! pipeline can be validated end to end:
//!
//! - scheduling never has to consider register constraints,
//! - allocation always succeeds within the budget (zero spills) whenever
//!   the reduction pass reported success,
//! - the *ILP loss* of reduction is measured as makespan growth under real
//!   resource constraints, not just critical-path growth.

#![forbid(unsafe_code)]

pub mod allocator;
pub mod list;
pub mod resources;

pub use allocator::{AllocationResult, RegisterAllocator};
pub use list::{ListScheduler, Schedule};
pub use resources::Resources;
