//! Sparse linear expressions `Σ cᵢ·xᵢ + constant`.

use crate::model::VarId;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A sparse linear expression. Terms with the same variable are merged by
/// [`LinExpr::normalize`], which the model does automatically on insertion.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LinExpr {
    /// `(variable, coefficient)` terms. May contain duplicates until
    /// normalized.
    pub terms: Vec<(VarId, f64)>,
    /// Additive constant.
    pub constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> Self {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: f64) -> Self {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    /// A single-term expression `coeff · var`.
    pub fn term(var: VarId, coeff: f64) -> Self {
        LinExpr {
            terms: vec![(var, coeff)],
            constant: 0.0,
        }
    }

    /// Adds `coeff · var` in place and returns `self` (builder style).
    pub fn plus(mut self, coeff: f64, var: VarId) -> Self {
        self.terms.push((var, coeff));
        self
    }

    /// Adds a constant in place and returns `self`.
    pub fn plus_const(mut self, c: f64) -> Self {
        self.constant += c;
        self
    }

    /// Merges duplicate variables and drops (near-)zero coefficients:
    /// anything within the solver tolerance [`crate::EPS`] of zero is
    /// numerical noise (e.g. a coefficient that cancelled to `1e-16`
    /// instead of `0.0`) and would otherwise survive as a phantom term
    /// that perturbs pivoting and fingerprints.
    pub fn normalize(&mut self) {
        self.terms.sort_by_key(|(v, _)| *v);
        let mut out: Vec<(VarId, f64)> = Vec::with_capacity(self.terms.len());
        for &(v, c) in &self.terms {
            match out.last_mut() {
                Some((lv, lc)) if *lv == v => *lc += c,
                _ => out.push((v, c)),
            }
        }
        out.retain(|&(_, c)| !crate::approx_zero(c));
        self.terms = out;
    }

    /// Evaluates against an assignment vector indexed by variable id.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(v, c)| c * values[v.index()])
                .sum::<f64>()
    }

    /// Whether the expression has no variable terms (after normalization it
    /// is constant).
    pub fn is_constant(&self) -> bool {
        self.terms.iter().all(|&(_, c)| crate::approx_zero(c))
    }
}

impl From<VarId> for LinExpr {
    fn from(v: VarId) -> Self {
        LinExpr::term(v, 1.0)
    }
}

impl Add<VarId> for LinExpr {
    type Output = LinExpr;
    fn add(self, v: VarId) -> LinExpr {
        self.plus(1.0, v)
    }
}

impl Add<(f64, VarId)> for LinExpr {
    type Output = LinExpr;
    fn add(self, (c, v): (f64, VarId)) -> LinExpr {
        self.plus(c, v)
    }
}

impl Add<f64> for LinExpr {
    type Output = LinExpr;
    fn add(self, c: f64) -> LinExpr {
        self.plus_const(c)
    }
}

impl Add<LinExpr> for LinExpr {
    type Output = LinExpr;
    fn add(mut self, other: LinExpr) -> LinExpr {
        self.terms.extend(other.terms);
        self.constant += other.constant;
        self
    }
}

impl AddAssign<LinExpr> for LinExpr {
    fn add_assign(&mut self, other: LinExpr) {
        self.terms.extend(other.terms);
        self.constant += other.constant;
    }
}

impl Sub<VarId> for LinExpr {
    type Output = LinExpr;
    fn sub(self, v: VarId) -> LinExpr {
        self.plus(-1.0, v)
    }
}

impl Sub<f64> for LinExpr {
    type Output = LinExpr;
    fn sub(self, c: f64) -> LinExpr {
        self.plus_const(-c)
    }
}

impl Sub<LinExpr> for LinExpr {
    type Output = LinExpr;
    fn sub(mut self, other: LinExpr) -> LinExpr {
        for (v, c) in other.terms {
            self.terms.push((v, -c));
        }
        self.constant -= other.constant;
        self
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for (_, c) in &mut self.terms {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> VarId {
        VarId(i)
    }

    #[test]
    fn builder_and_eval() {
        let e = LinExpr::from(v(0)) + (2.0, v(1)) + 3.0;
        assert_eq!(e.eval(&[10.0, 20.0]), 10.0 + 40.0 + 3.0);
    }

    #[test]
    fn normalize_merges_and_drops() {
        let mut e = LinExpr::from(v(1)) + v(0) + (2.0, v(1)) + (-1.0, v(0));
        e.normalize();
        assert_eq!(e.terms, vec![(v(1), 3.0)]);
        assert!(!e.is_constant());
    }

    #[test]
    fn subtraction_and_negation() {
        let a = LinExpr::from(v(0)) + 5.0;
        let b = LinExpr::from(v(1)) + 2.0;
        let mut d = a - b;
        d.normalize();
        assert_eq!(d.eval(&[1.0, 1.0]), 1.0 - 1.0 + 3.0);
        let n = -(LinExpr::from(v(0)) + 1.0);
        assert_eq!(n.eval(&[4.0]), -5.0);
    }

    #[test]
    fn scalar_multiplication() {
        let e = (LinExpr::from(v(0)) + 1.0) * 3.0;
        assert_eq!(e.eval(&[2.0]), 9.0);
    }

    #[test]
    fn normalize_drops_subtolerance_noise() {
        // Regression for the tolerance rewrite: coefficients that cancel
        // to sub-EPS noise (1e-12) must vanish exactly like literal
        // zeros, while coefficients just above EPS must survive.
        let mut e = LinExpr::from(v(0)) + (-1.0 + 1e-12, v(0)) + (1e-6, v(1));
        e.normalize();
        assert_eq!(e.terms, vec![(v(1), 1e-6)]);
        let mut z = LinExpr::term(v(2), 1e-12);
        z.normalize();
        assert!(z.is_constant());
        assert!(z.terms.is_empty());
    }

    #[test]
    fn constant_expression() {
        let mut e = LinExpr::constant(7.0) + (0.0, v(3));
        e.normalize();
        assert!(e.is_constant());
        assert_eq!(e.eval(&[0.0; 4]), 7.0);
    }
}
