//! MILP model builder: variables with bounds and kinds, linear constraints,
//! and an objective.

use crate::expr::LinExpr;
use std::fmt;

/// Index of a decision variable.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u32);

impl VarId {
    /// The variable id as a `usize` for indexing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable integrality class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VarKind {
    /// Real-valued.
    Continuous,
    /// Integer-valued.
    Integer,
    /// Integer restricted to `{0, 1}` (bounds are clamped on creation).
    Binary,
}

/// Constraint comparison operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Cmp {
    /// `expr ≤ rhs`
    Le,
    /// `expr ≥ rhs`
    Ge,
    /// `expr = rhs`
    Eq,
}

/// Optimization direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sense {
    /// Maximize the objective.
    Maximize,
    /// Minimize the objective.
    Minimize,
}

#[derive(Clone, Debug)]
pub(crate) struct Variable {
    pub name: String,
    pub kind: VarKind,
    pub lo: f64,
    pub hi: f64,
}

#[derive(Clone, Debug)]
pub(crate) struct Constraint {
    pub expr: LinExpr,
    pub cmp: Cmp,
    pub rhs: f64,
}

/// Size statistics of a model — the quantity Table T3 of the reproduction
/// measures against the paper's `O(n²)` variables / `O(m + n²)` constraints
/// claim.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ModelStats {
    /// Continuous variables.
    pub continuous: usize,
    /// General integer variables.
    pub integer: usize,
    /// Binary variables.
    pub binary: usize,
    /// Number of linear constraints.
    pub constraints: usize,
    /// Total nonzero coefficients across constraints.
    pub nonzeros: usize,
}

impl ModelStats {
    /// Total variable count.
    pub fn variables(&self) -> usize {
        self.continuous + self.integer + self.binary
    }

    /// Integer-or-binary variable count (the paper counts "integer
    /// variables", i.e. everything that is not relaxed).
    pub fn integral(&self) -> usize {
        self.integer + self.binary
    }
}

/// A mixed-integer linear program.
#[derive(Clone, Debug)]
pub struct Model {
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<Constraint>,
    pub(crate) objective: LinExpr,
    pub(crate) sense: Sense,
}

impl Model {
    /// Creates an empty model with the given optimization direction.
    pub fn new(sense: Sense) -> Self {
        Model {
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
            sense,
        }
    }

    /// Adds a variable. Binary variables get their bounds clamped to
    /// `[0, 1]`. Lower bounds must be finite (the register-saturation
    /// models always shift domains to finite ranges, per the paper's
    /// requirement that "linear writing of logical operators requires to
    /// bound the domain set of the integer variables").
    pub fn add_var(&mut self, name: impl Into<String>, kind: VarKind, lo: f64, hi: f64) -> VarId {
        let (lo, hi) = match kind {
            VarKind::Binary => (lo.max(0.0), hi.min(1.0)),
            _ => (lo, hi),
        };
        assert!(lo.is_finite(), "variable lower bound must be finite");
        assert!(lo <= hi, "empty domain [{lo}, {hi}] for {}", name.into());
        let id = VarId(self.vars.len() as u32);
        self.vars.push(Variable {
            name: String::new(),
            kind,
            lo,
            hi,
        });
        id
    }

    /// Adds a named variable, keeping the name for diagnostics.
    pub fn add_named_var(
        &mut self,
        name: impl Into<String>,
        kind: VarKind,
        lo: f64,
        hi: f64,
    ) -> VarId {
        let name = name.into();
        let id = self.add_var(name.clone(), kind, lo, hi);
        self.vars[id.index()].name = name;
        id
    }

    /// Adds the constraint `expr cmp rhs`. The expression is normalized; a
    /// constant expression is checked immediately and recorded as a trivial
    /// feasible/infeasible marker row.
    pub fn add_constraint(&mut self, mut expr: LinExpr, cmp: Cmp, rhs: f64) {
        expr.normalize();
        // Fold the expression constant into the rhs.
        let rhs = rhs - expr.constant;
        expr.constant = 0.0;
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Adds the constraint `Σ terms cmp rhs` from a term slice — the
    /// allocation-light twin of [`Model::add_constraint`]. Callers that
    /// emit many constraints (the logical linearizations) assemble each row
    /// in a reused scratch buffer and hand it over here; only the single
    /// `Vec` the model stores is allocated, no intermediate expression
    /// chain.
    pub fn add_constraint_terms(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) {
        let mut expr = LinExpr {
            terms: terms.to_vec(),
            constant: 0.0,
        };
        expr.normalize();
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, mut obj: LinExpr) {
        obj.normalize();
        self.objective = obj;
    }

    /// Optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Read access to the `i`-th constraint as `(terms, cmp, rhs)`. The
    /// stored expression constant is always zero ([`Model::add_constraint`]
    /// folds it into the rhs), so the triple is the whole row — this is
    /// what the cut separator and external inspectors walk.
    pub fn constraint(&self, i: usize) -> (&[(VarId, f64)], Cmp, f64) {
        let c = &self.constraints[i];
        // Walkers (cut separator, auditor) rely on the triple being the
        // whole row, so the fold invariant is enforced in release too.
        assert_eq!(c.expr.constant, 0.0, "row constants fold into rhs");
        (&c.expr.terms, c.cmp, c.rhs)
    }

    /// Variable kind.
    pub fn kind(&self, v: VarId) -> VarKind {
        self.vars[v.index()].kind
    }

    /// Is the variable integrality-constrained (integer or binary)? The
    /// predicate behind every integral-rounding decision in the solver
    /// stack (bound folds, presolve, branch-and-bound candidate scans).
    pub fn is_integral(&self, v: VarId) -> bool {
        !matches!(self.vars[v.index()].kind, VarKind::Continuous)
    }

    /// Variable bounds `(lo, hi)`.
    pub fn bounds(&self, v: VarId) -> (f64, f64) {
        let var = &self.vars[v.index()];
        (var.lo, var.hi)
    }

    /// Variable name (may be empty).
    pub fn name(&self, v: VarId) -> &str {
        &self.vars[v.index()].name
    }

    /// Tightens a variable's bounds (used by branch-and-bound and by the
    /// bound-folding paths of presolve and the linearizations).
    ///
    /// Binary variables are re-clamped to `[0, 1]` exactly as on creation,
    /// and the result is validated: an empty domain (`lo > hi` after
    /// clamping) or a non-finite lower bound panics instead of silently
    /// producing a model the simplex would mis-shift.
    pub fn set_bounds(&mut self, v: VarId, lo: f64, hi: f64) {
        let var = &mut self.vars[v.index()];
        let (lo, hi) = match var.kind {
            VarKind::Binary => (lo.max(0.0), hi.min(1.0)),
            _ => (lo, hi),
        };
        assert!(lo.is_finite(), "x{}: lower bound must be finite", v.0);
        assert!(lo <= hi, "x{}: empty domain [{lo}, {hi}]", v.0);
        var.lo = lo;
        var.hi = hi;
    }

    /// Adds `Σ terms cmp rhs`, folding a single-variable row into that
    /// variable's bounds instead of materializing a constraint — the
    /// bounded-variable simplex handles bounds for free, so a `a·x ≤ b` row
    /// would only grow the tableau. Integral variables get the folded bound
    /// rounded inward. When folding would empty the domain (the row is
    /// infeasible under the current bounds) the row is kept so the solver
    /// reports infeasibility through its normal path.
    ///
    /// Returns `true` when the row was absorbed into a bound.
    pub fn add_bound_or_constraint(&mut self, terms: &[(VarId, f64)], cmp: Cmp, rhs: f64) -> bool {
        let mut expr = LinExpr {
            terms: terms.to_vec(),
            constant: 0.0,
        };
        expr.normalize();
        if let [(v, a)] = expr.terms[..] {
            if a.abs() > crate::EPS && self.try_fold_bound(v, a, cmp, rhs) {
                return true;
            }
        }
        self.constraints.push(Constraint { expr, cmp, rhs });
        false
    }

    /// Tightens `v`'s bounds with the row `a·v cmp rhs`. Returns `false`
    /// (leaving the model untouched) when the tightened interval would be
    /// empty.
    fn try_fold_bound(&mut self, v: VarId, a: f64, cmp: Cmp, rhs: f64) -> bool {
        let (lo, hi) = self.bounds(v);
        let integral = self.is_integral(v);
        match fold_interval(lo, hi, integral, a, cmp, rhs) {
            Some((nlo, nhi)) if nlo <= nhi => {
                self.set_bounds(v, nlo, nhi);
                true
            }
            // Empty (or fractionally-pinned integer) interval: keep the
            // row so the solver reports infeasibility through its normal
            // path.
            _ => false,
        }
    }

    /// Finite interval `[lo, hi]` that `expr` is guaranteed to lie in, given
    /// the variable bounds. Infinite if any needed bound is infinite.
    /// This provides the big-M constants of the logical linearizations.
    pub fn expr_bounds(&self, expr: &LinExpr) -> (f64, f64) {
        let mut lo = expr.constant;
        let mut hi = expr.constant;
        for &(v, c) in &expr.terms {
            let (vlo, vhi) = self.bounds(v);
            if c >= 0.0 {
                lo += c * vlo;
                hi += c * vhi;
            } else {
                lo += c * vhi;
                hi += c * vlo;
            }
        }
        (lo, hi)
    }

    /// Size statistics.
    pub fn stats(&self) -> ModelStats {
        let mut s = ModelStats::default();
        for v in &self.vars {
            match v.kind {
                VarKind::Continuous => s.continuous += 1,
                VarKind::Integer => s.integer += 1,
                VarKind::Binary => s.binary += 1,
            }
        }
        s.constraints = self.constraints.len();
        s.nonzeros = self.constraints.iter().map(|c| c.expr.terms.len()).sum();
        s
    }

    /// Checks a full assignment against every constraint and bound, with
    /// tolerance `tol`. Returns the first violation description.
    pub fn check_feasible(&self, values: &[f64], tol: f64) -> Result<(), String> {
        if values.len() != self.vars.len() {
            return Err(format!(
                "assignment has {} values, model has {} vars",
                values.len(),
                self.vars.len()
            ));
        }
        for (i, var) in self.vars.iter().enumerate() {
            let x = values[i];
            if x < var.lo - tol || x > var.hi + tol {
                return Err(format!(
                    "x{} = {} violates bounds [{}, {}]",
                    i, x, var.lo, var.hi
                ));
            }
            if !matches!(var.kind, VarKind::Continuous) && (x - x.round()).abs() > tol {
                return Err(format!("x{} = {} is not integral", i, x));
            }
        }
        for (ci, c) in self.constraints.iter().enumerate() {
            let lhs = c.expr.eval(values);
            let ok = match c.cmp {
                Cmp::Le => lhs <= c.rhs + tol,
                Cmp::Ge => lhs >= c.rhs - tol,
                Cmp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return Err(format!(
                    "constraint {} violated: lhs = {}, {:?} rhs = {}",
                    ci, lhs, c.cmp, c.rhs
                ));
            }
        }
        Ok(())
    }
}

/// Interval arithmetic shared by every single-variable-row fold (the
/// model-level [`Model::add_bound_or_constraint`] and presolve's singleton
/// pass): tightens `[lo, hi]` with the row `a·x cmp rhs`, rounding inward
/// for integral variables.
///
/// Returns `None` when the row pins an integral variable to a fractional
/// value (the row cannot be represented as a bound at all), otherwise the
/// tightened interval — **possibly empty** (`nlo > nhi`); the caller
/// chooses the empty-interval policy (keep the row vs. declare
/// infeasibility).
pub(crate) fn fold_interval(
    lo: f64,
    hi: f64,
    integral: bool,
    a: f64,
    cmp: Cmp,
    rhs: f64,
) -> Option<(f64, f64)> {
    let x = rhs / a;
    let (mut nlo, mut nhi) = (lo, hi);
    let tightens_upper = matches!((cmp, a > 0.0), (Cmp::Le, true) | (Cmp::Ge, false));
    match cmp {
        Cmp::Le | Cmp::Ge if tightens_upper => {
            let ub = if integral {
                (x + crate::EPS).floor()
            } else {
                x
            };
            nhi = nhi.min(ub);
        }
        Cmp::Le | Cmp::Ge => {
            let lb = if integral { (x - crate::EPS).ceil() } else { x };
            nlo = nlo.max(lb);
        }
        Cmp::Eq => {
            let mut val = x;
            if integral {
                let r = val.round();
                if (val - r).abs() > crate::EPS {
                    return None;
                }
                val = r;
            }
            nlo = nlo.max(val);
            nhi = nhi.min(val);
        }
    }
    Some((nlo, nhi))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_count_kinds() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Continuous, 0.0, 10.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 5.0);
        let c = m.add_var("c", VarKind::Binary, -3.0, 3.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 6.0);
        let s = m.stats();
        assert_eq!(s.continuous, 1);
        assert_eq!(s.integer, 1);
        assert_eq!(s.binary, 1);
        assert_eq!(s.variables(), 3);
        assert_eq!(s.integral(), 2);
        assert_eq!(s.constraints, 1);
        assert_eq!(s.nonzeros, 3);
        // binary bounds clamped
        assert_eq!(m.bounds(c), (0.0, 1.0));
    }

    #[test]
    fn expr_bounds_respects_sign() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Continuous, 1.0, 4.0);
        let b = m.add_var("b", VarKind::Continuous, -2.0, 3.0);
        let e = LinExpr::from(a) + (-2.0, b) + 1.0;
        let (lo, hi) = m.expr_bounds(&e);
        assert_eq!(lo, 1.0 - 6.0 + 1.0);
        assert_eq!(hi, 4.0 + 4.0 + 1.0);
    }

    #[test]
    fn constraint_constant_folds_into_rhs() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(a) + 5.0, Cmp::Le, 8.0);
        assert_eq!(m.constraints[0].rhs, 3.0);
        assert_eq!(m.constraints[0].expr.constant, 0.0);
    }

    #[test]
    fn check_feasible_reports_violations() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(a), Cmp::Ge, 4.0);
        assert!(m.check_feasible(&[5.0], 1e-6).is_ok());
        assert!(m.check_feasible(&[3.0], 1e-6).is_err());
        assert!(m.check_feasible(&[4.5], 1e-6).is_err()); // not integral
        assert!(m.check_feasible(&[11.0], 1e-6).is_err()); // bound
        assert!(m.check_feasible(&[], 1e-6).is_err()); // arity
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn rejects_empty_domain() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var("bad", VarKind::Continuous, 2.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty domain")]
    fn set_bounds_rejects_inverted_interval() {
        // Regression: this used to be accepted silently and produced a
        // negative variable range inside the simplex.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.set_bounds(x, 5.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "lower bound must be finite")]
    fn set_bounds_rejects_infinite_lower() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.set_bounds(x, f64::NEG_INFINITY, 2.0);
    }

    #[test]
    fn set_bounds_reclamps_binaries() {
        // Regression: set_bounds used to un-clamp binaries to arbitrary
        // intervals.
        let mut m = Model::new(Sense::Minimize);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0);
        m.set_bounds(b, -3.0, 7.0);
        assert_eq!(m.bounds(b), (0.0, 1.0));
        m.set_bounds(b, 1.0, 1.0);
        assert_eq!(m.bounds(b), (1.0, 1.0));
    }

    #[test]
    fn single_variable_rows_fold_into_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        // 2x <= 7  =>  x <= 3 (integral rounding), no row emitted
        assert!(m.add_bound_or_constraint(&[(x, 2.0)], Cmp::Le, 7.0));
        assert_eq!(m.num_constraints(), 0);
        assert_eq!(m.bounds(x), (0.0, 3.0));
        // -x <= -2  =>  x >= 2
        assert!(m.add_bound_or_constraint(&[(x, -1.0)], Cmp::Le, -2.0));
        assert_eq!(m.bounds(x), (2.0, 3.0));
        // equality pins the variable
        assert!(m.add_bound_or_constraint(&[(x, 1.0)], Cmp::Eq, 3.0));
        assert_eq!(m.bounds(x), (3.0, 3.0));
        // a row that would empty the domain is kept as a real (infeasible)
        // constraint instead of panicking in set_bounds
        assert!(!m.add_bound_or_constraint(&[(x, 1.0)], Cmp::Le, 1.0));
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.bounds(x), (3.0, 3.0));
        // multi-variable rows pass straight through
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        assert!(!m.add_bound_or_constraint(&[(x, 1.0), (y, 1.0)], Cmp::Le, 5.0));
        assert_eq!(m.num_constraints(), 2);
    }
}
