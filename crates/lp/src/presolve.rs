//! Presolve: bound tightening and redundant-constraint elimination.
//!
//! The register-saturation intLPs are big-M heavy; activity-based bound
//! tightening shrinks the M-induced slack before branch-and-bound sees the
//! model, and redundant rows (implied by the variable bounds alone) are
//! dropped. Presolve is *safe*: it never changes the feasible set of the
//! integer program — every transformation is justified by interval
//! arithmetic over the current bounds, with integral rounding applied only
//! to integral variables.

use crate::expr::LinExpr;
use crate::model::{Cmp, Model};
use crate::EPS;

/// Outcome of presolving.
#[derive(Clone, Debug)]
pub enum PresolveOutcome {
    /// The reduced model plus statistics.
    Reduced {
        /// The transformed model (same variables, tighter bounds, fewer rows).
        model: Model,
        /// Presolve statistics.
        stats: PresolveStats,
    },
    /// Presolve proved the model infeasible.
    Infeasible,
}

/// What presolve accomplished.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Variable bounds strictly tightened.
    pub bounds_tightened: usize,
    /// Constraints removed as redundant.
    pub rows_removed: usize,
    /// Singleton rows (`a·x cmp b`) folded into variable bounds. The
    /// bounded-variable simplex handles bounds for free, so keeping these
    /// as rows would only grow the tableau.
    pub singletons_folded: usize,
    /// Variables whose domain collapsed to a point.
    pub vars_fixed: usize,
    /// Tightening rounds executed.
    pub rounds: usize,
}

/// Activity interval `[lo, hi]` of `expr` under the model's bounds.
fn activity(model: &Model, expr: &LinExpr) -> (f64, f64) {
    model.expr_bounds(expr)
}

/// Outcome of a node-local [`propagate`] pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Propagation {
    /// Bounds were tightened this many times (possibly zero).
    Tightened(usize),
    /// The current bounds admit no feasible point: the caller can fathom
    /// the subproblem without an LP solve.
    Infeasible,
}

/// Cheap per-node domain reduction: activity-based bound tightening **in
/// place** on the node's already-tightened bounds, with integral rounding
/// at the branch-and-bound driver's own `int_tol`.
///
/// This is the node-time sibling of [`presolve`]: it reuses the same
/// interval arguments (for `Σ aᵢxᵢ ≤ b`, `x_j ≤ (b − min-activity-rest)/a_j`
/// when `a_j > 0`, symmetric otherwise, `Eq` expanded to both passes) but
/// deliberately mutates the model it is given and never touches the row
/// set — the B&B workers reuse one model per slot across nodes and only
/// ever reset *bounds* between nodes, so dropping rows or folding
/// singletons here would corrupt the shared row structure. On the big-M
/// register-saturation rows one branching decision (a gate binary pinned
/// to 0/1) frequently forces a cascade of other binaries; propagating that
/// cascade before the cold LP solve shrinks the relaxation and detects
/// infeasible subproblems for free ([`Propagation::Infeasible`] → the node
/// is fathomed with no simplex work at all).
pub fn propagate(model: &mut Model, int_tol: f64, max_rounds: usize) -> Propagation {
    let mut tightened = 0usize;
    for _round in 0..max_rounds {
        let mut changed = false;
        let n_rows = model.constraints.len();
        for ci in 0..n_rows {
            let (cmp0, rhs0) = {
                let c = &model.constraints[ci];
                (c.cmp, c.rhs)
            };
            // Infeasibility screen from the row's activity interval. The
            // interval is then maintained *incrementally* across the term
            // loop below — each tightening moves exactly one bound, so the
            // affected endpoint shifts by `a · Δbound` — which keeps the
            // whole pass linear in the row length instead of quadratic
            // (the dense objective-cutoff row the node-time caller appends
            // would otherwise dominate the node budget).
            let (mut act_lo, mut act_hi) = {
                let c = &model.constraints[ci];
                activity(model, &c.expr)
            };
            let feasible = match cmp0 {
                Cmp::Le => act_lo <= rhs0 + EPS,
                Cmp::Ge => act_hi >= rhs0 - EPS,
                Cmp::Eq => act_lo <= rhs0 + EPS && act_hi >= rhs0 - EPS,
            };
            if !feasible {
                return Propagation::Infeasible;
            }
            // Treat Eq as both Le and Ge.
            let passes: &[(Cmp, f64)] = match cmp0 {
                Cmp::Le => &[(Cmp::Le, rhs0)],
                Cmp::Ge => &[(Cmp::Ge, rhs0)],
                Cmp::Eq => &[(Cmp::Le, rhs0), (Cmp::Ge, rhs0)],
            };
            for &(cmp, rhs) in passes {
                let nterms = model.constraints[ci].expr.terms.len();
                for ti in 0..nterms {
                    let (v, a) = model.constraints[ci].expr.terms[ti];
                    if a.abs() <= EPS {
                        continue;
                    }
                    let (vlo, vhi) = model.bounds(v);
                    let integral = model.is_integral(v);
                    match cmp {
                        Cmp::Le => {
                            let contrib_lo = if a > 0.0 { a * vlo } else { a * vhi };
                            let rest_lo = act_lo - contrib_lo;
                            if !rest_lo.is_finite() {
                                continue;
                            }
                            if a > 0.0 {
                                let mut ub = (rhs - rest_lo) / a;
                                if integral {
                                    ub = (ub + int_tol).floor();
                                }
                                if ub < vlo - EPS {
                                    return Propagation::Infeasible;
                                }
                                if ub < vhi - EPS {
                                    let new_hi = ub.max(vlo);
                                    model.set_bounds(v, vlo, new_hi);
                                    act_hi += a * (new_hi - vhi);
                                    tightened += 1;
                                    changed = true;
                                }
                            } else {
                                let mut lb = (rhs - rest_lo) / a;
                                if integral {
                                    lb = (lb - int_tol).ceil();
                                }
                                if lb > vhi + EPS {
                                    return Propagation::Infeasible;
                                }
                                if lb > vlo + EPS {
                                    let new_lo = lb.min(vhi);
                                    model.set_bounds(v, new_lo, vhi);
                                    act_hi += a * (new_lo - vlo);
                                    tightened += 1;
                                    changed = true;
                                }
                            }
                        }
                        Cmp::Ge => {
                            let contrib_hi = if a > 0.0 { a * vhi } else { a * vlo };
                            let rest_hi = act_hi - contrib_hi;
                            if !rest_hi.is_finite() {
                                continue;
                            }
                            if a > 0.0 {
                                let mut lb = (rhs - rest_hi) / a;
                                if integral {
                                    lb = (lb - int_tol).ceil();
                                }
                                if lb > vhi + EPS {
                                    return Propagation::Infeasible;
                                }
                                if lb > vlo + EPS {
                                    let new_lo = lb.min(vhi);
                                    model.set_bounds(v, new_lo, vhi);
                                    act_lo += a * (new_lo - vlo);
                                    tightened += 1;
                                    changed = true;
                                }
                            } else {
                                let mut ub = (rhs - rest_hi) / a;
                                if integral {
                                    ub = (ub + int_tol).floor();
                                }
                                if ub < vlo - EPS {
                                    return Propagation::Infeasible;
                                }
                                if ub < vhi - EPS {
                                    let new_hi = ub.max(vlo);
                                    model.set_bounds(v, vlo, new_hi);
                                    act_lo += a * (new_hi - vhi);
                                    tightened += 1;
                                    changed = true;
                                }
                            }
                        }
                        Cmp::Eq => unreachable!("expanded above"),
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }
    Propagation::Tightened(tightened)
}

/// Runs presolve for at most `max_rounds` fixpoint rounds.
pub fn presolve(model: &Model, max_rounds: usize) -> PresolveOutcome {
    let mut m = model.clone();
    let mut stats = PresolveStats::default();

    for _round in 0..max_rounds {
        stats.rounds += 1;
        let mut changed = false;

        // 0. Singleton rows fold into variable bounds — the
        // bounded-variable simplex represents bounds implicitly, so a
        // `a·x cmp b` row is pure tableau growth. An infeasible fold (the
        // tightened interval would be empty) ends presolve immediately.
        let mut si = 0;
        while si < m.constraints.len() {
            let c = &m.constraints[si];
            let fold = match c.expr.terms[..] {
                [(v, a)] if a.abs() > EPS => Some((v, a, c.cmp, c.rhs)),
                _ => None,
            };
            let Some((v, a, cmp, rhs)) = fold else {
                si += 1;
                continue;
            };
            let (vlo, vhi) = m.bounds(v);
            let integral = m.is_integral(v);
            // Presolve's empty-interval policy is stricter than the
            // model-level fold: a singleton row that empties the domain
            // (or pins an integer to a fraction) proves infeasibility.
            let Some((nlo, nhi)) = crate::model::fold_interval(vlo, vhi, integral, a, cmp, rhs)
            else {
                return PresolveOutcome::Infeasible;
            };
            if nlo > nhi + EPS {
                return PresolveOutcome::Infeasible;
            }
            // Clamp away sub-tolerance inversions before set_bounds
            // validates the interval.
            let nlo = nlo.min(nhi);
            m.set_bounds(v, nlo, nhi);
            if nlo > vlo + EPS || nhi < vhi - EPS {
                stats.bounds_tightened += 1;
            }
            m.constraints.remove(si);
            stats.singletons_folded += 1;
            changed = true;
        }

        // 1. Row classification.
        let mut keep = vec![true; m.constraints.len()];
        for (ci, c) in m.constraints.iter().enumerate() {
            let (lo, hi) = activity(&m, &c.expr);
            let (feasible, redundant) = match c.cmp {
                Cmp::Le => (lo <= c.rhs + EPS, hi <= c.rhs + EPS),
                Cmp::Ge => (hi >= c.rhs - EPS, lo >= c.rhs - EPS),
                Cmp::Eq => (
                    lo <= c.rhs + EPS && hi >= c.rhs - EPS,
                    (lo - c.rhs).abs() <= EPS && (hi - c.rhs).abs() <= EPS,
                ),
            };
            if !feasible {
                return PresolveOutcome::Infeasible;
            }
            if redundant {
                keep[ci] = false;
                changed = true;
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut idx = 0;
            m.constraints.retain(|_| {
                let k = keep[idx];
                idx += 1;
                if !k {
                    stats.rows_removed += 1;
                }
                k
            });
        }

        // 2. Bound tightening from each remaining row.
        let n_rows = m.constraints.len();
        for ci in 0..n_rows {
            let c = m.constraints[ci].clone();
            // Treat Eq as both Le and Ge.
            let passes: &[(Cmp, f64)] = match c.cmp {
                Cmp::Le => &[(Cmp::Le, c.rhs)],
                Cmp::Ge => &[(Cmp::Ge, c.rhs)],
                Cmp::Eq => &[(Cmp::Le, c.rhs), (Cmp::Ge, c.rhs)],
            };
            for &(cmp, rhs) in passes {
                // For Σ a_i x_i ≤ rhs: x_j ≤ (rhs − min-activity-without-j)/a_j
                // when a_j > 0 (symmetric for a_j < 0 / Ge rows).
                let (act_lo, act_hi) = activity(&m, &c.expr);
                for &(v, a) in &c.expr.terms {
                    if a.abs() <= EPS {
                        continue;
                    }
                    let (vlo, vhi) = m.bounds(v);
                    let integral = m.is_integral(v);
                    match cmp {
                        Cmp::Le => {
                            // lo of the rest = act_lo − contribution_lo(v)
                            let contrib_lo = if a > 0.0 { a * vlo } else { a * vhi };
                            let rest_lo = act_lo - contrib_lo;
                            if a > 0.0 {
                                let mut ub = (rhs - rest_lo) / a;
                                if integral {
                                    ub = (ub + EPS).floor();
                                }
                                if ub < vhi - EPS {
                                    if ub < vlo - EPS {
                                        return PresolveOutcome::Infeasible;
                                    }
                                    m.set_bounds(v, vlo, ub);
                                    stats.bounds_tightened += 1;
                                    changed = true;
                                }
                            } else {
                                let mut lb = (rhs - rest_lo) / a;
                                if integral {
                                    lb = (lb - EPS).ceil();
                                }
                                if lb > vlo + EPS {
                                    if lb > vhi + EPS {
                                        return PresolveOutcome::Infeasible;
                                    }
                                    m.set_bounds(v, lb, vhi);
                                    stats.bounds_tightened += 1;
                                    changed = true;
                                }
                            }
                        }
                        Cmp::Ge => {
                            // hi of the rest = act_hi − contribution_hi(v)
                            let contrib_hi = if a > 0.0 { a * vhi } else { a * vlo };
                            let rest_hi = act_hi - contrib_hi;
                            if a > 0.0 {
                                let mut lb = (rhs - rest_hi) / a;
                                if integral {
                                    lb = (lb - EPS).ceil();
                                }
                                if lb > vlo + EPS {
                                    if lb > vhi + EPS {
                                        return PresolveOutcome::Infeasible;
                                    }
                                    m.set_bounds(v, lb, vhi);
                                    stats.bounds_tightened += 1;
                                    changed = true;
                                }
                            } else {
                                let mut ub = (rhs - rest_hi) / a;
                                if integral {
                                    ub = (ub + EPS).floor();
                                }
                                if ub < vhi - EPS {
                                    if ub < vlo - EPS {
                                        return PresolveOutcome::Infeasible;
                                    }
                                    m.set_bounds(v, vlo, ub);
                                    stats.bounds_tightened += 1;
                                    changed = true;
                                }
                            }
                        }
                        Cmp::Eq => unreachable!("expanded above"),
                    }
                }
            }
        }

        if !changed {
            break;
        }
    }

    // Count collapsed domains.
    for i in 0..m.num_vars() {
        let (lo, hi) = m.bounds(crate::VarId(i as u32));
        if (hi - lo).abs() <= EPS {
            stats.vars_fixed += 1;
        }
    }

    PresolveOutcome::Reduced { model: m, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::milp::{solve, MilpConfig};
    use crate::model::Sense;
    use crate::model::VarKind;
    use proptest::prelude::*;

    #[test]
    fn removes_redundant_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 100.0); // redundant
        m.add_constraint(LinExpr::from(x), Cmp::Le, 3.0);
        m.set_objective(LinExpr::from(x));
        match presolve(&m, 4) {
            PresolveOutcome::Reduced { model, stats } => {
                // both rows are singletons: folded straight into x's bounds
                assert_eq!(stats.singletons_folded, 2);
                assert_eq!(model.num_constraints(), 0);
                assert_eq!(model.bounds(x).1, 3.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn folds_singleton_rows_into_bounds() {
        // Mixed model: one singleton Ge, one singleton Eq on another var,
        // one genuine two-variable row that must survive.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Ge, 3.0); // x >= 1.5 -> 2
        m.add_constraint(LinExpr::from(y), Cmp::Eq, 4.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 9.0);
        m.set_objective(LinExpr::from(x) + y);
        match presolve(&m, 4) {
            PresolveOutcome::Reduced { model, stats } => {
                assert_eq!(stats.singletons_folded, 2);
                assert_eq!(model.bounds(x).0, 2.0);
                assert_eq!(model.bounds(y), (4.0, 4.0));
                // the x + y row tightens x's upper (x <= 5) but remains
                assert!(model.num_constraints() <= 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn singleton_eq_fractional_integer_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Eq, 5.0); // x = 2.5
        m.set_objective(LinExpr::from(x));
        assert!(matches!(presolve(&m, 4), PresolveOutcome::Infeasible));
    }

    #[test]
    fn tightens_integer_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Le, 7.0); // x ≤ 3.5 → 3
        m.set_objective(LinExpr::from(x));
        match presolve(&m, 4) {
            PresolveOutcome::Reduced { model, stats } => {
                assert_eq!(model.bounds(x).1, 3.0);
                assert!(stats.bounds_tightened >= 1);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 2.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(presolve(&m, 4), PresolveOutcome::Infeasible));
    }

    #[test]
    fn propagates_through_chains() {
        // x ≤ 4, y ≥ x + 3 (as -x + y ≥ 3), y ≤ 5 ⟹ x ≤ 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 5.0);
        m.add_constraint(LinExpr::from(y) - x, Cmp::Ge, 3.0);
        m.set_objective(LinExpr::from(x));
        match presolve(&m, 8) {
            PresolveOutcome::Reduced { model, .. } => {
                assert_eq!(model.bounds(x).1, 2.0);
                assert_eq!(model.bounds(y).0, 3.0);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn node_propagation_tightens_in_place() {
        // Big-M gate: x ≤ 6y with y pinned to 0 forces x to 0; the row set
        // must survive untouched (the B&B slots reuse it across nodes).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 6.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) + (-6.0, y), Cmp::Le, 0.0);
        m.set_objective(LinExpr::from(x));
        m.set_bounds(y, 0.0, 0.0); // the branching decision
        match propagate(&mut m, 1e-6, 2) {
            Propagation::Tightened(n) => assert!(n >= 1, "must tighten x"),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.bounds(x), (0.0, 0.0));
        assert_eq!(m.num_constraints(), 1, "row set must not change");
    }

    #[test]
    fn node_propagation_detects_infeasible() {
        // x + y ≥ 2 with both pinned to 0 by branching: fathom without LP.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 2.0);
        m.set_objective(LinExpr::from(x));
        m.set_bounds(x, 0.0, 0.0);
        assert_eq!(propagate(&mut m, 1e-6, 2), Propagation::Infeasible);
    }

    #[test]
    fn node_propagation_cascades_through_rounds() {
        // y ≥ x − 1 chain: fixing x high pulls y, then z, across rounds.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 9.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 9.0);
        let z = m.add_var("z", VarKind::Integer, 0.0, 9.0);
        m.add_constraint(LinExpr::from(y) - x, Cmp::Ge, 0.0); // y >= x
        m.add_constraint(LinExpr::from(z) - y, Cmp::Ge, 0.0); // z >= y
        m.set_objective(LinExpr::from(z));
        m.set_bounds(x, 7.0, 9.0);
        match propagate(&mut m, 1e-6, 4) {
            Propagation::Tightened(n) => assert!(n >= 2),
            other => panic!("{other:?}"),
        }
        assert_eq!(m.bounds(y).0, 7.0);
        assert_eq!(m.bounds(z).0, 7.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Node propagation must never cut off an integer-feasible point:
        /// any point feasible before the pass stays inside the tightened
        /// box afterwards.
        #[test]
        fn propagation_preserves_integer_points(
            cons in proptest::collection::vec(
                (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
        ) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..3)
                .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                .collect();
            for (coefs, rhs) in &cons {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                m.add_constraint(e, Cmp::Le, *rhs as f64);
            }
            m.set_objective(LinExpr::from(vars[0]));
            // Enumerate feasible integer points before propagation.
            let mut feasible = Vec::new();
            for x in 0..=4i64 {
                for y in 0..=4i64 {
                    for z in 0..=4i64 {
                        let p = [x as f64, y as f64, z as f64];
                        if m.check_feasible(&p, 1e-9).is_ok() {
                            feasible.push(p);
                        }
                    }
                }
            }
            let outcome = propagate(&mut m, 1e-6, 3);
            if outcome == Propagation::Infeasible {
                prop_assert!(feasible.is_empty(),
                    "propagation fathomed a box holding {:?}", feasible.first());
            } else {
                for p in &feasible {
                    prop_assert!(m.check_feasible(p, 1e-9).is_ok(),
                        "propagation cut off feasible point {p:?}");
                }
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Presolve must preserve the MILP optimum.
        #[test]
        fn preserves_optimum(
            cons in proptest::collection::vec(
                (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
            obj in proptest::array::uniform3(-4i64..=4),
        ) {
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..3)
                .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                .collect();
            for (coefs, rhs) in &cons {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                m.add_constraint(e, Cmp::Le, *rhs as f64);
            }
            let mut o = LinExpr::new();
            for (i, &c) in obj.iter().enumerate() {
                o = o + (c as f64, vars[i]);
            }
            m.set_objective(o);

            let direct = solve(&m, &MilpConfig::default());
            match presolve(&m, 6) {
                PresolveOutcome::Infeasible => {
                    prop_assert!(direct.is_err(), "presolve claims infeasible, solver found {:?}",
                        direct.map(|s| s.objective));
                }
                PresolveOutcome::Reduced { model, .. } => {
                    let presolved = solve(&model, &MilpConfig::default());
                    match (direct, presolved) {
                        (Ok(a), Ok(b)) => prop_assert_eq!(
                            a.objective.round() as i64,
                            b.objective.round() as i64
                        ),
                        (Err(_), Err(_)) => {}
                        (a, b) => prop_assert!(false, "divergence: {:?} vs {:?}",
                            a.map(|s| s.objective), b.map(|s| s.objective)),
                    }
                }
            }
        }
    }
}
