//! # rs-lp — linear-programming substrate
//!
//! The paper solves its intLP formulations with CPLEX; this crate is the
//! from-scratch replacement: a dense two-phase **bounded-variable** primal
//! simplex for LP relaxations (upper bounds live in per-column statuses,
//! not in explicit `x ≤ u` rows — the RS models are almost entirely binary,
//! so this halves the tableau in both dimensions) and a parallel
//! branch-and-bound driver with a warm-started diving heuristic, plus the
//! logical-operator linearizations (`max`, `⟹`, `⟺`, `∨`) that Sections
//! 3–4 of the paper take from Touati's thesis \[15\]. The pre-rewrite
//! explicit-bound-row formulation survives as a differential baseline in
//! [`reference`].
//!
//! Design notes:
//!
//! - **Exactness over scale.** All model data in the register-saturation
//!   formulations is integral with modest magnitudes; `f64` arithmetic with
//!   a `1e-7` tolerance plus integral rounding of bounds is exact in
//!   practice for these instances, and every MILP answer used in the
//!   experiments is cross-checked against a combinatorial solver.
//! - **Dense tableau.** Instances are small (hundreds of rows/columns), so
//!   a cache-friendly dense tableau beats sparse machinery.
//! - **Deterministic.** No randomness anywhere: identical models yield
//!   identical pivots, bounds, and branching decisions.
//!
//! ```
//! use rs_lp::{Model, Sense, VarKind, LinExpr};
//!
//! // max x + 2y  s.t.  x + y <= 4,  x, y ∈ [0, 3] integer
//! let mut m = Model::new(Sense::Maximize);
//! let x = m.add_var("x", VarKind::Integer, 0.0, 3.0);
//! let y = m.add_var("y", VarKind::Integer, 0.0, 3.0);
//! m.add_constraint(LinExpr::from(x) + y, rs_lp::Cmp::Le, 4.0);
//! m.set_objective(LinExpr::from(x) + (2.0, y));
//! let sol = rs_lp::solve(&m, &rs_lp::MilpConfig::default()).unwrap();
//! assert_eq!(sol.objective.round() as i64, 7); // x=1, y=3
//! ```

#![forbid(unsafe_code)]

pub mod audit;
pub mod cancel;
pub mod cuts;
pub mod expr;
pub mod linearize;
pub mod milp;
pub mod model;
pub(crate) mod pool;
pub mod presolve;
pub mod reference;
pub mod simplex;

pub use audit::AuditError;
pub use cancel::{min_deadline, Cancel};
pub use cuts::Cut;
pub use expr::LinExpr;
pub use milp::{
    solve, solve_from, solve_resumable, MilpConfig, MilpError, MilpRun, MilpStats, SearchCheckpoint,
};
pub use model::{Cmp, Model, ModelStats, Sense, VarId, VarKind};
pub use presolve::{presolve, propagate, PresolveOutcome, PresolveStats, Propagation};
pub use simplex::{
    solve_relaxation, solve_with_basis, solve_with_basis_pricing, solve_with_basis_stats,
    tableau_shape, Basis, DiveStep, DiveTableau, LpOutcome, LpStats, Pricing, Solution,
};

/// Numeric tolerance used throughout the solver.
pub const EPS: f64 = 1e-7;

/// Tolerance equality at the solver tolerance [`EPS`]. Raw float `==` on
/// solver values is a determinism hazard (lint rule D-03): two
/// arithmetically equivalent pivot orders can disagree in the last ulp,
/// so every value comparison goes through an explicit tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    (a - b).abs() <= EPS
}

/// Tolerance zero test at the solver tolerance [`EPS`]; the zero-argument
/// twin of [`approx_eq`].
#[inline]
pub fn approx_zero(a: f64) -> bool {
    a.abs() <= EPS
}
