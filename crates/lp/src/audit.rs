//! Pre-solve static model auditor.
//!
//! The solver trusts its inputs structurally: a NaN coefficient, an
//! inverted bound, or a tampered checkpoint does not fail fast — it
//! steers pivots, prunes wrong subtrees, or splices an incoherent
//! frontier, and the damage surfaces far from the cause (if at all).
//! This module is the static layer in front of execution: with
//! [`MilpConfig::audit`](crate::MilpConfig::audit) on (the default in
//! debug builds and CI), every emitted model, every restored or
//! separated cut-pool row, and every accepted checkpoint is checked
//! *before* the search runs, and a violation returns a typed
//! [`AuditError`] through [`MilpError::Audit`](crate::MilpError::Audit)
//! instead of a silent wrong answer.
//!
//! The cut check is the 512-case GMI property test promoted to a
//! deterministic pass over the real pool: cheap per-row invariants
//! always (finite, sorted, in-range, the row keeps at least one point of
//! the bounding box), plus — when the model's full integer bounding box
//! is small enough to enumerate — the exact proptest oracle: no pooled
//! cut may exclude any integer-feasible point.

use crate::cuts::Cut;
use crate::model::{Model, VarKind};

/// Feasibility tolerance of the audit oracle — matches the GMI property
/// test's tolerance so the promoted check accepts exactly what the
/// proptest accepted.
const TOL: f64 = 1e-6;

/// Exhaustive cut validation enumerates the full integer bounding box
/// only up to this many points; larger models get the cheap per-row
/// checks only (still catching NaN/unsorted/box-excluding rows).
const BOX_CAP: u128 = 4096;

/// A static-audit violation: the model, cut pool, or checkpoint is
/// incoherent and the solve refuses to start. Payloads are pre-rendered
/// strings (not raw floats) so the error stays `Eq` and wire-friendly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AuditError {
    /// A variable's domain is invalid (non-finite, NaN, inverted, or a
    /// binary outside `[0, 1]`).
    VarBounds { var: u32, what: String },
    /// A constraint row is malformed (non-finite data, out-of-range or
    /// unsorted terms, unfolded constant).
    Row { row: usize, what: String },
    /// The objective is malformed.
    Objective { what: String },
    /// A pooled cut row is malformed or excludes an integer-feasible
    /// point (an invalid cut silently changes the optimum).
    Cut { index: usize, what: String },
    /// An accepted (version- and fingerprint-matching) checkpoint has an
    /// incoherent payload.
    Checkpoint { what: String },
}

impl std::fmt::Display for AuditError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuditError::VarBounds { var, what } => write!(f, "audit: x{var}: {what}"),
            AuditError::Row { row, what } => write!(f, "audit: constraint {row}: {what}"),
            AuditError::Objective { what } => write!(f, "audit: objective: {what}"),
            AuditError::Cut { index, what } => write!(f, "audit: cut {index}: {what}"),
            AuditError::Checkpoint { what } => write!(f, "audit: checkpoint: {what}"),
        }
    }
}

impl std::error::Error for AuditError {}

/// Validates a model's static structure: finite/non-NaN bounds and
/// coefficients, `lo ≤ hi`, binary consistency, normalized rows
/// (strictly sorted terms, constant folded into the rhs), in-range
/// variable references.
pub fn check_model(model: &Model) -> Result<(), AuditError> {
    let n = model.vars.len();
    for (i, var) in model.vars.iter().enumerate() {
        let var_id = i as u32;
        if !var.lo.is_finite() {
            return Err(AuditError::VarBounds {
                var: var_id,
                what: format!("lower bound {} is not finite", var.lo),
            });
        }
        if var.hi.is_nan() {
            return Err(AuditError::VarBounds {
                var: var_id,
                what: "upper bound is NaN".to_string(),
            });
        }
        if var.lo > var.hi {
            return Err(AuditError::VarBounds {
                var: var_id,
                what: format!("empty domain [{}, {}]", var.lo, var.hi),
            });
        }
        if matches!(var.kind, VarKind::Binary) && (var.lo < 0.0 || var.hi > 1.0) {
            return Err(AuditError::VarBounds {
                var: var_id,
                what: format!("binary domain [{}, {}] outside [0, 1]", var.lo, var.hi),
            });
        }
    }
    for (ri, c) in model.constraints.iter().enumerate() {
        // lint:allow(D-03) structural invariant: add_constraint folds the constant to exactly 0.0
        if c.expr.constant != 0.0 {
            return Err(AuditError::Row {
                row: ri,
                what: format!("constant {} not folded into rhs", c.expr.constant),
            });
        }
        if !c.rhs.is_finite() {
            return Err(AuditError::Row {
                row: ri,
                what: format!("rhs {} is not finite", c.rhs),
            });
        }
        check_terms(&c.expr.terms, n).map_err(|what| AuditError::Row { row: ri, what })?;
    }
    if !model.objective.constant.is_finite() {
        return Err(AuditError::Objective {
            what: format!("constant {} is not finite", model.objective.constant),
        });
    }
    check_terms(&model.objective.terms, n).map_err(|what| AuditError::Objective { what })?;
    Ok(())
}

/// Shared term-list invariants: finite coefficients, in-range variables,
/// strictly sorted by variable (the normalized form every emitter and
/// the fingerprint rely on).
fn check_terms(terms: &[(crate::VarId, f64)], n: usize) -> Result<(), String> {
    let mut prev: Option<u32> = None;
    for &(v, a) in terms {
        if v.index() >= n {
            return Err(format!(
                "references x{} but the model has {n} variables",
                v.0
            ));
        }
        if !a.is_finite() {
            return Err(format!("coefficient {a} on x{} is not finite", v.0));
        }
        if let Some(p) = prev {
            if v.0 <= p {
                return Err(format!(
                    "terms not strictly sorted by variable (x{p} then x{})",
                    v.0
                ));
            }
        }
        prev = Some(v.0);
    }
    Ok(())
}

/// Validates a cut-pool snapshot against the (presolved) base model.
///
/// Always: each row is finite, strictly sorted, in range, and keeps at
/// least one point of the variable bounding box (a row whose minimal lhs
/// over the box already exceeds the rhs excludes *everything*). When the
/// model is all-integral and its bounding box holds at most [`BOX_CAP`]
/// points, additionally runs the exact oracle: every integer-feasible
/// point of the base model must satisfy every cut.
pub fn check_cuts(model: &Model, cuts: &[Cut]) -> Result<(), AuditError> {
    let n = model.num_vars();
    for (i, cut) in cuts.iter().enumerate() {
        if cut.terms.is_empty() {
            return Err(AuditError::Cut {
                index: i,
                what: "empty term list".to_string(),
            });
        }
        if !cut.rhs.is_finite() {
            return Err(AuditError::Cut {
                index: i,
                what: format!("rhs {} is not finite", cut.rhs),
            });
        }
        check_terms(&cut.terms, n).map_err(|what| AuditError::Cut { index: i, what })?;
        // Minimal lhs over the bounding box: Σ min(a·lo, a·hi). If even
        // that exceeds the rhs, the row cuts off the whole box.
        let mut min_lhs = 0.0f64;
        for &(v, a) in &cut.terms {
            let (lo, hi) = model.bounds(v);
            min_lhs += if a >= 0.0 { a * lo } else { a * hi };
        }
        if min_lhs > cut.rhs + TOL {
            return Err(AuditError::Cut {
                index: i,
                what: format!(
                    "excludes the entire bounding box (min lhs {min_lhs} > rhs {})",
                    cut.rhs
                ),
            });
        }
    }
    if cuts.is_empty() {
        return Ok(());
    }
    let Some(widths) = enumerable_box(model) else {
        return Ok(());
    };
    // Mixed-radix walk over the integer bounding box — deterministic and
    // bounded by BOX_CAP points.
    let mut point: Vec<f64> = model.vars.iter().map(|v| v.lo).collect();
    let mut idx = vec![0u64; n];
    loop {
        if model.check_feasible(&point, TOL).is_ok() {
            for (i, cut) in cuts.iter().enumerate() {
                let lhs: f64 = cut.terms.iter().map(|&(v, a)| a * point[v.index()]).sum();
                if lhs > cut.rhs + TOL {
                    return Err(AuditError::Cut {
                        index: i,
                        what: format!(
                            "excludes integer-feasible point {point:?} (lhs {lhs} > rhs {})",
                            cut.rhs
                        ),
                    });
                }
            }
        }
        // Advance the counter.
        let mut carry = true;
        for d in 0..n {
            if !carry {
                break;
            }
            idx[d] += 1;
            if idx[d] < widths[d] {
                point[d] = model.vars[d].lo + idx[d] as f64;
                carry = false;
            } else {
                idx[d] = 0;
                point[d] = model.vars[d].lo;
            }
        }
        if carry {
            return Ok(());
        }
    }
}

/// Integer box widths when the model is exhaustively checkable: every
/// variable integral with finite integral bounds, and at most
/// [`BOX_CAP`] total points.
fn enumerable_box(model: &Model) -> Option<Vec<u64>> {
    let mut widths = Vec::with_capacity(model.vars.len());
    let mut total: u128 = 1;
    for v in &model.vars {
        if matches!(v.kind, VarKind::Continuous) {
            return None;
        }
        if !v.hi.is_finite() {
            return None;
        }
        let w = v.hi.floor() - v.lo.ceil() + 1.0;
        if w < 1.0 || w > BOX_CAP as f64 {
            return None;
        }
        total = total.saturating_mul(w as u128);
        if total > BOX_CAP {
            return None;
        }
        widths.push(w as u64);
    }
    Some(widths)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Sense, VarId};

    fn knapsack() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 3.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 3.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) + (2.0, y));
        m
    }

    #[test]
    fn clean_model_passes() {
        assert_eq!(check_model(&knapsack()), Ok(()));
    }

    #[test]
    fn nan_coefficient_is_rejected() {
        let mut m = knapsack();
        m.add_constraint(LinExpr::from(VarId(0)) + (f64::NAN, VarId(1)), Cmp::Le, 2.0);
        let err = check_model(&m).unwrap_err();
        assert!(matches!(err, AuditError::Row { row: 1, .. }), "{err}");
    }

    #[test]
    fn infinite_rhs_is_rejected() {
        let mut m = knapsack();
        m.add_constraint(LinExpr::from(VarId(0)), Cmp::Le, f64::INFINITY);
        assert!(matches!(
            check_model(&m).unwrap_err(),
            AuditError::Row { row: 1, .. }
        ));
    }

    #[test]
    fn nan_objective_is_rejected() {
        let mut m = knapsack();
        m.set_objective(LinExpr::from(VarId(0)) + (f64::NAN, VarId(1)));
        assert!(matches!(
            check_model(&m).unwrap_err(),
            AuditError::Objective { .. }
        ));
    }

    #[test]
    fn valid_cut_passes_exhaustive_oracle() {
        // x + y <= 4 is the model row itself: trivially valid as a cut.
        let m = knapsack();
        let cut = Cut {
            terms: vec![(VarId(0), 1.0), (VarId(1), 1.0)],
            rhs: 4.0,
        };
        assert_eq!(check_cuts(&m, &[cut]), Ok(()));
    }

    #[test]
    fn cut_excluding_feasible_point_is_rejected() {
        // x + y <= 1 wrongly cuts off the feasible optimum (1, 3).
        let m = knapsack();
        let cut = Cut {
            terms: vec![(VarId(0), 1.0), (VarId(1), 1.0)],
            rhs: 1.0,
        };
        let err = check_cuts(&m, &[cut]).unwrap_err();
        assert!(matches!(err, AuditError::Cut { index: 0, .. }), "{err}");
        assert!(err.to_string().contains("integer-feasible point"), "{err}");
    }

    #[test]
    fn box_excluding_cut_is_rejected_even_without_oracle() {
        // A model too big to enumerate still catches a row whose minimal
        // lhs over the box beats the rhs.
        let mut m = Model::new(Sense::Maximize);
        for i in 0..40 {
            m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 3.0);
        }
        let cut = Cut {
            terms: vec![(VarId(0), 1.0)],
            rhs: -1.0,
        };
        let err = check_cuts(&m, &[cut]).unwrap_err();
        assert!(err.to_string().contains("entire bounding box"), "{err}");
    }

    #[test]
    fn unsorted_cut_terms_are_rejected() {
        let m = knapsack();
        let cut = Cut {
            terms: vec![(VarId(1), 1.0), (VarId(0), 1.0)],
            rhs: 10.0,
        };
        assert!(matches!(
            check_cuts(&m, &[cut]).unwrap_err(),
            AuditError::Cut { index: 0, .. }
        ));
    }
}
