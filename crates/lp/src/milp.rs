//! Deterministic round-based branch-and-bound MILP solver on top of the
//! bounded-variable simplex relaxation.
//!
//! The search is organized as **bulk-synchronous rounds** over a
//! deterministic frontier ([`crate::pool::Frontier`]): each round pops a
//! fixed-size batch of open nodes ([`BATCH`], independent of the thread
//! count), processes every node of the batch against *frozen* round-start
//! state — incumbent score, pseudocost store — and then commits the
//! results sequentially in batch order. Worker threads only parallelize
//! the processing step; they never touch shared mutable state. Node
//! identity is the **branch path** from the root (see [`crate::pool`]), so
//! pop order, node counts, branching decisions, incumbents, and the
//! explored-node sequence are identical at any [`MilpConfig::threads`]
//! value; [`MilpStats::trace_digest`] content-hashes the committed node
//! sequence to pin that invariant.
//!
//! Because rounds commit atomically (an interrupted round is pushed back
//! whole), the committed prefix of an interrupted search is always exactly
//! the prefix of the uninterrupted search. That is what makes
//! [`SearchCheckpoint`] sound: a snapshot of the frontier + incumbent +
//! pseudocost store taken at a round boundary, from which
//! [`solve_from`] resumes the search **node-for-node** — an interrupted-
//! then-resumed run reports the same objective, node count, and trace
//! digest as an uninterrupted one.
//!
//! ## Cold nodes, incremental dives
//!
//! Node relaxations are solved **cold** on purpose: a warm re-solve from
//! the parent basis returns the same objective, but lands on a
//! minimally-repaired vertex whose fractional pattern systematically
//! misleads fractionality-guided branching (measured 100-1000x tree
//! blowups on the register-saturation corpus). On the bounded path the
//! cold node tableau is kept live as a [`crate::simplex::DiveTableau`],
//! which serves two consumers:
//!
//! - the **diving primal heuristic**: nodes whose global index falls on
//!   the dive period dive from their subproblem, fixing near-integral
//!   variables in batches. Every dive step is an in-place bound fold plus
//!   dual repair on the live tableau — **no per-step basis reinstall**
//!   ([`MilpStats::dive_reinstalls`] pins the invariant at zero). The
//!   incumbents those dives find are what turn the near-flat big-M dual
//!   bounds into actual pruning.
//! - **strong-branching-lite probes** for pseudocost initialization (see
//!   below), which clone the tableau (one memcpy ≈ one pivot) and tighten
//!   the probe bound on the copy.
//!
//! ## Pseudocost branching
//!
//! Branching is guided by **pseudocosts**: per-variable estimates of the
//! objective degradation per unit of fractional distance, learned from
//! every child relaxation the search solves. During a round each worker
//! reads a frozen snapshot of the store overlaid with its own node's
//! observations; the observations are replayed into the shared store in
//! batch order at commit time, so the estimates — and the branching they
//! steer — are thread-count invariant. Variables without reliable
//! estimates are initialized by strong-branching-lite probes on the node's
//! dive tableau (bounded per node); the score is the classic product rule
//! `max(down·f⁻, ε) · max(up·f⁺, ε)`. [`MilpConfig::pseudocost`] falls
//! back to most-fractional branching when disabled.
//!
//! The dual bound is rounded to an integer before pruning when
//! [`MilpConfig::integral_objective`] is set (every objective in the
//! register-saturation models has integer coefficients, so `floor`/`ceil`
//! of the relaxation bound is a valid tightening).

use crate::cancel::{min_deadline, Cancel};
use crate::cuts::Cut;
use crate::model::{Model, Sense, VarKind};
use crate::pool::{BranchStep, CutPool, Frontier, Incumbent, Node, PcStore};
use crate::simplex::{DiveStep, DiveTableau, LpOutcome, LpStats, Pricing, Solution};
use crate::{VarId, EPS};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Nodes per search round. A round is the atomic unit of commitment (and
/// of parallelism): its nodes are processed against frozen round-start
/// state and committed in batch order. The constant is independent of
/// [`MilpConfig::threads`] — that is what makes node counts and traces
/// thread-count invariant. Budget and cancellation are checked at round
/// boundaries, so stops can overshoot `node_limit` by up to `BATCH - 1`
/// nodes.
const BATCH: usize = 8;

/// A node dives from its subproblem when its global index falls on this
/// period (power of two; relaxed 4x once an incumbent exists).
const DIVE_PERIOD: usize = 64;

/// Fixpoint rounds for the presolve pass wired in front of the search.
const PRESOLVE_ROUNDS: usize = 4;

/// A pseudocost direction is *reliable* — trusted without further strong
/// branching — once it has this many observations.
const PC_RELIABLE: usize = 1;

/// At most this many strong-branching-lite probes per node (each probe is
/// two tableau clones + dual repairs on the dive tableau).
const SB_PER_NODE: usize = 8;

/// Pivot cap per strong-branching probe repair: a probe is an estimate,
/// not a proof, so its dual repair is cut off early and a capped-out probe
/// simply yields no estimate (falling back to the store averages).
const SB_PIVOT_CAP: usize = 160;

/// Floor for the pseudocost product score: keeps a zero estimate on one
/// side from erasing the other side's signal.
const PC_SCORE_EPS: f64 = 1e-4;

/// Maximum root cut-separation rounds (separate → append → re-solve).
const ROOT_CUT_ROUNDS: usize = 8;

/// Cuts accepted per root separation round (most violated first).
const ROOT_CUTS_PER_ROUND: usize = 20;

/// Cuts accepted per in-tree separation (sparingly: cuts are global rows
/// appended to every relaxation, so tree separation pays for itself only
/// near the top of the tree).
const NODE_CUTS_PER_NODE: usize = 4;

/// In-tree separation only at nodes this deep or shallower (depth 0 is
/// covered by the root loop).
const NODE_CUT_DEPTH: usize = 8;

/// In-tree separation fires when the committed node index matches this
/// mask (a function of the committed index, like dive scheduling — that is
/// what keeps it thread-count invariant).
const NODE_CUT_MASK: usize = 15;

/// Minimum violation for a separated cut to be accepted.
const CUT_MIN_VIOLATION: f64 = 1e-4;

/// Density cap for tableau-derived (Gomory) cuts: rows denser than this
/// tax every later LP solve more than their bound contribution is worth.
const GOMORY_MAX_TERMS: usize = 24;

/// A root separation round must improve the relaxation bound by more than
/// this (in score space) to earn another round.
const ROOT_CUT_MIN_IMPROVE: f64 = 1e-6;

/// A pooled cut slack for this many consecutive root re-solves is retired.
const CUT_MAX_AGE: u32 = 2;

/// Wire-format version of [`SearchCheckpoint`]; a checkpoint from a
/// different version is silently ignored (the solve starts cold).
/// Version 2 added the cut pool and the cut/pricing/propagation counters.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Knobs for the branch-and-bound driver.
#[derive(Clone, Debug)]
pub struct MilpConfig {
    /// Maximum number of branch-and-bound nodes before giving up. Checked
    /// at round boundaries, so an interrupted search may overshoot by up
    /// to `BATCH - 1` nodes. The limit is **cumulative across a resume
    /// chain**: a resumed solve counts the checkpoint's nodes against it,
    /// so resuming an exhausted search needs a larger limit.
    pub node_limit: usize,
    /// Wall-clock budget; `None` disables the check. The deadline is
    /// sampled once per round (a deliberate trade against per-node clock
    /// reads), so the overshoot is one round of node-processing time —
    /// negligible normally, but noticeable on models whose single LP
    /// solves are slow. Pair with `node_limit` for a hard stop.
    pub time_limit: Option<std::time::Duration>,
    /// Declare the dual bound integral and round it when pruning (valid
    /// whenever the objective takes integer values on integer solutions).
    pub integral_objective: bool,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Worker threads processing each round's batch (clamped to ≥ 1).
    /// **Semantically inert**: node counts, traces, incumbents, and the
    /// reported optimum are identical for every value — threads only
    /// change wall-clock time.
    pub threads: usize,
    /// Pseudocost branching with strong-branching-lite reliability
    /// initialization (default). Disabled, the search falls back to
    /// most-fractional branching. The reference-LP path always uses
    /// most-fractional branching (it has no dive tableau to probe). The
    /// optimal objective does not depend on this flag.
    pub pseudocost: bool,
    /// Run the [`crate::presolve`] pass (singleton-row folding, activity
    /// bound tightening, redundant-row elimination) before the search
    /// (default). Presolve never changes the feasible set, so the optimal
    /// objective does not depend on this flag; [`MilpStats::rows`] /
    /// [`MilpStats::cols`] report the presolved tableau shape.
    pub presolve: bool,
    /// Route every node relaxation through the explicit-bound-row
    /// *reference* simplex ([`crate::reference`]) instead of the
    /// bounded-variable path. Test-only differential baseline: no warm
    /// starts, bound rows double the tableau. The optimal objective must
    /// not depend on this flag.
    pub reference_lp: bool,
    /// Pricing rule for the dual-simplex repair passes (dive tableau
    /// tightenings, strong-branching probes, warm re-solves). The default
    /// [`Pricing::DualSteepestEdge`] picks leaving rows by
    /// steepest-edge-normalized infeasibility — markedly fewer pivots per
    /// repair on the register-saturation tableaus; [`Pricing::Dantzig`]
    /// (most-violated row) is the simpler fallback. Cold solves are primal
    /// and unaffected. The optimal objective does not depend on this knob,
    /// but the explored tree may (different optimal-face vertices), so it
    /// is part of the checkpoint fingerprint.
    pub pricing: Pricing,
    /// Separate lifted cover and clique cuts ([`crate::cuts`]) at the root
    /// (rounds until the relaxation bound stops improving) and sparingly
    /// in the tree, managed through a deduplicating pool with
    /// activity-based aging (default). Cuts are globally valid, so they
    /// tighten every node relaxation; they never exclude an integer point,
    /// so the optimal objective does not depend on this flag.
    pub cuts: bool,
    /// Run a cheap bound-propagation pass ([`crate::presolve::propagate`])
    /// on each node's tightened domain before its LP solve (default).
    /// Knapsack-style activity arguments shrink integer domains and detect
    /// infeasible branches without a simplex call
    /// ([`MilpStats::propagation_fathoms`]).
    pub propagation: bool,
    /// Run the [`crate::audit`] static pass before the search: the
    /// emitted model, every restored or root-separated cut-pool row, and
    /// any accepted checkpoint are validated up front, and a violation
    /// returns [`MilpError::Audit`] instead of executing on incoherent
    /// data. Defaults to on in debug builds (and CI, which sets it
    /// explicitly); off in release where inputs come from the audited
    /// emitters. **Not part of the checkpoint fingerprint** — audit
    /// never changes search semantics, so debug and release checkpoints
    /// stay interchangeable.
    pub audit: bool,
    /// Cooperative cancellation token. Its flag is sampled before every
    /// node and inside the simplex pivot loops; its deadline (if any)
    /// merges with `time_limit`. A tripped token stops the search exactly
    /// like an exhausted budget: the best incumbent is returned with
    /// [`MilpStats::proven_optimal`] `false`, a valid
    /// [`MilpStats::dual_bound`], and a [`SearchCheckpoint`] (via
    /// [`solve_resumable`]) — or [`MilpError::BudgetExhausted`] when no
    /// incumbent exists yet. The default token never trips.
    pub cancel: Cancel,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 200_000,
            time_limit: Some(std::time::Duration::from_secs(120)),
            integral_objective: true,
            int_tol: 1e-6,
            threads: 1,
            pseudocost: true,
            presolve: true,
            reference_lp: false,
            pricing: Pricing::DualSteepestEdge,
            cuts: true,
            propagation: true,
            audit: cfg!(debug_assertions),
            cancel: Cancel::new(),
        }
    }
}

impl MilpConfig {
    /// The default configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        MilpConfig {
            threads,
            ..MilpConfig::default()
        }
    }
}

/// Why no solution was returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MilpError {
    /// The model has no integer-feasible point.
    Infeasible,
    /// The relaxation (and hence the MILP) is unbounded.
    Unbounded,
    /// Node or time budget exhausted before proving optimality, and no
    /// incumbent was found.
    BudgetExhausted,
    /// The simplex reported unrecoverable numerical trouble (tiny pivots)
    /// and no incumbent was found.
    Numerical,
    /// The pre-solve static audit ([`MilpConfig::audit`]) rejected the
    /// model, cut pool, or resume checkpoint before the search started.
    Audit(crate::audit::AuditError),
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "MILP infeasible"),
            MilpError::Unbounded => write!(f, "MILP unbounded"),
            MilpError::BudgetExhausted => write!(f, "MILP budget exhausted without incumbent"),
            MilpError::Numerical => write!(f, "MILP abandoned on numerical trouble"),
            MilpError::Audit(e) => write!(f, "MILP rejected by static audit: {e}"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Solve statistics, attached to every solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct MilpStats {
    /// Branch-and-bound nodes explored (committed).
    pub nodes: usize,
    /// LP relaxations solved (cold node solves plus every incremental
    /// re-solve on a dive tableau: dive steps and strong-branching
    /// probes).
    pub lp_solves: usize,
    /// Incremental warm re-solves on a live [`DiveTableau`] (the diving
    /// heuristic's chain steps; tree nodes deliberately solve cold).
    pub warm_solves: usize,
    /// Warm re-solves whose dual repair converged — to an optimum *or* to
    /// an infeasibility proof (both are successful warm outcomes; only a
    /// stalled repair discards the tableau). Dive steps are pure bound
    /// tightenings, so this normally equals [`MilpStats::warm_solves`].
    pub warm_hits: usize,
    /// Basis reinstalls performed on behalf of dive steps. The incremental
    /// dive tableau applies bound tightenings in place — **no per-step
    /// reinstall** — so this is zero by construction; the counter is wired
    /// end-to-end so the perf report can pin the invariant (the previous
    /// engine re-installed the parent basis on every dive step, which
    /// dominated its warm cost).
    pub dive_reinstalls: usize,
    /// Branching decisions taken purely from trusted (reliable)
    /// accumulated pseudocosts — no strong-branching probe needed at that
    /// node.
    pub pseudocost_branches: usize,
    /// Strong-branching-lite probes performed to initialize unreliable
    /// pseudocosts (each probes both directions of one variable).
    pub strong_branch_probes: usize,
    /// Total simplex pivots (tableau eliminations, including warm-start
    /// basis reinstalls) across all node LPs.
    pub pivots: usize,
    /// Total bound flips (rank-1 rhs updates in place of pivots).
    pub bound_flips: usize,
    /// Pivots priced by the dual steepest-edge rule (a subset of
    /// [`MilpStats::pivots`]; zero when [`MilpConfig::pricing`] is
    /// Dantzig).
    pub dse_pivots: usize,
    /// Cutting planes accepted into the cut pool (root + in-tree), net of
    /// dedup, not counting later retirements.
    pub cuts_added: usize,
    /// Root cut-separation rounds that accepted at least one cut.
    pub cut_rounds: usize,
    /// Nodes fathomed by the per-node bound-propagation pass — branches
    /// proved infeasible without an LP solve.
    pub propagation_fathoms: usize,
    /// Root relaxation bound before any cuts, in objective space (`NaN`
    /// when the cut loop never ran: cuts disabled, or resumed past it).
    pub root_bound_pre_cuts: f64,
    /// Root relaxation bound after the last cut round, in objective space
    /// (`NaN` when the cut loop never ran).
    pub root_bound_post_cuts: f64,
    /// Relaxation tableau rows **including appended cut rows**. Equals the
    /// structural constraint count on the bounded-variable path (zero
    /// bound rows); the reference path adds one row per finite upper
    /// bound.
    pub rows: usize,
    /// Relaxation tableau columns (structural + slack).
    pub cols: usize,
    /// True iff optimality was proven (budget not exhausted, no numerical
    /// trouble encountered).
    pub proven_optimal: bool,
    /// Best-possible objective value in the model's sense: an upper bound
    /// for maximization, lower for minimization. When optimality was
    /// proven this equals the objective; after an interrupted search it is
    /// the max of the incumbent score, every abandoned subproblem's
    /// relaxation bound, and the best open frontier bound, mapped back to
    /// objective space. May be infinite when the search was interrupted
    /// before the root relaxation solved.
    pub dual_bound: f64,
    /// FNV-1a content hash over the committed explored-node sequence
    /// (each node's depth and branch path, in commit order). Identical for
    /// every thread count, and — across an interrupt/checkpoint/resume
    /// chain — identical to the uninterrupted run's digest. Two solves of
    /// the same model with the same semantic configuration that report
    /// different digests explored different trees.
    pub trace_digest: u64,
    /// True when this solve resumed from an accepted [`SearchCheckpoint`]
    /// instead of starting cold.
    pub resumed: bool,
    /// True when the pre-solve static audit ([`MilpConfig::audit`]) ran
    /// on this solve's inputs.
    pub audited: bool,
}

/// An integer-feasible solution plus solve statistics.
#[derive(Clone, Debug)]
pub struct MilpSolution {
    /// Value per model variable.
    pub values: Vec<f64>,
    /// Objective value in the model's sense.
    pub objective: f64,
    /// Search statistics.
    pub stats: MilpStats,
}

impl From<MilpSolution> for Solution {
    fn from(s: MilpSolution) -> Solution {
        Solution {
            values: s.values,
            objective: s.objective,
        }
    }
}

/// Outcome of a resumable solve: the solver result plus, when the search
/// was interrupted (budget, deadline, or cancellation), a checkpoint that
/// resumes it exactly where it stopped.
#[derive(Clone, Debug)]
pub struct MilpRun {
    /// The solver result, exactly as [`solve`] would report it.
    pub result: Result<MilpSolution, MilpError>,
    /// Present iff the search was interrupted. Feed it back through
    /// [`solve_from`] (with a larger budget / fresh deadline) to continue
    /// node-for-node.
    pub checkpoint: Option<SearchCheckpoint>,
}

// ---------------------------------------------------------------------------
// FNV-1a hashing: the trace digest and the model/config fingerprint.
// ---------------------------------------------------------------------------

/// Incremental 64-bit FNV-1a hasher. Used both for the explored-node trace
/// digest (whose running state is persisted in checkpoints so a resumed
/// run continues the same hash chain) and for the model/config
/// fingerprint that guards checkpoint compatibility.
#[derive(Clone, Copy, Debug)]
struct Fnv(u64);

impl Fnv {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    fn new() -> Self {
        Fnv(Self::OFFSET)
    }

    fn from_state(state: u64) -> Self {
        Fnv(state)
    }

    fn byte(&mut self, b: u8) {
        self.0 = (self.0 ^ b as u64).wrapping_mul(Self::PRIME);
    }

    fn bytes(&mut self, bs: &[u8]) {
        for &b in bs {
            self.byte(b);
        }
    }

    fn u64v(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64v(&mut self, v: f64) {
        self.u64v(v.to_bits());
    }

    fn state(self) -> u64 {
        self.0
    }
}

/// Fingerprint of the *original* (pre-presolve) model plus every
/// configuration knob that affects search semantics. Budget knobs
/// (`node_limit`, `time_limit`), `threads`, and the cancel token are
/// deliberately excluded — a checkpoint exists precisely to be resumed
/// with a different budget, and threads are semantically inert.
fn fingerprint(model: &Model, cfg: &MilpConfig) -> u64 {
    let mut h = Fnv::new();
    h.byte(match model.sense {
        Sense::Maximize => 1,
        Sense::Minimize => 2,
    });
    h.u64v(model.vars.len() as u64);
    for v in &model.vars {
        h.byte(match v.kind {
            VarKind::Continuous => 0,
            VarKind::Integer => 1,
            VarKind::Binary => 2,
        });
        h.f64v(v.lo);
        h.f64v(v.hi);
    }
    h.u64v(model.constraints.len() as u64);
    for c in &model.constraints {
        h.u64v(c.expr.terms.len() as u64);
        for &(v, coef) in &c.expr.terms {
            h.u64v(v.0 as u64);
            h.f64v(coef);
        }
        h.f64v(c.expr.constant);
        h.byte(match c.cmp {
            crate::Cmp::Le => 0,
            crate::Cmp::Ge => 1,
            crate::Cmp::Eq => 2,
        });
        h.f64v(c.rhs);
    }
    h.u64v(model.objective.terms.len() as u64);
    for &(v, coef) in &model.objective.terms {
        h.u64v(v.0 as u64);
        h.f64v(coef);
    }
    h.f64v(model.objective.constant);
    h.f64v(cfg.int_tol);
    h.byte(cfg.integral_objective as u8);
    h.byte(cfg.pseudocost as u8);
    h.byte(cfg.presolve as u8);
    h.byte(cfg.reference_lp as u8);
    h.byte(match cfg.pricing {
        Pricing::Dantzig => 0,
        Pricing::DualSteepestEdge => 1,
    });
    h.byte(cfg.cuts as u8);
    h.byte(cfg.propagation as u8);
    h.state()
}

// ---------------------------------------------------------------------------
// SearchCheckpoint: the serializable snapshot.
// ---------------------------------------------------------------------------

/// A serializable snapshot of an interrupted branch-and-bound search: the
/// open frontier, the incumbent, the pseudocost store, all statistics
/// counters, and the running trace-digest state — everything needed for
/// [`solve_from`] to continue **node-for-node** as if the search had
/// never stopped.
///
/// Checkpoints are taken only at round boundaries (rounds commit
/// atomically), which is what makes the resumed run bit-identical to the
/// uninterrupted one. All floating-point payloads are stored as IEEE-754
/// bit patterns (`u64`) because the JSON wire format cannot represent
/// `±∞` and round-tripping through decimal could perturb bounds.
///
/// A checkpoint is bound to its model and semantic configuration by a
/// [`fingerprint`]; [`solve_resumable`] silently ignores a checkpoint that
/// does not match (the solve starts cold, flagged by
/// [`MilpStats::resumed`] `false`) — robustness over strictness, since
/// upper layers key checkpoints by request cache keys that could collide.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SearchCheckpoint {
    version: u32,
    fingerprint: u64,
    nodes: usize,
    digest: u64,
    root_dive_done: bool,
    /// Whether the root cut loop completed (it runs before the root dive;
    /// an interrupted loop is discarded whole and re-run on resume).
    root_cuts_done: bool,
    /// Root relaxation score before/after cuts, as f64 bits (NaN bits when
    /// the loop never ran).
    root_bound_pre: u64,
    root_bound_post: u64,
    numerical: bool,
    /// Max abandoned (numerical-skip) score, as f64 bits.
    abandoned: u64,
    /// How many resumes preceded this checkpoint (0 = first interruption).
    resumed_chain: u32,
    frontier: Vec<CkptNode>,
    incumbent: Option<CkptIncumbent>,
    /// The cut pool in insertion order — the resumed run appends these
    /// rows to its search model before touching the frontier, so every
    /// node re-solves against the identical relaxation.
    cuts: Vec<CkptCut>,
    pc: CkptPc,
    counters: CkptCounters,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptCut {
    /// `(var, coefficient bits)` pairs, sorted by var.
    terms: Vec<(u32, u64)>,
    /// Rhs as f64 bits.
    rhs: u64,
}

impl CkptCut {
    fn from_cut(c: &Cut) -> CkptCut {
        CkptCut {
            terms: c.terms.iter().map(|&(v, a)| (v.0, a.to_bits())).collect(),
            rhs: c.rhs.to_bits(),
        }
    }

    fn to_cut(&self) -> Cut {
        Cut {
            terms: self
                .terms
                .iter()
                .map(|&(v, a)| (VarId(v), f64::from_bits(a)))
                .collect(),
            rhs: f64::from_bits(self.rhs),
        }
    }
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptNode {
    path: Vec<u8>,
    depth: usize,
    /// Inherited dual bound, as f64 bits.
    score: u64,
    /// Bound overrides `(var, lo bits, hi bits)`.
    bounds: Vec<(u32, u64, u64)>,
    branch: Option<CkptBranch>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptBranch {
    var: u32,
    frac: u64,
    parent_score: u64,
    up: bool,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptIncumbent {
    /// Objective as f64 bits.
    objective: u64,
    /// Values as f64 bits.
    values: Vec<u64>,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct CkptPc {
    up_sum: Vec<u64>,
    up_cnt: Vec<usize>,
    down_sum: Vec<u64>,
    down_cnt: Vec<usize>,
    glob_sum: u64,
    glob_cnt: usize,
}

#[derive(Clone, Debug, Default, Serialize, Deserialize)]
struct CkptCounters {
    lp_solves: usize,
    warm_solves: usize,
    warm_hits: usize,
    dive_reinstalls: usize,
    pseudocost_branches: usize,
    strong_branch_probes: usize,
    pivots: usize,
    bound_flips: usize,
    dse_pivots: usize,
    cuts_added: usize,
    cut_rounds: usize,
    propagation_fathoms: usize,
}

impl CkptNode {
    fn from_node(n: Node) -> CkptNode {
        CkptNode {
            path: n.path,
            depth: n.depth,
            score: n.score.to_bits(),
            bounds: n
                .bounds
                .into_iter()
                .map(|(v, lo, hi)| (v.0, lo.to_bits(), hi.to_bits()))
                .collect(),
            branch: n.branch.map(|b| CkptBranch {
                var: b.var.0,
                frac: b.frac.to_bits(),
                parent_score: b.parent_score.to_bits(),
                up: b.up,
            }),
        }
    }

    fn to_node(&self) -> Node {
        Node {
            bounds: self
                .bounds
                .iter()
                .map(|&(v, lo, hi)| (VarId(v), f64::from_bits(lo), f64::from_bits(hi)))
                .collect(),
            depth: self.depth,
            score: f64::from_bits(self.score),
            branch: self.branch.as_ref().map(|b| BranchStep {
                var: VarId(b.var),
                frac: f64::from_bits(b.frac),
                parent_score: f64::from_bits(b.parent_score),
                up: b.up,
            }),
            path: self.path.clone(),
        }
    }
}

impl SearchCheckpoint {
    /// Serializes the checkpoint to its JSON wire format. The output is a
    /// plain JSON object (no floats — every real is an integer bit
    /// pattern), safe to embed as a string field in a larger document.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("checkpoint has no unserializable values")
    }

    /// Parses a checkpoint from its JSON wire format.
    pub fn from_json(s: &str) -> Result<SearchCheckpoint, String> {
        let v = serde_json::from_str(s).map_err(|e| format!("checkpoint parse: {e}"))?;
        SearchCheckpoint::from_value(&v).map_err(|e| format!("checkpoint shape: {e}"))
    }

    /// Whether this checkpoint belongs to the given model and semantic
    /// configuration (and speaks the current wire version). A mismatched
    /// checkpoint passed to [`solve_resumable`] is ignored, not an error.
    pub fn matches(&self, model: &Model, cfg: &MilpConfig) -> bool {
        self.version == CHECKPOINT_VERSION && self.fingerprint == fingerprint(model, cfg)
    }

    /// Committed nodes at the time of the snapshot.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// How many interrupt/resume cycles preceded this checkpoint
    /// (0 = taken by a cold run's first interruption).
    pub fn resumed_chain(&self) -> u32 {
        self.resumed_chain
    }

    /// Structural sanity against the (presolved) variable count: a
    /// fingerprint collision must not index out of bounds.
    fn structurally_valid(&self, n: usize) -> bool {
        self.pc.up_sum.len() == n
            && self.pc.up_cnt.len() == n
            && self.pc.down_sum.len() == n
            && self.pc.down_cnt.len() == n
            && self.incumbent.as_ref().is_none_or(|i| i.values.len() == n)
            && self.frontier.iter().all(|nd| {
                nd.bounds.iter().all(|&(v, _, _)| (v as usize) < n)
                    && nd.branch.as_ref().is_none_or(|b| (b.var as usize) < n)
            })
            && self
                .cuts
                .iter()
                .all(|c| c.terms.iter().all(|&(v, _)| (v as usize) < n))
    }

    /// Full payload-coherence audit of an *accepted* (version- and
    /// fingerprint-matching) checkpoint, run by [`solve_resumable`] when
    /// [`MilpConfig::audit`] is on. Subsumes [`structurally_valid`] and
    /// additionally decodes every stored bit pattern: NaN where a real
    /// bound/score/coefficient belongs, inverted or non-finite node
    /// domains, and malformed pooled cut rows are all typed errors —
    /// a checkpoint this corrupt means persisted state was damaged, and
    /// silently cold-starting would hide it.
    ///
    /// [`structurally_valid`]: SearchCheckpoint::structurally_valid
    fn audit_coherence(&self, n: usize) -> Result<(), crate::audit::AuditError> {
        use crate::audit::AuditError;
        let ck = |what: String| Err(AuditError::Checkpoint { what });
        if !self.structurally_valid(n) {
            return ck(format!(
                "shape does not match the model ({n} vars): pseudocost/incumbent/frontier arity"
            ));
        }
        if let Some(inc) = &self.incumbent {
            if !f64::from_bits(inc.objective).is_finite() {
                return ck("incumbent objective is not finite".to_string());
            }
            if inc.values.iter().any(|&b| !f64::from_bits(b).is_finite()) {
                return ck("incumbent carries a non-finite value".to_string());
            }
        }
        for (i, nd) in self.frontier.iter().enumerate() {
            if f64::from_bits(nd.score).is_nan() {
                return ck(format!("frontier node {i}: score is NaN"));
            }
            // Bound overrides are half-open tightenings: ±∞ endpoints are
            // by design ("unchanged side"), and an empty intersection
            // prunes the node gracefully — only NaN is incoherent.
            for &(v, lob, hib) in &nd.bounds {
                let (lo, hi) = (f64::from_bits(lob), f64::from_bits(hib));
                if lo.is_nan() || hi.is_nan() {
                    return ck(format!("frontier node {i}: NaN bound override for x{v}"));
                }
            }
            if let Some(b) = &nd.branch {
                if !f64::from_bits(b.frac).is_finite() {
                    return ck(format!("frontier node {i}: branch fraction is not finite"));
                }
            }
        }
        for (i, c) in self.cuts.iter().enumerate() {
            if !f64::from_bits(c.rhs).is_finite() {
                return ck(format!("cut {i}: rhs is not finite"));
            }
            let mut prev: Option<u32> = None;
            for &(v, ab) in &c.terms {
                if !f64::from_bits(ab).is_finite() {
                    return ck(format!("cut {i}: coefficient on x{v} is not finite"));
                }
                if prev.is_some_and(|p| v <= p) {
                    return ck(format!("cut {i}: terms not strictly sorted by variable"));
                }
                prev = Some(v);
            }
        }
        let pc_sums = self
            .pc
            .up_sum
            .iter()
            .chain(&self.pc.down_sum)
            .chain(std::iter::once(&self.pc.glob_sum));
        if pc_sums.into_iter().any(|&b| !f64::from_bits(b).is_finite()) {
            return ck("pseudocost store carries a non-finite sum".to_string());
        }
        if f64::from_bits(self.abandoned).is_nan() {
            return ck("abandoned-score watermark is NaN".to_string());
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Entry points.
// ---------------------------------------------------------------------------

/// Solves the mixed-integer program. Returns the optimal solution, or the
/// best incumbent if the budget ran out (flagged in
/// [`MilpStats::proven_optimal`]).
///
/// With [`MilpConfig::presolve`] (the default) the model first runs
/// through [`crate::presolve`]: singleton rows fold into bounds, activity
/// arguments tighten bounds and drop redundant rows, and a
/// presolve-proven-infeasible model returns [`MilpError::Infeasible`]
/// without any search. Presolve keeps the variable set (and the integer
/// feasible set) intact, so the returned values are valid for the original
/// model.
pub fn solve(model: &Model, cfg: &MilpConfig) -> Result<MilpSolution, MilpError> {
    solve_resumable(model, cfg, None).result
}

/// [`solve`], but interruptions (budget, deadline, cancellation) also
/// yield a [`SearchCheckpoint`] in the returned [`MilpRun`], and an
/// accepted `resume` checkpoint continues a previous search node-for-node
/// instead of starting cold.
///
/// A `resume` checkpoint is **validated, not trusted**: it must speak the
/// current wire version, fingerprint-match the model and semantic config,
/// and be structurally sound — otherwise it is silently dropped and the
/// solve starts cold ([`MilpStats::resumed`] reports which happened).
pub fn solve_resumable(
    model: &Model,
    cfg: &MilpConfig,
    resume: Option<&SearchCheckpoint>,
) -> MilpRun {
    if cfg.audit {
        if let Err(e) = crate::audit::check_model(model) {
            return MilpRun {
                result: Err(MilpError::Audit(e)),
                checkpoint: None,
            };
        }
    }
    let fp = fingerprint(model, cfg);
    let reduced;
    let pre = if cfg.presolve {
        match crate::presolve::presolve(model, PRESOLVE_ROUNDS) {
            crate::presolve::PresolveOutcome::Infeasible => {
                return MilpRun {
                    result: Err(MilpError::Infeasible),
                    checkpoint: None,
                }
            }
            crate::presolve::PresolveOutcome::Reduced { model: m, .. } => {
                reduced = m;
                &reduced
            }
        }
    } else {
        model
    };
    // A checkpoint that does not speak the current wire version or does
    // not fingerprint-match stays a *silent* cold start — collisions are
    // expected (upper layers key checkpoints by cache keys). One that
    // claims to match and then turns out incoherent is another matter:
    // with the audit on it is a typed error, because executing it (or
    // silently discarding it) would mask corruption of persisted state.
    let resume = resume.filter(|ck| ck.version == CHECKPOINT_VERSION && ck.fingerprint == fp);
    let resume = if cfg.audit {
        if let Some(ck) = resume {
            if let Err(e) = ck.audit_coherence(pre.num_vars()) {
                return MilpRun {
                    result: Err(MilpError::Audit(e)),
                    checkpoint: None,
                };
            }
        }
        resume
    } else {
        resume.filter(|ck| ck.structurally_valid(pre.num_vars()))
    };
    solve_presolved(pre, cfg, fp, resume)
}

/// Resumes a search from a checkpoint: shorthand for
/// [`solve_resumable`]`(model, cfg, Some(checkpoint))`. The model and the
/// semantic configuration must match the ones that produced the
/// checkpoint (budget knobs and `threads` may differ); a mismatch falls
/// back to a cold solve.
pub fn solve_from(model: &Model, cfg: &MilpConfig, checkpoint: &SearchCheckpoint) -> MilpRun {
    solve_resumable(model, cfg, Some(checkpoint))
}

// ---------------------------------------------------------------------------
// Search context and state.
// ---------------------------------------------------------------------------

/// Shared, read-only search context (safe to hand to worker threads).
struct Ctx<'a> {
    model: &'a Model,
    cfg: &'a MilpConfig,
    /// `+1` for maximize, `-1` for minimize: `score = dir · objective`,
    /// larger always better.
    dir: f64,
    original_bounds: Vec<(f64, f64)>,
    /// Per variable: is it integral (integer or binary)?
    integral: Vec<bool>,
    deadline: Option<Instant>,
}

impl Ctx<'_> {
    /// Integral rounding of a dual bound, in score space.
    fn tighten_score(&self, score: f64) -> f64 {
        if self.cfg.integral_objective && score.is_finite() {
            // score = dir·obj; maximizing the score, the valid integral
            // tightening is always floor (it is ceil in minimize objective
            // space, which is floor after negation).
            (score + self.cfg.int_tol).floor()
        } else {
            score
        }
    }

    /// Feasibility tolerance for offering an incumbent. Deliberately
    /// *capped* below the integrality tolerance: `int_tol` governs which
    /// LP values count as integral, but a rounding that violates a
    /// constraint by up to `int_tol` must never be reported as an optimum
    /// — with a loose `int_tol` the gate would otherwise whitewash exactly
    /// the violations the rounding introduced.
    fn feas_tol(&self) -> f64 {
        self.cfg.int_tol.min(1e-5)
    }
}

/// Per-solve statistics counters (also the per-node local accumulator a
/// worker charges into, merged at commit time).
#[derive(Clone, Copy, Debug, Default)]
struct LocalCounters {
    lp_solves: usize,
    warm_solves: usize,
    warm_hits: usize,
    dive_reinstalls: usize,
    pseudocost_branches: usize,
    strong_branch_probes: usize,
    pivots: usize,
    bound_flips: usize,
    dse_pivots: usize,
    cuts_added: usize,
    cut_rounds: usize,
    propagation_fathoms: usize,
}

impl LocalCounters {
    fn add(&mut self, o: &LocalCounters) {
        self.lp_solves += o.lp_solves;
        self.warm_solves += o.warm_solves;
        self.warm_hits += o.warm_hits;
        self.dive_reinstalls += o.dive_reinstalls;
        self.pseudocost_branches += o.pseudocost_branches;
        self.strong_branch_probes += o.strong_branch_probes;
        self.pivots += o.pivots;
        self.bound_flips += o.bound_flips;
        self.dse_pivots += o.dse_pivots;
        self.cuts_added += o.cuts_added;
        self.cut_rounds += o.cut_rounds;
        self.propagation_fathoms += o.propagation_fathoms;
    }
}

/// What processing one node produced, to be committed by the driver (or
/// discarded whole if any node of the round was interrupted).
enum OutcomeKind {
    /// Pruned, infeasible, or an integral leaf — no children (any
    /// incumbent offer rides in [`NodeOutcome::offers`]).
    Pruned,
    /// Branched: `(near, far)` children to push.
    Children(Box<(Node, Node)>),
    /// Numerically abandoned subtree; the payload score counts against
    /// the dual bound and surrenders the optimality proof.
    Numerical(f64),
    /// Unbounded relaxation at the root: the MILP is unbounded.
    Unbounded,
}

struct NodeOutcome {
    kind: OutcomeKind,
    records: Vec<(VarId, bool, f64)>,
    offers: Vec<(f64, f64, Vec<f64>)>,
    /// Cuts separated at this node (already violation-filtered and
    /// deduplicated against the frozen round-start pool). The driver
    /// deduplicates again at commit time — two nodes of one round can
    /// separate the same cut — and appends survivors to every model.
    cuts: Vec<Cut>,
    counters: LocalCounters,
    /// True when cancellation or a deadline altered (or could have
    /// altered) this node's processing. The driver aborts the whole round:
    /// an interrupted node's outcome is never committed, so the committed
    /// prefix stays deterministic.
    interrupted: bool,
}

/// A worker's view of one node: frozen round-start state plus local
/// effect logs. Nothing here is shared — `pc` is a private clone of the
/// round-start store that overlays the node's own observations (so
/// probes within the node see them), and every effect is logged for the
/// driver to replay in batch order at commit time.
struct NodeRun<'c, 'a> {
    ctx: &'c Ctx<'a>,
    /// Frozen round-start incumbent score, raised by this node's own
    /// offers (pruning gate).
    inc_score: f64,
    pc: PcStore,
    records: Vec<(VarId, bool, f64)>,
    offers: Vec<(f64, f64, Vec<f64>)>,
    cuts: Vec<Cut>,
    counters: LocalCounters,
    interrupted: bool,
}

impl<'c, 'a> NodeRun<'c, 'a> {
    fn new(ctx: &'c Ctx<'a>, inc_score: f64, pc: PcStore) -> Self {
        NodeRun {
            ctx,
            inc_score,
            pc,
            records: Vec::new(),
            offers: Vec::new(),
            cuts: Vec::new(),
            counters: LocalCounters::default(),
            interrupted: false,
        }
    }

    /// Does a candidate score strictly beat the best incumbent this node
    /// can see (round-start incumbent + own offers)?
    fn improves(&self, score: f64) -> bool {
        score > self.inc_score + EPS
    }

    /// Logs an incumbent offer. The driver replays offers through the
    /// deterministic [`Incumbent`] gate at commit time; locally the offer
    /// only raises this node's pruning floor.
    fn offer(&mut self, objective: f64, values: Vec<f64>) {
        let score = self.ctx.dir * objective;
        if score > self.inc_score {
            self.inc_score = score;
        }
        self.offers.push((score, objective, values));
    }

    /// Logs one pseudocost observation, also applying it to the local
    /// overlay store so later probes in this node see it.
    fn record(&mut self, v: VarId, up: bool, per_unit: f64) {
        self.pc.record(v, up, per_unit);
        self.records.push((v, up, per_unit));
    }

    /// Charges one LP solve's [`LpStats`]. When the solve ran on behalf of
    /// a dive chain (`dive`), its basis-reinstall count feeds
    /// [`MilpStats::dive_reinstalls`] — the incremental dive tableau
    /// performs none, so any nonzero there means a dive step regressed to
    /// a reinstalling warm solve.
    fn charge_lp(&mut self, st: &LpStats, dive: bool) {
        self.counters.lp_solves += 1;
        self.counters.pivots += st.pivots;
        self.counters.bound_flips += st.bound_flips;
        self.counters.dse_pivots += st.dse_pivots;
        if dive {
            self.counters.dive_reinstalls += st.reinstalls;
        }
    }

    /// Charges the pivot/flip work a dive tableau performed since
    /// `before` (its [`DiveTableau::work`] snapshot).
    fn charge_dive_work(&mut self, dt: &DiveTableau, before: (usize, usize, usize)) {
        let (p, f, d) = dt.work();
        self.counters.pivots += p - before.0;
        self.counters.bound_flips += f - before.1;
        self.counters.dse_pivots += d - before.2;
    }

    /// Marks the node interrupted if the cancel flag is set — called at
    /// every early-exit point whose timing depends on cancellation, so a
    /// perturbed computation is never committed.
    fn interrupt_if_cancelled(&mut self) {
        if self.ctx.cfg.cancel.is_set() {
            self.interrupted = true;
        }
    }

    fn finish(self, kind: OutcomeKind) -> NodeOutcome {
        NodeOutcome {
            kind,
            records: self.records,
            offers: self.offers,
            cuts: self.cuts,
            counters: self.counters,
            interrupted: self.interrupted,
        }
    }
}

/// Driver-owned mutable search state: everything a checkpoint persists.
struct SearchState {
    frontier: Frontier,
    incumbent: Incumbent,
    pc: PcStore,
    /// The committed cut pool, in insertion order (part of the
    /// deterministic search state — checkpointed and restored verbatim).
    pool: CutPool,
    nodes: usize,
    digest: Fnv,
    counters: LocalCounters,
    numerical: bool,
    /// Max score over numerically abandoned subproblems, `-∞` when none.
    abandoned: f64,
    root_dive_done: bool,
    root_cuts_done: bool,
    /// Root relaxation score before/after cuts (NaN = loop never ran).
    root_bound_pre: f64,
    root_bound_post: f64,
    resumed_chain: u32,
    resumed: bool,
}

impl SearchState {
    fn fresh(num_vars: usize) -> SearchState {
        SearchState {
            frontier: Frontier::seeded(),
            incumbent: Incumbent::new(),
            pc: PcStore::new(num_vars),
            pool: CutPool::new(),
            nodes: 0,
            digest: Fnv::new(),
            counters: LocalCounters::default(),
            numerical: false,
            abandoned: f64::NEG_INFINITY,
            root_dive_done: false,
            root_cuts_done: false,
            root_bound_pre: f64::NAN,
            root_bound_post: f64::NAN,
            resumed_chain: 0,
            resumed: false,
        }
    }

    fn restore(ck: &SearchCheckpoint, dir: f64) -> SearchState {
        let mut frontier = Frontier::new();
        for nd in &ck.frontier {
            frontier.push(nd.to_node());
        }
        let incumbent = match &ck.incumbent {
            Some(i) => {
                let objective = f64::from_bits(i.objective);
                Incumbent::from_parts(
                    objective,
                    i.values.iter().map(|&b| f64::from_bits(b)).collect(),
                    dir * objective,
                )
            }
            None => Incumbent::new(),
        };
        let mut pool = CutPool::new();
        for c in &ck.cuts {
            pool.insert(c.to_cut());
        }
        SearchState {
            frontier,
            incumbent,
            pool,
            pc: PcStore::from_parts(
                ck.pc.up_sum.iter().map(|&b| f64::from_bits(b)).collect(),
                ck.pc.up_cnt.clone(),
                ck.pc.down_sum.iter().map(|&b| f64::from_bits(b)).collect(),
                ck.pc.down_cnt.clone(),
                f64::from_bits(ck.pc.glob_sum),
                ck.pc.glob_cnt,
            ),
            nodes: ck.nodes,
            digest: Fnv::from_state(ck.digest),
            counters: LocalCounters {
                lp_solves: ck.counters.lp_solves,
                warm_solves: ck.counters.warm_solves,
                warm_hits: ck.counters.warm_hits,
                dive_reinstalls: ck.counters.dive_reinstalls,
                pseudocost_branches: ck.counters.pseudocost_branches,
                strong_branch_probes: ck.counters.strong_branch_probes,
                pivots: ck.counters.pivots,
                bound_flips: ck.counters.bound_flips,
                dse_pivots: ck.counters.dse_pivots,
                cuts_added: ck.counters.cuts_added,
                cut_rounds: ck.counters.cut_rounds,
                propagation_fathoms: ck.counters.propagation_fathoms,
            },
            numerical: ck.numerical,
            abandoned: f64::from_bits(ck.abandoned),
            root_dive_done: ck.root_dive_done,
            root_cuts_done: ck.root_cuts_done,
            root_bound_pre: f64::from_bits(ck.root_bound_pre),
            root_bound_post: f64::from_bits(ck.root_bound_post),
            resumed_chain: ck.resumed_chain + 1,
            resumed: true,
        }
    }

    /// Replays a node's logged effects in order: counters, pseudocost
    /// observations, incumbent offers.
    fn absorb_effects(&mut self, out: NodeOutcome) -> OutcomeKind {
        self.counters.add(&out.counters);
        for (v, up, x) in out.records {
            self.pc.record(v, up, x);
        }
        for (score, objective, values) in out.offers {
            self.incumbent.offer(score, objective, values, EPS);
        }
        out.kind
    }

    /// Commits one processed node in batch order. Returns `true` when the
    /// node proved the MILP unbounded.
    fn commit_node(&mut self, node: &Node, out: NodeOutcome) -> bool {
        self.nodes += 1;
        self.digest.u64v(node.depth as u64);
        self.digest.u64v(node.path.len() as u64);
        self.digest.bytes(&node.path);
        match self.absorb_effects(out) {
            OutcomeKind::Pruned => false,
            OutcomeKind::Children(b) => {
                let (near, far) = *b;
                self.frontier.push(near);
                self.frontier.push(far);
                false
            }
            OutcomeKind::Numerical(score) => {
                self.numerical = true;
                if score > self.abandoned {
                    self.abandoned = score;
                }
                false
            }
            OutcomeKind::Unbounded => true,
        }
    }

    /// Snapshots the interrupted search (drains the frontier).
    fn make_checkpoint(&mut self, fingerprint: u64) -> SearchCheckpoint {
        let (up_sum, up_cnt, down_sum, down_cnt, glob_sum, glob_cnt) = self.pc.parts();
        let pc = CkptPc {
            up_sum: up_sum.iter().map(|x| x.to_bits()).collect(),
            up_cnt: up_cnt.to_vec(),
            down_sum: down_sum.iter().map(|x| x.to_bits()).collect(),
            down_cnt: down_cnt.to_vec(),
            glob_sum: glob_sum.to_bits(),
            glob_cnt,
        };
        SearchCheckpoint {
            version: CHECKPOINT_VERSION,
            fingerprint,
            nodes: self.nodes,
            digest: self.digest.state(),
            root_dive_done: self.root_dive_done,
            root_cuts_done: self.root_cuts_done,
            root_bound_pre: self.root_bound_pre.to_bits(),
            root_bound_post: self.root_bound_post.to_bits(),
            numerical: self.numerical,
            abandoned: self.abandoned.to_bits(),
            resumed_chain: self.resumed_chain,
            frontier: self
                .frontier
                .drain_sorted()
                .into_iter()
                .map(CkptNode::from_node)
                .collect(),
            incumbent: self
                .incumbent
                .peek()
                .map(|(objective, values)| CkptIncumbent {
                    objective: objective.to_bits(),
                    values: values.iter().map(|x| x.to_bits()).collect(),
                }),
            cuts: self.pool.cuts().iter().map(CkptCut::from_cut).collect(),
            pc,
            counters: CkptCounters {
                lp_solves: self.counters.lp_solves,
                warm_solves: self.counters.warm_solves,
                warm_hits: self.counters.warm_hits,
                dive_reinstalls: self.counters.dive_reinstalls,
                pseudocost_branches: self.counters.pseudocost_branches,
                strong_branch_probes: self.counters.strong_branch_probes,
                pivots: self.counters.pivots,
                bound_flips: self.counters.bound_flips,
                dse_pivots: self.counters.dse_pivots,
                cuts_added: self.counters.cuts_added,
                cut_rounds: self.counters.cut_rounds,
                propagation_fathoms: self.counters.propagation_fathoms,
            },
        }
    }
}

// ---------------------------------------------------------------------------
// The round driver.
// ---------------------------------------------------------------------------

/// The round-based branch-and-bound search on an (optionally presolved)
/// model.
fn solve_presolved(
    model: &Model,
    cfg: &MilpConfig,
    fp: u64,
    resume: Option<&SearchCheckpoint>,
) -> MilpRun {
    // lint:allow(D-02) anchors the merged deadline; sampled only at round boundaries, never fed to the digest
    let start = Instant::now();
    let threads = cfg.threads.max(1);
    let n = model.num_vars();
    let ctx = Ctx {
        model,
        cfg,
        dir: match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        },
        original_bounds: (0..n).map(|i| model.bounds(VarId(i as u32))).collect(),
        integral: (0..n).map(|i| model.is_integral(VarId(i as u32))).collect(),
        deadline: min_deadline(cfg.time_limit.map(|tl| start + tl), cfg.cancel.deadline()),
    };
    let mut st = match resume {
        Some(ck) => SearchState::restore(ck, ctx.dir),
        None => SearchState::fresh(n),
    };

    // Restored cut rows are validated against the base model before any
    // node re-solves against them: a checkpointed cut that excludes an
    // integer-feasible point would corrupt the whole resumed search.
    if cfg.audit && !st.pool.cuts().is_empty() {
        if let Err(e) = crate::audit::check_cuts(model, st.pool.cuts()) {
            return MilpRun {
                result: Err(MilpError::Audit(e)),
                checkpoint: None,
            };
        }
    }

    // The *search model*: the (presolved) base model plus every committed
    // cut row, in pool insertion order. A resumed run rebuilds it from the
    // checkpointed pool before touching the frontier, so every node
    // re-solves against the identical relaxation.
    let mut search_model = model.clone();
    for cut in st.pool.cuts() {
        cut.append_to(&mut search_model);
    }

    // Root cut loop: rounds of separate → append → re-solve on the root
    // relaxation, before the root dive (so the dive benefits from the
    // tightened relaxation). Committed atomically like the dive — an
    // interrupted loop discards its cuts *and* its counters whole and is
    // re-run on resume, so a resumed run's totals match an uninterrupted
    // run's exactly.
    let mut root_interrupted = false;
    if cfg.cuts && !st.root_cuts_done {
        match root_cut_loop(&ctx, model) {
            RootCuts::Done(res) => {
                st.counters.add(&res.counters);
                st.root_bound_pre = res.pre;
                st.root_bound_post = res.post;
                st.pool = res.pool;
                st.root_cuts_done = true;
                search_model = res.model;
                // The 512-case GMI proptest's oracle, run for real: no
                // root-separated cut may exclude an integer point of the
                // base model (exhaustively when the box is small, cheap
                // row invariants always).
                if cfg.audit {
                    if let Err(e) = crate::audit::check_cuts(model, st.pool.cuts()) {
                        return MilpRun {
                            result: Err(MilpError::Audit(e)),
                            checkpoint: None,
                        };
                    }
                }
            }
            // LP infeasibility with (globally valid) cuts appended still
            // proves MILP infeasibility: every integer-feasible point
            // satisfies every cut.
            RootCuts::Infeasible => {
                return MilpRun {
                    result: Err(MilpError::Infeasible),
                    checkpoint: None,
                }
            }
            RootCuts::Interrupted => root_interrupted = true,
        }
    }

    // Deterministic root dive: seeds the incumbent before the tree search
    // so every run starts from the same incumbent floor. Committed
    // atomically — an interrupted dive is discarded whole (and re-run on
    // resume, `root_dive_done` stays false), so its offers never make a
    // committed prefix diverge from the uninterrupted run. The dive runs
    // on the **pre-cut** model: cut rows reshape the relaxation's face
    // structure in ways that strand the rounding heuristic short of any
    // integer point (observed on the saturation corpus — the cut-augmented
    // dive finds nothing where the plain one lands an incumbent
    // immediately), and every offer is re-validated against the original
    // model at commit time regardless.
    if !root_interrupted && !st.root_dive_done {
        let mut run = NodeRun::new(&ctx, st.incumbent.score(), st.pc.clone());
        dive_probe(&mut run, model);
        if !run.interrupted {
            let out = run.finish(OutcomeKind::Pruned);
            st.absorb_effects(out);
            st.root_dive_done = true;
        }
    }

    // Per-worker model copies, allocated once and reused across rounds
    // (nodes change variable bounds; committed cut rows are appended to
    // every copy in batch order).
    let slots = threads.clamp(1, BATCH);
    let mut work_models: Vec<Model> = (0..slots).map(|_| search_model.clone()).collect();

    let mut interrupted = false;
    let mut unbounded = false;
    'search: loop {
        // Round-boundary checks: one full cancellation poll (flag,
        // deadline, poll countdown) plus the merged wall-clock deadline
        // and the node budget. Interruptions happen *only* here and
        // between-round state is all-committed, which is what entitles
        // the checkpoint to claim exact resumability.
        // lint:allow(D-02) round-boundary deadline poll: interruptions discard the round whole, committed state never sees the clock
        if cfg.cancel.cancelled() || ctx.deadline.is_some_and(|dl| Instant::now() >= dl) {
            interrupted = true;
            break;
        }
        if st.nodes >= cfg.node_limit {
            interrupted = true;
            break;
        }
        if st.frontier.is_empty() {
            break;
        }
        let take = BATCH.min(st.frontier.len());
        let mut batch = Vec::with_capacity(take);
        for _ in 0..take {
            batch.push(st.frontier.pop().expect("sized by frontier length"));
        }
        // Dive scheduling is a function of the committed node index, not
        // of any worker-local counter: deterministic at every thread
        // count. The period relaxes 4x once an incumbent exists.
        let no_incumbent = st.incumbent.peek().is_none();
        let period_mask = if no_incumbent {
            DIVE_PERIOD - 1
        } else {
            4 * DIVE_PERIOD - 1
        };
        let dive_flags: Vec<bool> = (0..take)
            .map(|bi| (st.nodes + bi) & period_mask == 1)
            .collect();
        // In-tree cut separation is scheduled exactly like dives: a
        // function of the committed node index plus the node's own depth,
        // never of worker timing — thread-count invariant by construction.
        let sep_flags: Vec<bool> = batch
            .iter()
            .enumerate()
            .map(|(bi, node)| {
                cfg.cuts
                    && node.depth >= 1
                    && node.depth <= NODE_CUT_DEPTH
                    && (st.nodes + bi) & NODE_CUT_MASK == 3
            })
            .collect();
        let outcomes = process_batch(
            &ctx,
            st.incumbent.score(),
            &st.pc,
            &st.pool,
            &batch,
            &dive_flags,
            &sep_flags,
            &mut work_models,
            threads,
        );
        if outcomes.iter().any(|o| o.interrupted) {
            // Abort the round whole: push the batch back so the frontier
            // (and hence the checkpoint) covers exactly the uncommitted
            // work, and nothing half-processed leaks into the state.
            // Outcome cuts are discarded with the round, keeping the
            // committed pool a deterministic prefix.
            for node in batch {
                st.frontier.push(node);
            }
            interrupted = true;
            break;
        }
        for (node, mut out) in batch.iter().zip(outcomes) {
            let node_cuts = std::mem::take(&mut out.cuts);
            if st.commit_node(node, out) {
                unbounded = true;
                break 'search;
            }
            // Commit the node's cuts in batch order: deduplicate against
            // the pool (two nodes of one round can separate the same cut
            // — they read the same frozen pool), then append the row to
            // every worker model and the search model. From the next
            // round on, every relaxation includes the new rows.
            for cut in node_cuts {
                if st.pool.contains(cut.key()) {
                    continue;
                }
                for wm in work_models.iter_mut() {
                    cut.append_to(wm);
                }
                cut.append_to(&mut search_model);
                st.pool.insert(cut);
                st.counters.cuts_added += 1;
            }
        }
    }

    if unbounded {
        return MilpRun {
            result: Err(MilpError::Unbounded),
            checkpoint: None,
        };
    }

    let (rows, cols) = if cfg.reference_lp {
        crate::reference::tableau_shape(&search_model)
    } else {
        crate::simplex::tableau_shape(&search_model)
    };
    let inc_score = st.incumbent.score();
    let score_bound = if interrupted {
        // Open nodes are not abandoned — they are checkpointed — but
        // their bounds still cap what the unexplored remainder could
        // reach, so the reported dual bound folds the best open score.
        inc_score.max(st.abandoned).max(st.frontier.best_score())
    } else if st.numerical {
        inc_score.max(st.abandoned)
    } else {
        inc_score
    };
    let checkpoint = if interrupted {
        Some(st.make_checkpoint(fp))
    } else {
        None
    };
    let stats = MilpStats {
        nodes: st.nodes,
        lp_solves: st.counters.lp_solves,
        warm_solves: st.counters.warm_solves,
        warm_hits: st.counters.warm_hits,
        dive_reinstalls: st.counters.dive_reinstalls,
        pseudocost_branches: st.counters.pseudocost_branches,
        strong_branch_probes: st.counters.strong_branch_probes,
        pivots: st.counters.pivots,
        bound_flips: st.counters.bound_flips,
        dse_pivots: st.counters.dse_pivots,
        cuts_added: st.counters.cuts_added,
        cut_rounds: st.counters.cut_rounds,
        propagation_fathoms: st.counters.propagation_fathoms,
        root_bound_pre_cuts: ctx.dir * st.root_bound_pre,
        root_bound_post_cuts: ctx.dir * st.root_bound_post,
        rows,
        cols,
        proven_optimal: !interrupted && !st.numerical,
        dual_bound: ctx.dir * score_bound,
        trace_digest: st.digest.state(),
        resumed: st.resumed,
        audited: cfg.audit,
    };
    let numerical = st.numerical;
    let result = match st.incumbent.into_best() {
        Some((objective, values)) => Ok(MilpSolution {
            values,
            objective,
            stats,
        }),
        None if interrupted => Err(MilpError::BudgetExhausted),
        None if numerical => Err(MilpError::Numerical),
        None => Err(MilpError::Infeasible),
    };
    MilpRun { result, checkpoint }
}

/// Outcome of the root cut loop.
enum RootCuts {
    /// Loop finished (possibly without any cuts): commit the pool, the
    /// cut-augmented model, the pre/post root bounds (score space, NaN
    /// when the root never solved to optimality), and the charged work.
    Done(Box<RootCutResult>),
    /// The root relaxation is infeasible — with only globally valid rows
    /// appended, that proves the MILP infeasible.
    Infeasible,
    /// Cancellation or the deadline landed mid-loop. Everything is
    /// discarded (cuts, counters, bounds); the resumed run re-runs the
    /// loop from scratch, so its totals match an uninterrupted run.
    Interrupted,
}

struct RootCutResult {
    pool: CutPool,
    model: Model,
    pre: f64,
    post: f64,
    counters: LocalCounters,
}

/// Rounds of separate → append → re-solve on the root relaxation of
/// `base`, until separation dries up or the bound stops improving. Works
/// entirely on locals — the caller commits (or discards) the result
/// atomically.
fn root_cut_loop(ctx: &Ctx<'_>, base: &Model) -> RootCuts {
    let mut counters = LocalCounters::default();
    let mut pool = CutPool::new();
    let mut model = base.clone();

    let solve_root =
        |model: &Model, counters: &mut LocalCounters| -> (LpOutcome, Option<DiveTableau>) {
            let (outcome, dt, st) =
                DiveTableau::new_with_pricing(model, Some(&ctx.cfg.cancel), ctx.cfg.pricing);
            counters.lp_solves += 1;
            counters.pivots += st.pivots;
            counters.bound_flips += st.bound_flips;
            counters.dse_pivots += st.dse_pivots;
            (outcome, dt)
        };
    let done_empty = |counters: LocalCounters, model: Model| -> RootCuts {
        RootCuts::Done(Box::new(RootCutResult {
            pool: CutPool::new(),
            model,
            pre: f64::NAN,
            post: f64::NAN,
            counters,
        }))
    };

    let (mut sol, mut root_tab) = match solve_root(&model, &mut counters) {
        (LpOutcome::Optimal(s), dt) => (s, dt),
        (LpOutcome::Infeasible, _) => return RootCuts::Infeasible,
        // Unbounded root: leave it to the search (the depth-0 node
        // reports it); nothing to cut from.
        (LpOutcome::Unbounded, _) => return done_empty(counters, model),
        (LpOutcome::PivotTooSmall, _) => {
            if ctx.cfg.cancel.is_set() {
                return RootCuts::Interrupted;
            }
            // Numerical trouble at the root — skip cutting, let the
            // search's own node handling deal with it.
            return done_empty(counters, model);
        }
    };
    let pre = ctx.dir * sol.objective;
    let mut post = pre;
    for _ in 0..ROOT_CUT_ROUNDS {
        // lint:allow(D-02) cut-round deadline poll: an interrupted loop is discarded whole and re-run on resume
        if ctx.cfg.cancel.cancelled() || ctx.deadline.is_some_and(|dl| Instant::now() >= dl) {
            return RootCuts::Interrupted;
        }
        // Round snapshot: a round whose cuts fail to move the root bound
        // is rolled back whole. Bound-neutral cuts still reshape the LP's
        // vertex landscape, and every later node LP pays for the extra
        // rows — observed on the saturation corpus to derail pseudocost
        // branching badly enough to *triple* the tree. Only rounds that
        // demonstrably tighten the relaxation earn a place in the pool.
        let round_pool = pool.clone();
        let round_model = model.clone();
        let round_cuts_added = counters.cuts_added;
        let round_cut_rounds = counters.cut_rounds;
        let mut cuts = crate::cuts::separate(
            &model,
            &ctx.original_bounds,
            &ctx.integral,
            &sol.values,
            ROOT_CUTS_PER_ROUND,
            CUT_MIN_VIOLATION,
            |k| pool.contains(k),
        );
        // Gomory mixed-integer cuts off the root tableau fill whatever
        // budget combinatorial separation left: unlike cover/clique cuts
        // they bite on *any* fractional vertex — on the unit-coefficient
        // counting rows of the saturation intLP, where every cover is
        // implied by its own source row, they are the separator that
        // actually closes the root gap. The tableau was built from
        // `model` at global bounds, so the cuts are globally valid.
        if let Some(dt) = &root_tab {
            if cuts.len() < ROOT_CUTS_PER_ROUND {
                for (terms, rhs) in dt.gomory_cuts(
                    &model,
                    &ctx.integral,
                    ROOT_CUTS_PER_ROUND - cuts.len(),
                    GOMORY_MAX_TERMS,
                ) {
                    let cut = Cut { terms, rhs };
                    if cut.violation(&sol.values) >= CUT_MIN_VIOLATION
                        && !pool.contains(cut.key())
                        && !cuts.iter().any(|c| c.key() == cut.key())
                    {
                        cuts.push(cut);
                    }
                }
            }
        }
        if cuts.is_empty() {
            break;
        }
        for cut in cuts {
            cut.append_to(&mut model);
            if pool.insert(cut) {
                counters.cuts_added += 1;
            }
        }
        counters.cut_rounds += 1;
        (sol, root_tab) = match solve_root(&model, &mut counters) {
            (LpOutcome::Optimal(s), dt) => (s, dt),
            (LpOutcome::Infeasible, _) => return RootCuts::Infeasible,
            (LpOutcome::Unbounded, _) => break,
            (LpOutcome::PivotTooSmall, _) => {
                if ctx.cfg.cancel.is_set() {
                    return RootCuts::Interrupted;
                }
                break;
            }
        };
        // Activity-based aging: cuts slack at the new root point age; old
        // enough, they retire and the model is rebuilt without them (the
        // pool keeps insertion order, so the rebuild is deterministic).
        // The rebuilt model no longer matches the live tableau's row set,
        // so tableau-derived separation sits the next round out.
        if pool.age_and_retire(&sol.values, CUT_MAX_AGE) > 0 {
            model = base.clone();
            for cut in pool.cuts() {
                cut.append_to(&mut model);
            }
            root_tab = None;
        }
        // Score space: cuts can only *lower* the (maximizing) score bound.
        let new_post = ctx.dir * sol.objective;
        if new_post < post - ROOT_CUT_MIN_IMPROVE {
            post = new_post;
        } else {
            pool = round_pool;
            model = round_model;
            counters.cuts_added = round_cuts_added;
            counters.cut_rounds = round_cut_rounds;
            break;
        }
    }
    RootCuts::Done(Box::new(RootCutResult {
        pool,
        model,
        pre,
        post,
        counters,
    }))
}

/// Processes one round's batch: sequentially when a single worker
/// suffices, otherwise on scoped threads pulling batch indices from an
/// atomic counter. Either way each node sees only the frozen round-start
/// state, so the outcomes are identical — threading changes wall-clock
/// time, nothing else.
#[allow(clippy::too_many_arguments)]
fn process_batch(
    ctx: &Ctx<'_>,
    inc_score: f64,
    pc: &PcStore,
    pool: &CutPool,
    batch: &[Node],
    dive_flags: &[bool],
    sep_flags: &[bool],
    work_models: &mut [Model],
    threads: usize,
) -> Vec<NodeOutcome> {
    let n = batch.len();
    let workers = threads.min(n).min(work_models.len());
    if workers <= 1 {
        let work = &mut work_models[0];
        return batch
            .iter()
            .enumerate()
            .map(|(i, node)| {
                run_one(
                    ctx,
                    inc_score,
                    pc,
                    pool,
                    node,
                    dive_flags[i],
                    sep_flags[i],
                    work,
                )
            })
            .collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<NodeOutcome>>> = (0..n).map(|_| Mutex::new(None)).collect();
    {
        let next = &next;
        let results = &results;
        std::thread::scope(|s| {
            for work in work_models.iter_mut().take(workers) {
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let out = run_one(
                        ctx,
                        inc_score,
                        pc,
                        pool,
                        &batch[i],
                        dive_flags[i],
                        sep_flags[i],
                        work,
                    );
                    *results[i].lock().expect("result slot poisoned") = Some(out);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every batch slot is filled")
        })
        .collect()
}

/// Runs one node against frozen round-start state, producing its outcome.
#[allow(clippy::too_many_arguments)]
fn run_one(
    ctx: &Ctx<'_>,
    inc_score: f64,
    pc: &PcStore,
    pool: &CutPool,
    node: &Node,
    dive: bool,
    sep: bool,
    work: &mut Model,
) -> NodeOutcome {
    let mut run = NodeRun::new(ctx, inc_score, pc.clone());
    // A cancel that lands mid-round aborts the round before more work is
    // sunk; the node is pushed back and re-processed on resume.
    if ctx.cfg.cancel.is_set() {
        run.interrupted = true;
        return run.finish(OutcomeKind::Pruned);
    }
    let kind = process_node(&mut run, work, node, dive, sep, pool);
    run.finish(kind)
}

fn process_node(
    run: &mut NodeRun<'_, '_>,
    work: &mut Model,
    node: &Node,
    dive: bool,
    sep: bool,
    pool: &CutPool,
) -> OutcomeKind {
    let ctx = run.ctx;
    // Prune by the inherited parent bound — the incumbent may have
    // improved since this node was pushed.
    if !run.improves(node.score) {
        return OutcomeKind::Pruned;
    }

    // Apply node bounds over the originals, with the integral
    // bound-tightening fast path: integer domains are rounded inward, which
    // both shrinks the relaxation and detects infeasible branches without
    // an LP solve.
    for (i, &(lo, hi)) in ctx.original_bounds.iter().enumerate() {
        work.set_bounds(VarId(i as u32), lo, hi);
    }
    for &(v, lo, hi) in &node.bounds {
        let (clo, chi) = work.bounds(v);
        let nlo = clo.max(lo);
        let nhi = chi.min(hi);
        if nlo > nhi {
            return OutcomeKind::Pruned;
        }
        work.set_bounds(v, nlo, nhi);
    }
    for (i, &int) in ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let v = VarId(i as u32);
        let (lo, hi) = work.bounds(v);
        let tlo = if lo.is_finite() {
            (lo - ctx.cfg.int_tol).ceil()
        } else {
            lo
        };
        let thi = if hi.is_finite() {
            (hi + ctx.cfg.int_tol).floor()
        } else {
            hi
        };
        if tlo > thi {
            return OutcomeKind::Pruned;
        }
        if tlo != lo || thi != hi {
            work.set_bounds(v, tlo, thi);
        }
    }

    // Cheap bound propagation on the node's tightened box before paying
    // for a simplex solve: activity arguments over the (cut-augmented)
    // rows shrink integer domains, and a propagation-proven-empty domain
    // fathoms the branch with zero LP work. Once an incumbent exists the
    // pass also propagates the **objective cutoff** as a temporary row
    // (`dir·obj ≥ next improving integral value`): a node survives here
    // only if it can still beat the incumbent — sound because the search
    // only ever asks each subtree for *improving* solutions, and
    // deterministic because the row derives from the frozen round-start
    // incumbent. The pass is strictly **check-only**: the temporary row is
    // popped and every tightened bound is restored before the solve, so
    // propagation's only influence on the search is the fathom verdict —
    // feeding the tightenings to the LP was observed to perturb branching
    // on the saturation corpus for no node-count gain.
    if ctx.cfg.propagation && (run.inc_score.is_finite() || !node.bounds.is_empty()) {
        let cutoff = run.inc_score.is_finite();
        if cutoff {
            let target = if ctx.cfg.integral_objective {
                (run.inc_score + ctx.cfg.int_tol).floor() + 1.0
            } else {
                run.inc_score + EPS
            };
            // dir·(Σcⱼxⱼ + k) ≥ target  ⇔  Σ(−dir·cⱼ)xⱼ ≤ dir·k − target.
            let terms: Vec<(VarId, f64)> = ctx
                .model
                .objective
                .terms
                .iter()
                .map(|&(v, c)| (v, -ctx.dir * c))
                .collect();
            let rhs = ctx.dir * ctx.model.objective.constant - target;
            work.add_constraint_terms(&terms, crate::Cmp::Le, rhs);
        }
        let saved: Vec<(f64, f64)> = (0..work.num_vars())
            .map(|i| work.bounds(VarId(i as u32)))
            .collect();
        let res = crate::presolve::propagate(work, ctx.cfg.int_tol, 3);
        for (i, &(lo, hi)) in saved.iter().enumerate() {
            work.set_bounds(VarId(i as u32), lo, hi);
        }
        if cutoff {
            work.constraints.pop();
        }
        if let crate::presolve::Propagation::Infeasible = res {
            run.counters.propagation_fathoms += 1;
            return OutcomeKind::Pruned;
        }
    }

    // Node relaxations are deliberately solved *cold*: a fresh two-phase
    // solve returns the same objective as a warm re-solve, but its vertex
    // (among the many degenerate optima of the big-M RS relaxations) guides
    // fractionality-based branching far better than the minimally-repaired
    // parent vertex a warm start lands on — measured tree sizes differ by
    // 100-1000x on the random-kernel corpus. On the bounded path the cold
    // tableau stays live as a DiveTableau for the strong-branching probes
    // and the scheduled dive below, whose chains of pure bound tightenings
    // run in place with zero basis reinstalls.
    let (outcome, mut dt) = solve_node_lp(run, work);
    let sol = match outcome {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return OutcomeKind::Pruned,
        LpOutcome::Unbounded => {
            // Unbounded relaxation at the root means unbounded MILP if a
            // feasible integer point exists; report unbounded directly
            // (our models never hit this outside tests).
            if node.depth == 0 {
                return OutcomeKind::Unbounded;
            }
            return OutcomeKind::Pruned;
        }
        LpOutcome::PivotTooSmall => {
            // A cancelled simplex aborts with this same outcome — that is
            // an interruption, not numerical trouble, and must not taint
            // the result as `Numerical` (nor be committed at all).
            if ctx.cfg.cancel.is_set() {
                run.interrupted = true;
                return OutcomeKind::Pruned;
            }
            // Soft numerical failure: skip the node, surrender the
            // optimality proof instead of crashing or silently mispruning.
            // The skipped subtree's bound still counts against the dual
            // bound of the (now unproven) answer.
            return OutcomeKind::Numerical(node.score);
        }
    };

    // Feed the pseudocosts: this node's relaxation is exactly the child LP
    // of the branching step that created it, so the degradation against
    // the parent's raw bound is one per-unit observation. Recorded before
    // any pruning — a pruned child is still a valid observation.
    let raw_score = ctx.dir * sol.objective;
    if let Some(b) = node.branch {
        if b.frac > 1e-9 && b.parent_score.is_finite() {
            run.record(
                b.var,
                b.up,
                ((b.parent_score - raw_score) / b.frac).max(0.0),
            );
        }
    }

    // Bound pruning on the fresh relaxation. Children are queued under the
    // *tightened* (integer-rounded) bound: rounding loses nothing for
    // pruning, and it collapses the near-flat big-M bounds into integer
    // buckets, inside which the frontier's depth tie-break dives straight
    // to an incumbent instead of ping-ponging across the frontier.
    let score = ctx.tighten_score(raw_score);
    if !run.improves(score) {
        return OutcomeKind::Pruned;
    }

    // Driver-scheduled in-tree separation: offer new globally valid cuts
    // violated by this node's relaxation point. Derived from the row set
    // (shared by every work model) and the *global* bounds — never the
    // node's — so the cuts can be appended everywhere. Committed
    // (deduplicated against the live pool) in batch order.
    if sep {
        run.cuts = crate::cuts::separate(
            work,
            &ctx.original_bounds,
            &ctx.integral,
            &sol.values,
            NODE_CUTS_PER_NODE,
            CUT_MIN_VIOLATION,
            |k| pool.contains(k),
        );
    }

    // Pick the branching variable: pseudocost product rule with
    // strong-branching-lite initialization when enabled and a dive tableau
    // is available, otherwise most-fractional.
    let branch = match (ctx.cfg.pseudocost, dt.as_ref()) {
        (true, Some(t)) => select_branch_pseudocost(run, work, t, &sol, raw_score),
        _ => select_most_fractional(ctx, &sol),
    };
    if run.interrupted {
        return OutcomeKind::Pruned;
    }

    match branch {
        None => {
            // Integral: candidate incumbent. The rounding is gated by a
            // *real* feasibility check — `debug_assert!` alone would let an
            // infeasible rounding become the reported optimum in release
            // builds. A leaf that fails the check cannot be explored
            // further (nothing fractional to branch on), so the optimality
            // proof is surrendered instead of silently dropping the
            // subtree.
            let mut values = sol.values;
            for (i, val) in values.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            if ctx.model.check_feasible(&values, ctx.feas_tol()).is_ok() {
                let objective = ctx.model.objective.eval(&values);
                run.offer(objective, values);
                OutcomeKind::Pruned
            } else {
                OutcomeKind::Numerical(score)
            }
        }
        Some((v, x)) => {
            // Simple-rounding primal heuristic: the big-M relaxations of
            // the register-saturation models are nearly flat, so a pure
            // dive needs hundreds of levels before its leaf is integral —
            // but naively rounding the fractional relaxation is very often
            // already feasible. An early incumbent is what turns the
            // bound into actual pruning.
            let mut rounded = sol.values.clone();
            for (i, val) in rounded.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            let objective = ctx.model.objective.eval(&rounded);
            if run.improves(ctx.dir * objective)
                && ctx.model.check_feasible(&rounded, ctx.feas_tol()).is_ok()
            {
                run.offer(objective, rounded);
            }
            let fl = x.floor();
            let f_down = x - fl;
            // The near side (the child containing the rounding of the
            // fractional value) gets path bit 0, the far side bit 1; the
            // frontier pops lexicographically smaller paths first on
            // score/depth ties, so the near side is explored first,
            // diving towards an incumbent fast — by node identity, not by
            // push timing.
            let near_is_down = f_down <= 0.5;
            let child = |lo: f64, hi: f64, frac: f64, up: bool, bit: u8| {
                let mut b = node.bounds.clone();
                b.push((v, lo, hi));
                let mut path = node.path.clone();
                path.push(bit);
                Node {
                    bounds: b,
                    depth: node.depth + 1,
                    score,
                    branch: Some(BranchStep {
                        var: v,
                        frac,
                        parent_score: raw_score,
                        up,
                    }),
                    path,
                }
            };
            let down = child(
                f64::NEG_INFINITY,
                fl,
                f_down,
                false,
                if near_is_down { 0 } else { 1 },
            );
            let up = child(
                fl + 1.0,
                f64::INFINITY,
                1.0 - f_down,
                true,
                if near_is_down { 1 } else { 0 },
            );
            let (near, far) = if near_is_down { (down, up) } else { (up, down) };
            // Scheduled diving restart: when the driver flagged this node
            // (its global index fell on the dive period), re-run the
            // diving heuristic from this subproblem, chaining in-place
            // bound folds on the node's live tableau. On the near-flat
            // big-M relaxations the dual bound barely moves, so pruning
            // lives or dies by incumbent quality — a dive from a deep
            // subproblem regularly finds the incumbent that collapses the
            // remaining frontier. Extra incumbents can only tighten the
            // bound, never change the reported optimum.
            if dive {
                match dt.take() {
                    Some(t) => dive_from(run, work, t, sol),
                    None => {
                        // Reference path: no live tableau from the node
                        // solve; build one cold for the dive.
                        if let (LpOutcome::Optimal(s), Some(t)) = cold_dive_tableau(run, work, true)
                        {
                            dive_from(run, work, t, s);
                        }
                    }
                }
            }
            OutcomeKind::Children(Box::new((near, far)))
        }
    }
}

// ---------------------------------------------------------------------------
// LP plumbing.
// ---------------------------------------------------------------------------

/// One counted cold LP relaxation solve, routed through the configured
/// path. On the bounded-variable path the optimal tableau is kept live as
/// a [`DiveTableau`] for strong-branching probes and scheduled dives; the
/// explicit-bound-row reference path ([`MilpConfig::reference_lp`])
/// returns no tableau.
fn solve_node_lp(run: &mut NodeRun<'_, '_>, work: &Model) -> (LpOutcome, Option<DiveTableau>) {
    if run.ctx.cfg.reference_lp {
        let (outcome, lp_stats) = crate::reference::solve_relaxation_stats(work);
        run.charge_lp(&lp_stats, false);
        (outcome, None)
    } else {
        cold_dive_tableau(run, work, false)
    }
}

/// One counted cold solve that keeps the tableau live (the bounded node
/// path, the root probe, and the reference path's dive entry).
fn cold_dive_tableau(
    run: &mut NodeRun<'_, '_>,
    model: &Model,
    dive: bool,
) -> (LpOutcome, Option<DiveTableau>) {
    let (outcome, dt, lp_stats) =
        DiveTableau::new_with_pricing(model, Some(&run.ctx.cfg.cancel), run.ctx.cfg.pricing);
    run.charge_lp(&lp_stats, dive);
    (outcome, dt)
}

/// One counted incremental re-solve on a live dive tableau: applies the
/// bound tightenings in place (rank-1 rhs folds — **zero** basis
/// reinstalls, see [`MilpStats::dive_reinstalls`]) and dual-repairs.
fn dive_tighten(
    run: &mut NodeRun<'_, '_>,
    dt: &mut DiveTableau,
    changes: &[(VarId, f64, f64)],
    work: &Model,
) -> DiveStep {
    run.counters.lp_solves += 1;
    run.counters.warm_solves += 1;
    let before = dt.work();
    let step = dt.tighten(changes, work);
    run.charge_dive_work(dt, before);
    // Both Optimal and Infeasible are *converged* warm outcomes (the dual
    // repair finished — an infeasibility proof is a success); only a stall
    // discards the tableau.
    if !matches!(step, DiveStep::Stalled) {
        run.counters.warm_hits += 1;
    }
    step
}

// ---------------------------------------------------------------------------
// Diving heuristic.
// ---------------------------------------------------------------------------

/// How close to an integer a variable must sit for the diving heuristic to
/// batch-fix it alongside the most fractional one ("vector diving"). The
/// big-M RS relaxations park many binaries at values like `0.98`; fixing
/// them together collapses a dive from one LP per variable to a handful of
/// LPs total.
const DIVE_BATCH_TOL: f64 = 0.1;

/// Diving primal heuristic on the **incremental dive tableau**: from the
/// relaxation `sol` of the subproblem whose optimal tableau lives in `dt`,
/// repeatedly fix the most fractional integral variable — together with
/// every near-integral one (within [`DIVE_BATCH_TOL`] of an integer) — to
/// its nearest in-bounds integer and dual-repair **in place**. No tableau
/// rebuild, no basis reinstall, no model mutation: each step is a batch of
/// rank-1 rhs folds plus a few dual pivots. An infeasible batch step
/// restores the pre-step tableau (one clone held per step) and falls back
/// to fixing the single most fractional variable; if that is infeasible
/// too, its opposite rounding is tried once, and a further failure aborts
/// the dive. A stalled dual repair aborts the dive outright (the tableau
/// state is unreliable, and the dive is only a heuristic). When the dive
/// reaches an integral relaxation, the (feasibility-checked) point is
/// offered as an incumbent.
///
/// The dive never prunes and never proves anything; it only feeds the
/// incumbent bound. A dive cut short by cancellation or the deadline marks
/// the node interrupted — the driver then aborts the whole round, so a
/// partially-run dive is never committed and determinism survives
/// asynchronous cancellation.
fn dive_from(run: &mut NodeRun<'_, '_>, work: &Model, mut dt: DiveTableau, mut sol: Solution) {
    let ctx = run.ctx;
    let max_steps = 2 * ctx.integral.len() + 8;
    let mut batch: Vec<(VarId, f64, f64)> = Vec::new();
    // Pre-step snapshot buffer, allocated once per dive and refilled by
    // `clone_from` each step (a failed batch backs out by restoring it —
    // the dive tableau itself only supports tightenings).
    let mut snap = dt.clone();
    for step in 0..max_steps {
        if step & 7 == 0 {
            if ctx.cfg.cancel.is_set() {
                run.interrupted = true;
                return;
            }
            if let Some(dl) = ctx.deadline {
                // lint:allow(D-02) dive deadline poll: an interrupted dive sets the flag and abandons the dive, committing nothing
                if Instant::now() > dl {
                    run.interrupted = true;
                    return;
                }
            }
        }
        // Most fractional integral variable of the current relaxation.
        let pick = select_most_fractional(ctx, &sol).map(|(v, x)| (v.index(), x));
        let Some((i, x)) = pick else {
            // Integral relaxation: offer it.
            let mut values = sol.values;
            for (i, val) in values.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            if ctx.model.check_feasible(&values, ctx.feas_tol()).is_ok() {
                let objective = ctx.model.objective.eval(&values);
                run.offer(objective, values);
            }
            return;
        };

        // Batch step: fix every near-integral variable plus the most
        // fractional one. Refreshing the snapshot is one tableau memcpy,
        // ≈ a single pivot's cost.
        batch.clear();
        for (j, &int) in ctx.integral.iter().enumerate() {
            if !int {
                continue;
            }
            let xj = sol.values[j];
            let frac = (xj - xj.round()).abs();
            if frac <= ctx.cfg.int_tol || (frac > DIVE_BATCH_TOL && j != i) {
                continue;
            }
            let v = VarId(j as u32);
            let (lo, hi) = dt.bounds(v);
            let target = xj.round().clamp(lo, hi);
            batch.push((v, target, target));
        }
        snap.clone_from(&dt);
        match dive_tighten(run, &mut dt, &batch, work) {
            DiveStep::Optimal(s) => {
                sol = s;
                continue;
            }
            DiveStep::Infeasible => {}
            DiveStep::Stalled => {
                run.interrupt_if_cancelled();
                return;
            }
        }
        // Batch failed: restore and fix only the most fractional variable
        // (when the batch was already that single variable, go straight to
        // the opposite rounding).
        let single_was_batch = batch.len() == 1;
        dt.clone_from(&snap);
        let v = VarId(i as u32);
        let (lo, hi) = dt.bounds(v);
        let near = x.round().clamp(lo, hi);
        let far = if near > x { x.floor() } else { x.ceil() }.clamp(lo, hi);
        if !single_was_batch {
            match dive_tighten(run, &mut dt, &[(v, near, near)], work) {
                DiveStep::Optimal(s) => {
                    sol = s;
                    continue;
                }
                DiveStep::Infeasible => dt.clone_from(&snap),
                DiveStep::Stalled => {
                    run.interrupt_if_cancelled();
                    return;
                }
            }
        }
        if far == near {
            return;
        }
        match dive_tighten(run, &mut dt, &[(v, far, far)], work) {
            DiveStep::Optimal(s) => sol = s,
            DiveStep::Infeasible => return,
            DiveStep::Stalled => {
                run.interrupt_if_cancelled();
                return;
            }
        }
    }
}

/// Deterministic root diving probe: seeds the incumbent before the tree
/// search, so every run (and every thread count) begins from the same
/// incumbent floor. Dives on the given (cut-augmented) search model;
/// always on the bounded-variable dive tableau (the reference path has no
/// incremental machinery; dives only feed incumbents, which are
/// feasibility-checked against the cut-free original model, so this
/// cannot change a reference run's reported optimum).
fn dive_probe(run: &mut NodeRun<'_, '_>, model: &Model) {
    match cold_dive_tableau(run, model, true) {
        (LpOutcome::Optimal(sol), Some(dt)) => dive_from(run, model, dt, sol),
        (LpOutcome::PivotTooSmall, _) => run.interrupt_if_cancelled(),
        _ => {}
    }
}

// ---------------------------------------------------------------------------
// Branching rules.
// ---------------------------------------------------------------------------

/// Most-fractional branching rule (fraction closest to one half), the
/// fallback when pseudocost branching is disabled or no dive tableau is
/// available (reference path).
fn select_most_fractional(ctx: &Ctx<'_>, sol: &Solution) -> Option<(VarId, f64)> {
    let mut branch: Option<(VarId, f64)> = None;
    let mut best_dist_half = f64::INFINITY;
    for (i, &int) in ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let x = sol.values[i];
        if (x - x.round()).abs() <= ctx.cfg.int_tol {
            continue;
        }
        let dist_half = (x - x.floor() - 0.5).abs();
        if dist_half < best_dist_half {
            best_dist_half = dist_half;
            branch = Some((VarId(i as u32), x));
        }
    }
    branch
}

/// Probes one branching direction of `v` on a clone of the node's dive
/// tableau, recording the observed degradation into the node's local
/// pseudocost overlay. Returns the local estimate for the product score
/// (`NaN` = no usable estimate, `∞` = infeasible child).
#[allow(clippy::too_many_arguments)]
fn probe_dir(
    run: &mut NodeRun<'_, '_>,
    scratch: &mut Option<DiveTableau>,
    dt: &DiveTableau,
    work: &Model,
    v: VarId,
    child_lo: f64,
    child_hi: f64,
    frac: f64,
    up: bool,
    raw_score: f64,
) -> f64 {
    run.counters.lp_solves += 1;
    let p = match scratch {
        Some(p) => {
            p.clone_from(dt);
            p
        }
        // First probe of the node: a fresh clone doubles as the refill.
        empty => empty.insert(dt.clone()),
    };
    let before = p.work();
    let step = p.tighten_capped(&[(v, child_lo, child_hi)], work, SB_PIVOT_CAP);
    let (pv, fl, ds) = p.work();
    run.counters.pivots += pv - before.0;
    run.counters.bound_flips += fl - before.1;
    run.counters.dse_pivots += ds - before.2;
    match step {
        DiveStep::Optimal(s) => {
            let deg = (raw_score - run.ctx.dir * s.objective).max(0.0);
            run.record(v, up, deg / frac.max(run.ctx.cfg.int_tol));
            deg
        }
        // An infeasible child is the strongest possible branching signal
        // *at this node*, scored infinite locally. The store gets a
        // large-but-finite observation (8x the global average):
        // infeasibility depends on the node's bounds, so an infinite
        // average would poison the estimates — but recording nothing
        // would leave the direction unreliable forever, re-probing the
        // variable at every node where it is fractional. The biased-high
        // record keeps the "branching here tends to close a side" signal
        // while bounding total probes.
        DiveStep::Infeasible => {
            let avg = run.pc.global_avg();
            run.record(v, up, 8.0 * avg);
            f64::INFINITY
        }
        DiveStep::Stalled => {
            // A stall caused by cancellation would be nondeterministic —
            // mark the node interrupted so the round is aborted instead
            // of committed. A cap-induced stall is deterministic: a
            // neutral observation (the store average) is recorded so the
            // variable still converges to reliable — otherwise every
            // subsequent node would re-probe it and pay the cap again.
            run.interrupt_if_cancelled();
            let avg = run.pc.global_avg();
            run.record(v, up, avg);
            f64::NAN
        }
    }
}

/// Pseudocost branching with strong-branching-lite reliability
/// initialization.
///
/// Every fractional candidate is scored by the product rule
/// `max(down_est, ε) · max(up_est, ε)`, where each directional estimate is
/// the expected objective degradation of that child (per-unit pseudocost ×
/// fractional distance). Candidates whose pseudocosts are not yet reliable
/// (fewer than [`PC_RELIABLE`] observations in either direction) are
/// initialized by probing both children on a **clone of the node's dive
/// tableau** — a bound tightening plus dual repair, no reinstall — with at
/// most [`SB_PER_NODE`] probes per node, most fractional first; probe
/// degradations are recorded into the node's pseudocost log (replayed into
/// the shared store at commit), so each variable is probed only a bounded
/// number of times across the whole search. An infeasible probe direction
/// scores infinite (branching there closes a whole side). Directions with
/// no local probe and no reliable estimate fall back to the store average,
/// then to the global average. Reads only frozen round-start state plus
/// this node's own observations — deterministic at every thread count.
fn select_branch_pseudocost(
    run: &mut NodeRun<'_, '_>,
    work: &Model,
    dt: &DiveTableau,
    sol: &Solution,
    raw_score: f64,
) -> Option<(VarId, f64)> {
    // Fractional candidates: (var index, value, down fraction, up fraction).
    let int_tol = run.ctx.cfg.int_tol;
    let mut cands: Vec<(usize, f64, f64, f64)> = Vec::new();
    for (i, &int) in run.ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let x = sol.values[i];
        if (x - x.round()).abs() <= int_tol {
            continue;
        }
        let fd = x - x.floor();
        cands.push((i, x, fd, 1.0 - fd));
    }
    if cands.is_empty() {
        return None;
    }

    // Strong-branching-lite probes for unreliable candidates, most
    // fractional first (deterministic order: distance to one half, then
    // index).
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let da = (cands[a].2 - 0.5).abs();
        let db = (cands[b].2 - 0.5).abs();
        da.total_cmp(&db).then(cands[a].0.cmp(&cands[b].0))
    });
    // Local probe estimates (total degradation per direction); NaN = none.
    let mut local: Vec<(f64, f64)> = vec![(f64::NAN, f64::NAN); cands.len()];
    let mut probes = 0usize;
    // Probe scratch tableau, allocated on the first probe and refilled by
    // `clone_from` for every direction afterwards (zero steady-state
    // allocation on the branching hot path).
    let mut scratch: Option<DiveTableau> = None;
    for &ci in &order {
        if probes >= SB_PER_NODE {
            break;
        }
        let (i, x, fd, fu) = cands[ci];
        let v = VarId(i as u32);
        if run.pc.count(v, false) >= PC_RELIABLE && run.pc.count(v, true) >= PC_RELIABLE {
            continue;
        }
        probes += 1;
        run.counters.strong_branch_probes += 1;
        let (lo, hi) = dt.bounds(v);
        let fl = x.floor();
        let down = probe_dir(run, &mut scratch, dt, work, v, lo, fl, fd, false, raw_score);
        let up = probe_dir(
            run,
            &mut scratch,
            dt,
            work,
            v,
            fl + 1.0,
            hi,
            fu,
            true,
            raw_score,
        );
        local[ci] = (down, up);
        if run.interrupted {
            return None;
        }
    }

    // Product-rule scoring.
    let gavg = run.pc.global_avg();
    let mut best: Option<(f64, usize, bool)> = None;
    for (ci, &(i, _, fd, fu)) in cands.iter().enumerate() {
        let v = VarId(i as u32);
        let (ld, lu) = local[ci];
        let down_est = if ld.is_nan() {
            run.pc.avg(v, false).unwrap_or(gavg) * fd
        } else {
            ld
        };
        let up_est = if lu.is_nan() {
            run.pc.avg(v, true).unwrap_or(gavg) * fu
        } else {
            lu
        };
        let trusted = ld.is_nan()
            && lu.is_nan()
            && run.pc.count(v, false) >= PC_RELIABLE
            && run.pc.count(v, true) >= PC_RELIABLE;
        let score = down_est.max(PC_SCORE_EPS) * up_est.max(PC_SCORE_EPS);
        if best.is_none_or(|(bs, _, _)| score > bs) {
            best = Some((score, ci, trusted));
        }
    }
    let (_, ci, trusted) = best.expect("candidates are nonempty");
    if trusted {
        run.counters.pseudocost_branches += 1;
    }
    Some((VarId(cands[ci].0 as u32), cands[ci].1))
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    #[test]
    fn integer_knapsack() {
        // max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600,
        // 2a+2b+6c <= 300, all integer >= 0. LP opt 733.33; ILP opt 732
        // (a=33, b=67): 10*33+4*67=330+268=598<=600; 33+67=100<=100;
        // 2*33+2*67=200<=300; obj=330+402=732.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1000.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1000.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1000.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::from(a) * 10.0 + (4.0, b) + (5.0, c),
            Cmp::Le,
            600.0,
        );
        m.add_constraint(LinExpr::from(a) * 2.0 + (2.0, b) + (6.0, c), Cmp::Le, 300.0);
        m.set_objective(LinExpr::from(a) * 10.0 + (6.0, b) + (4.0, c));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert_eq!(s.objective.round() as i64, 732);
    }

    #[test]
    fn binary_knapsack_matches_brute_force() {
        let weights = [4.0, 3.0, 5.0, 2.0, 7.0, 1.0];
        let values = [7.0, 4.0, 9.0, 3.0, 10.0, 1.0];
        let cap = 10.0;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0))
            .collect();
        let mut wexpr = LinExpr::new();
        let mut vexpr = LinExpr::new();
        for i in 0..6 {
            wexpr = wexpr + (weights[i], vars[i]);
            vexpr = vexpr + (values[i], vars[i]);
        }
        m.add_constraint(wexpr, Cmp::Le, cap);
        m.set_objective(vexpr);
        let s = solve(&m, &MilpConfig::default()).unwrap();

        let mut best = 0.0f64;
        for mask in 0u32..64 {
            let w: f64 = (0..6)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            if w <= cap {
                let v: f64 = (0..6)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| values[i])
                    .sum();
                best = best.max(v);
            }
        }
        assert_eq!(s.objective.round(), best);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x = 1 with x integer
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x));
        assert_eq!(
            solve(&m, &MilpConfig::default()).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn minimize_with_binaries() {
        // min x + y + z s.t. x + y >= 1, y + z >= 1, x + z >= 1 (vertex cover
        // of a triangle): optimum 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let z = m.add_var("z", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(x) + z, Cmp::Ge, 1.0);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 0.5 t, y binary gate: t <= 10 y, t <= 7.3; optimum y=1, t=7.3
        let mut m = Model::new(Sense::Maximize);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let t = m.add_var("t", VarKind::Continuous, 0.0, 100.0);
        m.add_constraint(LinExpr::from(t) + (-10.0, y), Cmp::Le, 0.0);
        m.add_constraint(LinExpr::from(t), Cmp::Le, 7.3);
        m.set_objective(LinExpr::from(y) + (0.5, t));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(
            (s.objective - (1.0 + 3.65)).abs() < 1e-5,
            "got {}",
            s.objective
        );
        assert!((s.values[1] - 7.3).abs() < 1e-5);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let mut m = Model::new(Sense::Maximize);
        // A model needing at least one node more than the budget of 0: the
        // root diving probe still finds an incumbent, which is returned as
        // a best-effort solution with the optimality proof surrendered.
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Le, 7.0);
        m.set_objective(LinExpr::from(x));
        let cfg = MilpConfig {
            node_limit: 0,
            ..MilpConfig::default()
        };
        let s = solve(&m, &cfg).unwrap();
        assert!(!s.stats.proven_optimal);
        assert_eq!(s.stats.nodes, 0);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
        // The surrendered proof still comes with a sound dual bound: the
        // true optimum (x = 3) lies between incumbent and bound.
        assert!(
            s.objective <= 3.0 + 1e-9 && s.stats.dual_bound >= 3.0 - 1e-9,
            "objective {} / dual bound {}",
            s.objective,
            s.stats.dual_bound
        );
    }

    fn knapsack_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1000.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1000.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1000.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::from(a) * 10.0 + (4.0, b) + (5.0, c),
            Cmp::Le,
            600.0,
        );
        m.add_constraint(LinExpr::from(a) * 2.0 + (2.0, b) + (6.0, c), Cmp::Le, 300.0);
        m.set_objective(LinExpr::from(a) * 10.0 + (6.0, b) + (4.0, c));
        m
    }

    #[test]
    fn proven_solve_reports_tight_dual_bound() {
        let s = solve(&knapsack_model(), &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert!(
            (s.stats.dual_bound - s.objective).abs() < 1e-9,
            "proven: bound {} must equal objective {}",
            s.stats.dual_bound,
            s.objective
        );
    }

    #[test]
    fn pre_cancelled_solve_stops_without_incumbent() {
        // A token tripped before the search starts: the root dive bails at
        // its first check and the first node interrupts the pool — no
        // incumbent exists, which surfaces as BudgetExhausted (the service
        // layer maps it to the `timeout` wire code).
        let cancel = Cancel::new();
        cancel.cancel();
        let cfg = MilpConfig {
            cancel,
            ..MilpConfig::default()
        };
        assert!(matches!(
            solve(&knapsack_model(), &cfg),
            Err(MilpError::BudgetExhausted)
        ));
    }

    #[test]
    fn interrupted_search_brackets_the_true_optimum() {
        // Stop almost immediately via the node budget: the incumbent (from
        // the root dive) and the abandoned-node dual bound must bracket the
        // known optimum 732, and the proof must be surrendered. Root cuts
        // are pinned off — Gomory rounds close this model's gap so well the
        // search would otherwise finish inside the two-node budget, and the
        // scenario under test is the *interrupted* bracketing contract.
        let cfg = MilpConfig {
            node_limit: 2,
            cuts: false,
            ..MilpConfig::default()
        };
        let s = solve(&knapsack_model(), &cfg).unwrap();
        assert!(!s.stats.proven_optimal);
        assert!(s.objective <= 732.0 + 1e-9, "incumbent {}", s.objective);
        assert!(
            s.stats.dual_bound >= 732.0 - 1e-9,
            "dual bound {} must stay above the optimum",
            s.stats.dual_bound
        );
    }

    #[test]
    fn cancel_mid_search_keeps_soundness() {
        // Deterministic mid-search interruption via the poll countdown:
        // whenever it trips, the result must be a feasible point whose
        // objective and dual bound bracket the optimum — or, if the search
        // finished first, the proven optimum itself.
        for polls in [1, 2, 4, 16] {
            let cfg = MilpConfig {
                cancel: Cancel::after_polls(polls),
                ..MilpConfig::default()
            };
            let m = knapsack_model();
            match solve(&m, &cfg) {
                Ok(s) => {
                    assert!(m.check_feasible(&s.values, 1e-6).is_ok());
                    assert!(s.objective <= 732.0 + 1e-9);
                    assert!(s.stats.dual_bound >= 732.0 - 1e-9);
                    if s.stats.proven_optimal {
                        assert_eq!(s.objective.round() as i64, 732);
                    }
                }
                Err(e) => assert_eq!(e, MilpError::BudgetExhausted),
            }
        }
    }

    #[test]
    fn warm_starts_are_exercised() {
        // Any branching model solves child LPs from the parent basis.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 9.0))
            .collect();
        let mut e = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + ((i % 3 + 2) as f64, v);
            obj = obj + ((i % 5 + 1) as f64, v);
        }
        m.add_constraint(e, Cmp::Le, 37.5);
        m.set_objective(obj);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert!(
            s.stats.warm_solves > 0,
            "expected warm-started child solves, stats: {:?}",
            s.stats
        );
    }

    #[test]
    fn infeasible_rounding_leaf_is_rejected() {
        // Regression: the integral-leaf incumbent path was guarded only by
        // a `debug_assert!` — in release builds an infeasible rounding
        // became the reported optimum. With a loose integrality tolerance
        // the LP optimum x = 0.6 of `10x ≤ 6` counts as integral, and its
        // rounding x = 1 violates the row by 4. The leaf must be rejected
        // (surrendering the proof), never offered.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) * 10.0, Cmp::Le, 6.0);
        m.set_objective(LinExpr::from(x));
        let cfg = MilpConfig {
            int_tol: 0.45,
            // presolve would fold the singleton row into x's bounds and
            // hide the leaf this regression is about
            presolve: false,
            ..MilpConfig::default()
        };
        // Surrendering with an error is sound; claiming the infeasible
        // rounding as the optimum is the bug.
        if let Ok(s) = solve(&m, &cfg) {
            assert!(
                m.check_feasible(&s.values, 1e-6).is_ok(),
                "reported optimum is infeasible: {:?}",
                s.values
            );
        }

        // The subtler variant: the rounding violates the row by *less*
        // than int_tol (x ≤ 0.6 violated by 0.4 < 0.45). The feasibility
        // gate is capped below int_tol precisely so a loose integrality
        // tolerance cannot whitewash the violation its own rounding
        // introduced.
        let mut m2 = Model::new(Sense::Maximize);
        let x2 = m2.add_var("x", VarKind::Integer, 0.0, 1.0);
        m2.add_constraint(LinExpr::from(x2), Cmp::Le, 0.6);
        m2.set_objective(LinExpr::from(x2));
        if let Ok(s) = solve(&m2, &cfg) {
            assert!(
                m2.check_feasible(&s.values, 1e-6).is_ok(),
                "reported optimum is infeasible: {:?}",
                s.values
            );
        }
    }

    #[test]
    fn pseudocost_engine_reports_stats() {
        // A branching model: the first nodes have unreliable pseudocosts,
        // so strong-branching-lite probes must fire, and the incremental
        // dive tableau must never reinstall a basis.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 9.0))
            .collect();
        let mut e = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + ((i % 3 + 2) as f64, v);
            obj = obj + ((i % 5 + 1) as f64, v);
        }
        m.add_constraint(e, Cmp::Le, 37.5);
        m.set_objective(obj);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert_eq!(
            s.stats.dive_reinstalls, 0,
            "dive tableau must not reinstall"
        );
        assert!(
            s.stats.nodes <= 1 || s.stats.strong_branch_probes > 0,
            "branching without reliable pseudocosts must probe, stats: {:?}",
            s.stats
        );

        // Disabling pseudocost branching falls back to most-fractional and
        // must not change the objective (or touch the probe counters).
        let off = solve(
            &m,
            &MilpConfig {
                pseudocost: false,
                ..MilpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off.objective.round() as i64, s.objective.round() as i64);
        assert_eq!(off.stats.strong_branch_probes, 0);
        assert_eq!(off.stats.pseudocost_branches, 0);
    }

    /// A 10-variable, 6-constraint model whose search tree has plenty of
    /// nodes — the workhorse for thread-invariance and resume tests.
    fn wide_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
            .collect();
        for k in 0..6 {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                e = e + (((i * 7 + k * 11) % 5 + 1) as f64, v);
            }
            m.add_constraint(e, Cmp::Le, (35 + 3 * k) as f64);
        }
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj = obj + (((i * 13) % 7 + 1) as f64, v);
        }
        m.set_objective(obj);
        m
    }

    #[test]
    fn thread_count_does_not_change_objective() {
        // A search tree with plenty of nodes; every thread count must agree.
        let m = wide_model();
        let reference = solve(&m, &MilpConfig::default()).unwrap();
        assert!(reference.stats.proven_optimal);
        for threads in [2, 3, 4, 8] {
            let s = solve(&m, &MilpConfig::with_threads(threads)).unwrap();
            assert!(s.stats.proven_optimal);
            assert_eq!(
                s.objective.round() as i64,
                reference.objective.round() as i64,
                "threads={threads} changed the objective"
            );
            assert!(m.check_feasible(&s.values, 1e-6).is_ok());
        }
    }

    #[test]
    fn parallel_minimization_agrees_too() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..9)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 5.0))
            .collect();
        for k in 0..5 {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                e = e + (((i + k) % 4 + 1) as f64, v);
            }
            m.add_constraint(e, Cmp::Ge, (12 + k) as f64);
        }
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj = obj + ((i % 3 + 1) as f64, v);
        }
        m.set_objective(obj);
        let seq = solve(&m, &MilpConfig::default()).unwrap();
        let par = solve(&m, &MilpConfig::with_threads(4)).unwrap();
        assert!(seq.stats.proven_optimal && par.stats.proven_optimal);
        assert_eq!(seq.objective.round() as i64, par.objective.round() as i64);
    }

    mod property {
        use super::super::*;
        use crate::{Cmp, LinExpr, Model, Sense, VarKind};
        use proptest::prelude::*;

        /// Exhaustive optimum over the integer box `[0, 4]³`.
        fn brute_force(cons: &[([i64; 3], i64)], obj: &[i64; 3], sense: Sense) -> Option<i64> {
            let mut best: Option<i64> = None;
            for x in 0i64..=4 {
                for y in 0i64..=4 {
                    for z in 0i64..=4 {
                        let feasible = cons
                            .iter()
                            .all(|(c, rhs)| c[0] * x + c[1] * y + c[2] * z <= *rhs);
                        if feasible {
                            let v = obj[0] * x + obj[1] * y + obj[2] * z;
                            best = Some(match (best, sense) {
                                (None, _) => v,
                                (Some(b), Sense::Maximize) => b.max(v),
                                (Some(b), Sense::Minimize) => b.min(v),
                            });
                        }
                    }
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn milp_matches_brute_force(
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
                threads in 1usize..=4,
            ) {
                let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
                let mut m = Model::new(sense);
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                    .collect();
                for (coefs, rhs) in &cons {
                    let mut e = LinExpr::new();
                    for (i, &c) in coefs.iter().enumerate() {
                        e = e + (c as f64, vars[i]);
                    }
                    m.add_constraint(e, Cmp::Le, *rhs as f64);
                }
                let mut o = LinExpr::new();
                for (i, &c) in obj.iter().enumerate() {
                    o = o + (c as f64, vars[i]);
                }
                m.set_objective(o);

                let expected = brute_force(&cons, &obj, sense);
                // Default engine (cuts + DSE pricing + propagation +
                // pseudocost branching + presolve on), the fully stripped
                // configuration (every accelerator off — the PR 8 baseline
                // tree), and the reference-LP differential must all match
                // the brute force — objective equivalence across every
                // knob combination.
                let configs = [
                    MilpConfig::with_threads(threads),
                    MilpConfig {
                        pseudocost: false,
                        presolve: false,
                        threads,
                        ..MilpConfig::default()
                    },
                    MilpConfig {
                        cuts: false,
                        propagation: false,
                        pricing: crate::Pricing::Dantzig,
                        pseudocost: false,
                        presolve: false,
                        threads,
                        ..MilpConfig::default()
                    },
                    MilpConfig {
                        reference_lp: true,
                        threads,
                        ..MilpConfig::default()
                    },
                ];
                for cfg in configs {
                    match solve(&m, &cfg) {
                        Ok(sol) => {
                            prop_assert!(sol.stats.proven_optimal);
                            let got = sol.objective.round() as i64;
                            prop_assert_eq!(Some(got), expected,
                                "solver {} vs brute force {:?} (cfg {:?})", got, expected, cfg);
                            prop_assert!(m.check_feasible(&sol.values, 1e-5).is_ok());
                        }
                        Err(MilpError::Infeasible) => {
                            prop_assert_eq!(expected, None, "solver claims infeasible");
                        }
                        Err(e) => prop_assert!(false, "unexpected solver error {e}"),
                    }
                }
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            #[test]
            fn interrupt_resume_is_equivalent(
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
                step in 1usize..=6,
            ) {
                let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
                let mut m = Model::new(sense);
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                    .collect();
                for (coefs, rhs) in &cons {
                    let mut e = LinExpr::new();
                    for (i, &c) in coefs.iter().enumerate() {
                        e = e + (c as f64, vars[i]);
                    }
                    m.add_constraint(e, Cmp::Le, *rhs as f64);
                }
                let mut o = LinExpr::new();
                for (i, &c) in obj.iter().enumerate() {
                    o = o + (c as f64, vars[i]);
                }
                m.set_objective(o);

                // Interrupt every `step` nodes, checkpoint, resume —
                // the chain must land on exactly the uninterrupted
                // run's result, tree, and trace.
                let full = solve(&m, &MilpConfig::default());
                let (run, _) = super::run_resume_chain(&m, step);
                match (full, run.result) {
                    (Ok(f), Ok(r)) => {
                        prop_assert_eq!(f.objective, r.objective);
                        prop_assert_eq!(f.stats.nodes, r.stats.nodes);
                        prop_assert_eq!(f.stats.trace_digest, r.stats.trace_digest);
                        prop_assert_eq!(f.values, r.values);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a, b),
                    (f, r) => prop_assert!(
                        false,
                        "uninterrupted {:?} vs resumed chain {:?}",
                        f.map(|s| s.objective),
                        r.map(|s| s.objective)
                    ),
                }
            }
        }
    }

    #[test]
    fn integral_objective_rounding_still_optimal() {
        // LP bound is fractional; with rounding enabled the solver must not
        // cut off the true optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0 + (3.0, y), Cmp::Le, 12.0);
        m.set_objective(LinExpr::from(x) + (2.0, y));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        // best: y=4, x=0 -> 8
        assert_eq!(s.objective.round() as i64, 8);
    }

    #[test]
    fn trace_digest_and_node_count_are_thread_invariant() {
        // Not just the objective: the *entire explored tree* must be
        // identical at every thread count — node count, trace digest,
        // values, and every semantic counter.
        let m = wide_model();
        let reference = solve(&m, &MilpConfig::default()).unwrap();
        assert!(reference.stats.proven_optimal);
        assert!(reference.stats.nodes > BATCH, "want a multi-round search");
        for threads in [2, 4] {
            let s = solve(&m, &MilpConfig::with_threads(threads)).unwrap();
            assert_eq!(
                s.stats.nodes, reference.stats.nodes,
                "threads={threads} changed the node count"
            );
            assert_eq!(
                s.stats.trace_digest, reference.stats.trace_digest,
                "threads={threads} changed the explored-node sequence"
            );
            assert_eq!(s.objective, reference.objective);
            assert_eq!(s.values, reference.values);
            assert_eq!(s.stats.lp_solves, reference.stats.lp_solves);
            assert_eq!(
                s.stats.pseudocost_branches,
                reference.stats.pseudocost_branches
            );
            assert_eq!(
                s.stats.strong_branch_probes,
                reference.stats.strong_branch_probes
            );
        }
    }

    /// Drives a solve of `m` to completion in slices of `step` nodes,
    /// checkpointing at every interruption and resuming, and returns the
    /// final run plus the number of resumes it took.
    fn run_resume_chain(m: &Model, step: usize) -> (MilpRun, usize) {
        let mut limit = step;
        let mut ck: Option<SearchCheckpoint> = None;
        let mut resumes = 0usize;
        loop {
            let cfg = MilpConfig {
                node_limit: limit,
                ..MilpConfig::default()
            };
            let run = solve_resumable(m, &cfg, ck.as_ref());
            match run.checkpoint {
                Some(c) => {
                    assert!(c.matches(m, &cfg), "checkpoint must match its own solve");
                    assert_eq!(c.resumed_chain() as usize, resumes);
                    ck = Some(c);
                    // The node budget is cumulative across the chain.
                    limit += step;
                    resumes += 1;
                    assert!(resumes < 10_000, "resume chain does not converge");
                }
                None => return (run, resumes),
            }
        }
    }

    #[test]
    fn interrupted_resume_chain_matches_uninterrupted() {
        let m = wide_model();
        let full = solve(&m, &MilpConfig::default()).unwrap();
        assert!(full.stats.proven_optimal);
        for step in [1usize, 3, 8, 17] {
            let (run, resumes) = run_resume_chain(&m, step);
            let s = run.result.expect("chain must finish like the full solve");
            assert!(resumes > 0, "step {step} never interrupted");
            assert!(s.stats.resumed, "final slice must report resumed");
            assert!(s.stats.proven_optimal);
            assert_eq!(s.objective, full.objective, "step {step}");
            assert_eq!(s.values, full.values, "step {step}");
            assert_eq!(s.stats.nodes, full.stats.nodes, "step {step}");
            assert_eq!(
                s.stats.trace_digest, full.stats.trace_digest,
                "step {step}: resumed chain explored a different tree"
            );
            assert_eq!(s.stats.lp_solves, full.stats.lp_solves, "step {step}");
            assert_eq!(
                s.stats.strong_branch_probes, full.stats.strong_branch_probes,
                "step {step}"
            );
        }
    }

    #[test]
    fn checkpoint_survives_json_roundtrip() {
        let m = wide_model();
        let cfg = MilpConfig {
            node_limit: 5,
            ..MilpConfig::default()
        };
        let run = solve_resumable(&m, &cfg, None);
        let ck = run.checkpoint.expect("node_limit 5 must interrupt");
        let twin = SearchCheckpoint::from_json(&ck.to_json()).expect("round-trip");
        assert!(twin.matches(&m, &cfg));
        assert_eq!(twin.nodes(), ck.nodes());

        // Resuming from the original and from its JSON round-trip twin
        // must explore byte-identical trees.
        let cfg2 = MilpConfig::default();
        let a = solve_resumable(&m, &cfg2, Some(&ck));
        let b = solve_resumable(&m, &cfg2, Some(&twin));
        let (a, b) = (a.result.unwrap(), b.result.unwrap());
        assert!(a.stats.resumed && b.stats.resumed);
        assert_eq!(a.stats.nodes, b.stats.nodes);
        assert_eq!(a.stats.trace_digest, b.stats.trace_digest);
        assert_eq!(a.objective, b.objective);
        assert_eq!(a.values, b.values);
    }

    #[test]
    fn mismatched_checkpoint_is_ignored() {
        // A checkpoint from one model fed into another's solve must be
        // silently dropped: cold start, correct optimum, resumed=false.
        let k = knapsack_model();
        let ck = solve_resumable(
            &k,
            &MilpConfig {
                node_limit: 1,
                ..MilpConfig::default()
            },
            None,
        )
        .checkpoint
        .expect("node_limit 1 must interrupt the knapsack");
        let m = wide_model();
        let run = solve_resumable(&m, &MilpConfig::default(), Some(&ck));
        let s = run.result.unwrap();
        assert!(!s.stats.resumed, "foreign checkpoint must not resume");
        assert!(s.stats.proven_optimal);
        let cold = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.objective, cold.objective);
        assert_eq!(s.stats.trace_digest, cold.stats.trace_digest);

        // Same story for a config whose *semantics* differ (int_tol).
        let cfg = MilpConfig {
            int_tol: 1e-5,
            ..MilpConfig::default()
        };
        let ck2 = solve_resumable(
            &m,
            &MilpConfig {
                node_limit: 1,
                ..MilpConfig::default()
            },
            None,
        )
        .checkpoint
        .unwrap();
        assert!(!ck2.matches(&m, &cfg));
        let s2 = solve_resumable(&m, &cfg, Some(&ck2)).result.unwrap();
        assert!(!s2.stats.resumed);
    }

    #[test]
    fn propagation_fathoms_row_infeasible_child_before_lp() {
        // Maximize 2x + 2y under 2x + 2y ≤ 7: the root LP sits on the face
        // x + y = 3.5 (every vertex fractional) with bound 7, which the
        // integral round-down cannot improve, so the root must branch even
        // though the dive already landed the true optimum 6. The node-time
        // objective-cutoff row then demands 2x + 2y ≥ 7, and the down child
        // of the branch caps that row's activity at 6: propagation proves
        // the child empty from its box alone and must fathom it before any
        // LP (the counter ticks).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 4.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 4.0);
        m.add_constraint(LinExpr::from(x) * 2.0 + (2.0, y), Cmp::Le, 7.0);
        m.set_objective(LinExpr::from(x) * 2.0 + (2.0, y));
        // Cuts off: a root GMI cut closes this model's gap outright, and
        // the point of the test is the *branching* path.
        let cfg = MilpConfig {
            cuts: false,
            ..MilpConfig::default()
        };
        let s = solve(&m, &cfg).unwrap();
        assert!(s.stats.proven_optimal);
        assert!((s.objective - 6.0).abs() < 1e-6);
        assert!(
            s.stats.propagation_fathoms >= 1,
            "the down child must die in propagation, got {:?}",
            s.stats
        );
        // The fathom is an accelerator, not a semantics change.
        let off = solve(
            &m,
            &MilpConfig {
                propagation: false,
                ..cfg
            },
        )
        .unwrap();
        assert_eq!(off.stats.propagation_fathoms, 0);
        assert!((off.objective - s.objective).abs() < 1e-6);
    }

    #[test]
    fn checkpoint_rejects_accelerator_config_drift() {
        // The fingerprint must cover every knob that shapes the tree:
        // resuming a default-config checkpoint under flipped cuts, pricing,
        // or propagation would splice incompatible search frontiers, so
        // each mismatch has to force a cold start instead.
        let m = wide_model();
        let ck = solve_resumable(
            &m,
            &MilpConfig {
                node_limit: 1,
                ..MilpConfig::default()
            },
            None,
        )
        .checkpoint
        .expect("node_limit 1 must interrupt the wide model");
        for cfg in [
            MilpConfig {
                cuts: false,
                ..MilpConfig::default()
            },
            MilpConfig {
                pricing: crate::Pricing::Dantzig,
                ..MilpConfig::default()
            },
            MilpConfig {
                propagation: false,
                ..MilpConfig::default()
            },
        ] {
            assert!(
                !ck.matches(&m, &cfg),
                "fingerprint must reject drift in {cfg:?}"
            );
            let run = solve_resumable(&m, &cfg, Some(&ck));
            let s = run.result.unwrap();
            assert!(!s.stats.resumed, "drifted config must cold-start");
            assert!(s.stats.proven_optimal);
            assert_eq!(s.objective, solve(&m, &cfg).unwrap().objective);
        }
        // Sanity: the unchanged config still resumes.
        assert!(ck.matches(&m, &MilpConfig::default()));
    }
}
