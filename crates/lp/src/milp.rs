//! Parallel branch-and-bound MILP solver on top of the bounded-variable
//! simplex relaxation.
//!
//! The search is organized around a shared best-bound node pool
//! ([`crate::pool`]) drained by `std::thread::scope` workers. Each worker
//! owns a private copy of the model (bounds are the only thing a node
//! changes — under the bounded-variable simplex a branching step never
//! grows the tableau), pops the open node with the best inherited dual
//! bound, solves its LP relaxation, and pushes the two children. Pruning
//! uses a shared atomic incumbent bound, so a bound improvement found by
//! one worker immediately tightens every other worker's search.
//!
//! ## Cold nodes, incremental dives
//!
//! Node relaxations are solved **cold** on purpose: a warm re-solve from
//! the parent basis returns the same objective, but lands on a
//! minimally-repaired vertex whose fractional pattern systematically
//! misleads fractionality-guided branching (measured 100-1000x tree
//! blowups on the register-saturation corpus). On the bounded path the
//! cold node tableau is kept live as a [`crate::simplex::DiveTableau`],
//! which serves two consumers:
//!
//! - the **diving primal heuristic**: each worker periodically dives from
//!   its current subproblem, fixing near-integral variables in batches.
//!   Every dive step is an in-place bound fold plus dual repair on the
//!   live tableau — **no per-step basis reinstall** (the reinstall was the
//!   dominant warm cost of the previous `solve_with_basis` chain;
//!   [`MilpStats::dive_reinstalls`] pins the invariant at zero). The
//!   incumbents those dives find are what turn the near-flat big-M dual
//!   bounds into actual pruning.
//! - **strong-branching-lite probes** for pseudocost initialization (see
//!   below), which clone the tableau (one memcpy ≈ one pivot) and tighten
//!   the probe bound on the copy.
//!
//! ## Pseudocost branching
//!
//! Branching is guided by **pseudocosts**: shared per-variable estimates
//! of the objective degradation per unit of fractional distance, learned
//! from every child relaxation the search solves. Variables without
//! reliable estimates are initialized by strong-branching-lite probes on
//! the node's dive tableau (bounded per node); once both directions have
//! enough observations the accumulated estimates are trusted outright
//! ([`MilpStats::pseudocost_branches`] counts those decisions). The score
//! is the classic product rule `max(down·f⁻, ε) · max(up·f⁺, ε)`; an
//! infeasible probe direction scores infinite (branching there prunes a
//! whole side immediately). [`MilpConfig::pseudocost`] falls back to
//! most-fractional branching when disabled.
//!
//! Determinism: pruning only ever discards nodes that provably cannot
//! *strictly* beat the incumbent, so the optimal objective is identical for
//! every thread count — dives only add incumbents, and pseudocost updates
//! only steer which node is *explored* next; neither can change the
//! reported optimum. (The witness values among equally-optimal solutions
//! may still vary with thread count, because a different exploration order
//! encounters a different subset of the optima.)
//!
//! The dual bound is rounded to an integer before pruning when
//! [`MilpConfig::integral_objective`] is set (every objective in the
//! register-saturation models has integer coefficients, so `floor`/`ceil`
//! of the relaxation bound is a valid tightening).

use crate::cancel::{min_deadline, Cancel};
use crate::model::{Model, Sense};
use crate::pool::{BranchStep, Incumbent, Node, NodePool, Pseudocosts};
use crate::simplex::{DiveStep, DiveTableau, LpOutcome, LpStats, Solution};
use crate::EPS;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// How many nodes a worker processes between wall-clock checks —
/// `Instant::now` is a syscall-ish vsyscall and the node loop is hot, so
/// the deadline is only sampled every `TIME_CHECK_MASK + 1` nodes.
const TIME_CHECK_MASK: usize = 63;

/// A worker re-runs the diving primal heuristic from its current
/// subproblem once per this many processed nodes (power of two).
const DIVE_PERIOD: usize = 64;

/// Fixpoint rounds for the presolve pass wired in front of the search.
const PRESOLVE_ROUNDS: usize = 4;

/// A pseudocost direction is *reliable* — trusted without further strong
/// branching — once it has this many observations.
const PC_RELIABLE: usize = 1;

/// At most this many strong-branching-lite probes per node (each probe is
/// two tableau clones + dual repairs on the dive tableau).
const SB_PER_NODE: usize = 8;

/// Pivot cap per strong-branching probe repair: a probe is an estimate,
/// not a proof, so its dual repair is cut off early and a capped-out probe
/// simply yields no estimate (falling back to the store averages).
const SB_PIVOT_CAP: usize = 160;

/// Floor for the pseudocost product score: keeps a zero estimate on one
/// side from erasing the other side's signal.
const PC_SCORE_EPS: f64 = 1e-4;

/// Knobs for the branch-and-bound driver.
#[derive(Clone, Debug)]
pub struct MilpConfig {
    /// Maximum number of branch-and-bound nodes before giving up.
    pub node_limit: usize,
    /// Wall-clock budget; `None` disables the check. The deadline is
    /// sampled once per 64 nodes per worker (a deliberate trade against
    /// per-node clock reads), so the overshoot is ~64 node-processing
    /// times — negligible normally, but noticeable on models whose single
    /// LP solves are slow. Pair with `node_limit` for a hard stop.
    pub time_limit: Option<std::time::Duration>,
    /// Declare the dual bound integral and round it when pruning (valid
    /// whenever the objective takes integer values on integer solutions).
    pub integral_objective: bool,
    /// Integrality tolerance.
    pub int_tol: f64,
    /// Worker threads draining the node pool (clamped to ≥ 1). The optimal
    /// objective does not depend on this value.
    pub threads: usize,
    /// Pseudocost branching with strong-branching-lite reliability
    /// initialization (default). Disabled, the search falls back to
    /// most-fractional branching. The reference-LP path always uses
    /// most-fractional branching (it has no dive tableau to probe). The
    /// optimal objective does not depend on this flag.
    pub pseudocost: bool,
    /// Run the [`crate::presolve`] pass (singleton-row folding, activity
    /// bound tightening, redundant-row elimination) before the search
    /// (default). Presolve never changes the feasible set, so the optimal
    /// objective does not depend on this flag; [`MilpStats::rows`] /
    /// [`MilpStats::cols`] report the presolved tableau shape.
    pub presolve: bool,
    /// Route every node relaxation through the explicit-bound-row
    /// *reference* simplex ([`crate::reference`]) instead of the
    /// bounded-variable path. Test-only differential baseline: no warm
    /// starts, bound rows double the tableau. The optimal objective must
    /// not depend on this flag.
    pub reference_lp: bool,
    /// Cooperative cancellation token. Its flag is sampled once per node
    /// and inside the simplex pivot loops; its deadline (if any) merges
    /// with `time_limit`. A tripped token stops the search exactly like an
    /// exhausted budget: the best incumbent is returned with
    /// [`MilpStats::proven_optimal`] `false` and a valid
    /// [`MilpStats::dual_bound`], or [`MilpError::BudgetExhausted`] when
    /// no incumbent exists yet. The default token never trips.
    pub cancel: Cancel,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 200_000,
            time_limit: Some(std::time::Duration::from_secs(120)),
            integral_objective: true,
            int_tol: 1e-6,
            threads: 1,
            pseudocost: true,
            presolve: true,
            reference_lp: false,
            cancel: Cancel::new(),
        }
    }
}

impl MilpConfig {
    /// The default configuration with `threads` workers.
    pub fn with_threads(threads: usize) -> Self {
        MilpConfig {
            threads,
            ..MilpConfig::default()
        }
    }
}

/// Why no solution was returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MilpError {
    /// The model has no integer-feasible point.
    Infeasible,
    /// The relaxation (and hence the MILP) is unbounded.
    Unbounded,
    /// Node or time budget exhausted before proving optimality, and no
    /// incumbent was found.
    BudgetExhausted,
    /// The simplex reported unrecoverable numerical trouble (tiny pivots)
    /// and no incumbent was found.
    Numerical,
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "MILP infeasible"),
            MilpError::Unbounded => write!(f, "MILP unbounded"),
            MilpError::BudgetExhausted => write!(f, "MILP budget exhausted without incumbent"),
            MilpError::Numerical => write!(f, "MILP abandoned on numerical trouble"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Solve statistics, attached to every solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct MilpStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved (cold node solves plus every incremental
    /// re-solve on a dive tableau: dive steps and strong-branching
    /// probes).
    pub lp_solves: usize,
    /// Incremental warm re-solves on a live [`DiveTableau`] (the diving
    /// heuristic's chain steps; tree nodes deliberately solve cold).
    pub warm_solves: usize,
    /// Warm re-solves whose dual repair converged — to an optimum *or* to
    /// an infeasibility proof (both are successful warm outcomes; only a
    /// stalled repair discards the tableau). Dive steps are pure bound
    /// tightenings, so this normally equals [`MilpStats::warm_solves`].
    pub warm_hits: usize,
    /// Basis reinstalls performed on behalf of dive steps. The incremental
    /// dive tableau applies bound tightenings in place — **no per-step
    /// reinstall** — so this is zero by construction; the counter is wired
    /// end-to-end so the perf report can pin the invariant (the previous
    /// engine re-installed the parent basis on every dive step, which
    /// dominated its warm cost).
    pub dive_reinstalls: usize,
    /// Branching decisions taken purely from trusted (reliable)
    /// accumulated pseudocosts — no strong-branching probe needed at that
    /// node.
    pub pseudocost_branches: usize,
    /// Strong-branching-lite probes performed to initialize unreliable
    /// pseudocosts (each probes both directions of one variable).
    pub strong_branch_probes: usize,
    /// Total simplex pivots (tableau eliminations, including warm-start
    /// basis reinstalls) across all node LPs.
    pub pivots: usize,
    /// Total bound flips (rank-1 rhs updates in place of pivots).
    pub bound_flips: usize,
    /// Relaxation tableau rows. Equals the structural constraint count on
    /// the bounded-variable path (zero bound rows); the reference path adds
    /// one row per finite upper bound.
    pub rows: usize,
    /// Relaxation tableau columns (structural + slack).
    pub cols: usize,
    /// True iff optimality was proven (budget not exhausted, no numerical
    /// trouble encountered).
    pub proven_optimal: bool,
    /// Best-possible objective value in the model's sense: an upper bound
    /// for maximization, lower for minimization. When optimality was
    /// proven this equals the objective; after an interrupted search it is
    /// the max of the incumbent score and every abandoned subproblem's
    /// relaxation bound, mapped back to objective space. May be infinite
    /// when the search was interrupted before the root relaxation solved.
    pub dual_bound: f64,
}

/// An integer-feasible solution plus solve statistics.
#[derive(Clone, Debug)]
pub struct MilpSolution {
    /// Value per model variable.
    pub values: Vec<f64>,
    /// Objective value in the model's sense.
    pub objective: f64,
    /// Search statistics.
    pub stats: MilpStats,
}

impl From<MilpSolution> for Solution {
    fn from(s: MilpSolution) -> Solution {
        Solution {
            values: s.values,
            objective: s.objective,
        }
    }
}

/// Shared, read-only search context.
struct Ctx<'a> {
    model: &'a Model,
    cfg: &'a MilpConfig,
    /// `+1` for maximize, `-1` for minimize: `score = dir · objective`,
    /// larger always better.
    dir: f64,
    original_bounds: Vec<(f64, f64)>,
    /// Per variable: is it integral (integer or binary)?
    integral: Vec<bool>,
    deadline: Option<Instant>,
    pool: NodePool,
    incumbent: Incumbent,
    /// Shared per-variable up/down degradation estimates.
    pc: Pseudocosts,
    nodes: AtomicUsize,
    lp_solves: AtomicUsize,
    warm_solves: AtomicUsize,
    warm_hits: AtomicUsize,
    dive_reinstalls: AtomicUsize,
    pseudocost_branches: AtomicUsize,
    strong_branch_probes: AtomicUsize,
    pivots: AtomicUsize,
    bound_flips: AtomicUsize,
    budget_hit: AtomicBool,
    numerical: AtomicBool,
    unbounded: AtomicBool,
    /// Max score (dir·objective bound) over subproblems the search dropped
    /// without exploring — budget stops, cancellation, numerical skips,
    /// children rejected by a stopped pool. `max(incumbent score, this)`
    /// is a valid score-space bound on the true optimum of an interrupted
    /// search; stored as f64 bits, `-∞` while nothing was abandoned.
    abandoned_bits: AtomicU64,
}

impl Ctx<'_> {
    /// Integral rounding of a dual bound, in score space.
    fn tighten_score(&self, score: f64) -> f64 {
        if self.cfg.integral_objective && score.is_finite() {
            // score = dir·obj; maximizing the score, the valid integral
            // tightening is always floor (it is ceil in minimize objective
            // space, which is floor after negation).
            (score + self.cfg.int_tol).floor()
        } else {
            score
        }
    }

    /// Does a candidate score strictly beat the current incumbent?
    fn improves(&self, score: f64) -> bool {
        score > self.incumbent.score() + EPS
    }

    /// Folds the score of an abandoned (unexplored) subproblem into the
    /// running dual-bound accumulator via a CAS max loop.
    fn abandon(&self, score: f64) {
        if score == f64::NEG_INFINITY {
            return;
        }
        let bits = &self.abandoned_bits;
        let mut cur = bits.load(Ordering::Relaxed);
        while f64::from_bits(cur) < score {
            match bits.compare_exchange_weak(
                cur,
                score.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(c) => cur = c,
            }
        }
    }

    /// Stops the search as interrupted (budget/deadline/cancel), folding
    /// the given node's score and every still-open node into the
    /// abandoned-bound accumulator so the reported dual bound stays sound.
    fn interrupt(&self, node_score: f64) {
        self.budget_hit.store(true, Ordering::Relaxed);
        self.abandon(node_score);
        let best_open = self.pool.stop();
        self.abandon(best_open);
    }

    /// Feasibility tolerance for offering an incumbent. Deliberately
    /// *capped* below the integrality tolerance: `int_tol` governs which
    /// LP values count as integral, but a rounding that violates a
    /// constraint by up to `int_tol` must never be reported as an optimum
    /// — with a loose `int_tol` the gate would otherwise whitewash exactly
    /// the violations the rounding introduced.
    fn feas_tol(&self) -> f64 {
        self.cfg.int_tol.min(1e-5)
    }
}

/// Solves the mixed-integer program. Returns the optimal solution, or the
/// best incumbent if the budget ran out (flagged in
/// [`MilpStats::proven_optimal`]).
///
/// With [`MilpConfig::presolve`] (the default) the model first runs
/// through [`crate::presolve`]: singleton rows fold into bounds, activity
/// arguments tighten bounds and drop redundant rows, and a
/// presolve-proven-infeasible model returns [`MilpError::Infeasible`]
/// without any search. Presolve keeps the variable set (and the integer
/// feasible set) intact, so the returned values are valid for the original
/// model.
pub fn solve(model: &Model, cfg: &MilpConfig) -> Result<MilpSolution, MilpError> {
    let reduced;
    let model = if cfg.presolve {
        match crate::presolve::presolve(model, PRESOLVE_ROUNDS) {
            crate::presolve::PresolveOutcome::Infeasible => return Err(MilpError::Infeasible),
            crate::presolve::PresolveOutcome::Reduced { model: m, .. } => {
                reduced = m;
                &reduced
            }
        }
    } else {
        model
    };
    solve_presolved(model, cfg)
}

/// The branch-and-bound search on an (optionally presolved) model.
fn solve_presolved(model: &Model, cfg: &MilpConfig) -> Result<MilpSolution, MilpError> {
    let start = Instant::now();
    let threads = cfg.threads.max(1);
    let n = model.num_vars();
    let ctx = Ctx {
        model,
        cfg,
        dir: match model.sense() {
            Sense::Maximize => 1.0,
            Sense::Minimize => -1.0,
        },
        original_bounds: (0..n)
            .map(|i| model.bounds(crate::VarId(i as u32)))
            .collect(),
        integral: (0..n)
            .map(|i| model.is_integral(crate::VarId(i as u32)))
            .collect(),
        deadline: min_deadline(cfg.time_limit.map(|tl| start + tl), cfg.cancel.deadline()),
        pool: NodePool::new(Node {
            bounds: Vec::new(),
            depth: 0,
            score: f64::INFINITY,
            branch: None,
        }),
        incumbent: Incumbent::new(),
        pc: Pseudocosts::new(n),
        nodes: AtomicUsize::new(0),
        lp_solves: AtomicUsize::new(0),
        warm_solves: AtomicUsize::new(0),
        warm_hits: AtomicUsize::new(0),
        dive_reinstalls: AtomicUsize::new(0),
        pseudocost_branches: AtomicUsize::new(0),
        strong_branch_probes: AtomicUsize::new(0),
        pivots: AtomicUsize::new(0),
        bound_flips: AtomicUsize::new(0),
        budget_hit: AtomicBool::new(false),
        numerical: AtomicBool::new(false),
        unbounded: AtomicBool::new(false),
        abandoned_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
    };

    // Seed the shared incumbent with a deterministic root dive before the
    // workers spawn: every thread count starts the tree search from the
    // same incumbent floor, which keeps multi-threaded exploration from
    // wandering incumbent-less when pop-order races delay the per-worker
    // dives.
    dive_probe(&ctx);

    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| worker(&ctx));
        }
    });

    if ctx.unbounded.load(Ordering::Relaxed) {
        return Err(MilpError::Unbounded);
    }
    let budget_hit = ctx.budget_hit.load(Ordering::Relaxed);
    let numerical = ctx.numerical.load(Ordering::Relaxed);
    let (rows, cols) = if cfg.reference_lp {
        crate::reference::tableau_shape(model)
    } else {
        crate::simplex::tableau_shape(model)
    };
    let stats = MilpStats {
        nodes: ctx.nodes.load(Ordering::Relaxed),
        lp_solves: ctx.lp_solves.load(Ordering::Relaxed),
        warm_solves: ctx.warm_solves.load(Ordering::Relaxed),
        warm_hits: ctx.warm_hits.load(Ordering::Relaxed),
        dive_reinstalls: ctx.dive_reinstalls.load(Ordering::Relaxed),
        pseudocost_branches: ctx.pseudocost_branches.load(Ordering::Relaxed),
        strong_branch_probes: ctx.strong_branch_probes.load(Ordering::Relaxed),
        pivots: ctx.pivots.load(Ordering::Relaxed),
        bound_flips: ctx.bound_flips.load(Ordering::Relaxed),
        rows,
        cols,
        proven_optimal: !budget_hit && !numerical,
        dual_bound: {
            let inc_score = ctx.incumbent.score();
            let score_bound = if budget_hit || numerical {
                let abandoned = f64::from_bits(ctx.abandoned_bits.load(Ordering::Relaxed));
                inc_score.max(abandoned)
            } else {
                inc_score
            };
            ctx.dir * score_bound
        },
    };
    match ctx.incumbent.into_best() {
        Some((objective, values)) => Ok(MilpSolution {
            values,
            objective,
            stats,
        }),
        None if budget_hit => Err(MilpError::BudgetExhausted),
        None if numerical => Err(MilpError::Numerical),
        None => Err(MilpError::Infeasible),
    }
}

/// Charges one LP solve's [`LpStats`] to the shared counters. This is the
/// single accounting funnel for every solve the search performs; when the
/// solve ran on behalf of a dive chain (`dive`), its basis-reinstall count
/// feeds [`MilpStats::dive_reinstalls`] — the incremental dive tableau
/// performs none, so any nonzero there means a dive step regressed to a
/// reinstalling warm solve.
fn charge_lp_stats(ctx: &Ctx<'_>, st: &LpStats, dive: bool) {
    ctx.lp_solves.fetch_add(1, Ordering::Relaxed);
    ctx.pivots.fetch_add(st.pivots, Ordering::Relaxed);
    ctx.bound_flips.fetch_add(st.bound_flips, Ordering::Relaxed);
    if dive {
        ctx.dive_reinstalls
            .fetch_add(st.reinstalls, Ordering::Relaxed);
    }
}

/// One counted cold LP relaxation solve, routed through the configured
/// path. On the bounded-variable path the optimal tableau is kept live as
/// a [`DiveTableau`] for strong-branching probes and the periodic dive;
/// the explicit-bound-row reference path ([`MilpConfig::reference_lp`])
/// returns no tableau.
fn solve_node_lp(ctx: &Ctx<'_>, work: &Model) -> (LpOutcome, Option<DiveTableau>) {
    if ctx.cfg.reference_lp {
        let (outcome, lp_stats) = crate::reference::solve_relaxation_stats(work);
        charge_lp_stats(ctx, &lp_stats, false);
        (outcome, None)
    } else {
        cold_dive_tableau(ctx, work, false)
    }
}

/// One counted cold solve that keeps the tableau live (the bounded node
/// path, the root probe, and the reference path's dive entry).
fn cold_dive_tableau(ctx: &Ctx<'_>, model: &Model, dive: bool) -> (LpOutcome, Option<DiveTableau>) {
    let (outcome, dt, lp_stats) = DiveTableau::new_cancellable(model, Some(&ctx.cfg.cancel));
    charge_lp_stats(ctx, &lp_stats, dive);
    (outcome, dt)
}

/// Charges the pivot/flip work a dive tableau performed since `before`
/// (its [`DiveTableau::work`] snapshot) to the shared counters. In-place
/// tableau work by construction involves no basis reinstall.
fn charge_dive_work(ctx: &Ctx<'_>, dt: &DiveTableau, before: (usize, usize)) {
    let (p, f) = dt.work();
    ctx.pivots.fetch_add(p - before.0, Ordering::Relaxed);
    ctx.bound_flips.fetch_add(f - before.1, Ordering::Relaxed);
}

/// One counted incremental re-solve on a live dive tableau: applies the
/// bound tightenings in place (rank-1 rhs folds — **zero** basis
/// reinstalls, see [`MilpStats::dive_reinstalls`]) and dual-repairs.
fn dive_tighten(
    ctx: &Ctx<'_>,
    dt: &mut DiveTableau,
    changes: &[(crate::VarId, f64, f64)],
    work: &Model,
) -> DiveStep {
    ctx.lp_solves.fetch_add(1, Ordering::Relaxed);
    ctx.warm_solves.fetch_add(1, Ordering::Relaxed);
    let before = dt.work();
    let step = dt.tighten(changes, work);
    charge_dive_work(ctx, dt, before);
    // Both Optimal and Infeasible are *converged* warm outcomes (the dual
    // repair finished — an infeasibility proof is a success, exactly as on
    // the old `solve_with_basis` path); only a stall discards the tableau.
    if !matches!(step, DiveStep::Stalled) {
        ctx.warm_hits.fetch_add(1, Ordering::Relaxed);
    }
    step
}

/// How close to an integer a variable must sit for the diving heuristic to
/// batch-fix it alongside the most fractional one ("vector diving"). The
/// big-M RS relaxations park many binaries at values like `0.98`; fixing
/// them together collapses a dive from one LP per variable to a handful of
/// LPs total.
const DIVE_BATCH_TOL: f64 = 0.1;

/// Diving primal heuristic on the **incremental dive tableau**: from the
/// relaxation `sol` of the subproblem whose optimal tableau lives in `dt`,
/// repeatedly fix the most fractional integral variable — together with
/// every near-integral one (within [`DIVE_BATCH_TOL`] of an integer) — to
/// its nearest in-bounds integer and dual-repair **in place**. No tableau
/// rebuild, no basis reinstall, no model mutation: each step is a batch of
/// rank-1 rhs folds plus a few dual pivots. An infeasible batch step
/// restores the pre-step tableau (one clone held per step) and falls back
/// to fixing the single most fractional variable; if that is infeasible
/// too, its opposite rounding is tried once, and a further failure aborts
/// the dive. A stalled dual repair aborts the dive outright (the tableau
/// state is unreliable, and the dive is only a heuristic). When the dive
/// reaches an integral relaxation, the (feasibility-checked) point is
/// offered as an incumbent.
///
/// The dive never prunes and never proves anything; it only feeds the
/// incumbent bound, so it cannot change the reported optimal objective
/// (pruning requires *strict* improvement) no matter when or on which
/// worker it runs.
fn dive_from(ctx: &Ctx<'_>, work: &Model, mut dt: DiveTableau, mut sol: Solution) {
    let max_steps = 2 * ctx.integral.len() + 8;
    let mut batch: Vec<(crate::VarId, f64, f64)> = Vec::new();
    // Pre-step snapshot buffer, allocated once per dive and refilled by
    // `clone_from` each step (a failed batch backs out by restoring it —
    // the dive tableau itself only supports tightenings).
    let mut snap = dt.clone();
    for step in 0..max_steps {
        if step & 7 == 0 {
            // The dive is a pure heuristic — abandoning it mid-chain needs
            // no bound accounting.
            if ctx.cfg.cancel.is_set() {
                return;
            }
            if let Some(dl) = ctx.deadline {
                if Instant::now() > dl {
                    return;
                }
            }
        }
        // Most fractional integral variable of the current relaxation.
        let pick = select_most_fractional(ctx, &sol).map(|(v, x)| (v.index(), x));
        let Some((i, x)) = pick else {
            // Integral relaxation: offer it.
            let mut values = sol.values;
            for (i, val) in values.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            if ctx.model.check_feasible(&values, ctx.feas_tol()).is_ok() {
                let objective = ctx.model.objective.eval(&values);
                ctx.incumbent
                    .offer(ctx.dir * objective, objective, values, EPS);
            }
            return;
        };

        // Batch step: fix every near-integral variable plus the most
        // fractional one. Refreshing the snapshot is one tableau memcpy,
        // ≈ a single pivot's cost.
        batch.clear();
        for (j, &int) in ctx.integral.iter().enumerate() {
            if !int {
                continue;
            }
            let xj = sol.values[j];
            let frac = (xj - xj.round()).abs();
            if frac <= ctx.cfg.int_tol || (frac > DIVE_BATCH_TOL && j != i) {
                continue;
            }
            let v = crate::VarId(j as u32);
            let (lo, hi) = dt.bounds(v);
            let target = xj.round().clamp(lo, hi);
            batch.push((v, target, target));
        }
        snap.clone_from(&dt);
        match dive_tighten(ctx, &mut dt, &batch, work) {
            DiveStep::Optimal(s) => {
                sol = s;
                continue;
            }
            DiveStep::Infeasible => {}
            DiveStep::Stalled => return,
        }
        // Batch failed: restore and fix only the most fractional variable
        // (when the batch was already that single variable, go straight to
        // the opposite rounding).
        let single_was_batch = batch.len() == 1;
        dt.clone_from(&snap);
        let v = crate::VarId(i as u32);
        let (lo, hi) = dt.bounds(v);
        let near = x.round().clamp(lo, hi);
        let far = if near > x { x.floor() } else { x.ceil() }.clamp(lo, hi);
        if !single_was_batch {
            match dive_tighten(ctx, &mut dt, &[(v, near, near)], work) {
                DiveStep::Optimal(s) => {
                    sol = s;
                    continue;
                }
                DiveStep::Infeasible => dt.clone_from(&snap),
                DiveStep::Stalled => return,
            }
        }
        if far == near {
            return;
        }
        match dive_tighten(ctx, &mut dt, &[(v, far, far)], work) {
            DiveStep::Optimal(s) => sol = s,
            DiveStep::Infeasible | DiveStep::Stalled => return,
        }
    }
}

/// Deterministic root diving probe: seeds the shared incumbent before the
/// workers start, so the multi-threaded search begins from the same
/// incumbent floor regardless of pop-order races. Always runs on the
/// bounded-variable dive tableau (the reference path has no incremental
/// machinery; dives only feed incumbents, which are feasibility-checked,
/// so this cannot change a reference run's reported optimum).
fn dive_probe(ctx: &Ctx<'_>) {
    if let (LpOutcome::Optimal(sol), Some(dt)) = cold_dive_tableau(ctx, ctx.model, true) {
        dive_from(ctx, ctx.model, dt, sol);
    }
}

/// Most-fractional branching rule (fraction closest to one half), the
/// fallback when pseudocost branching is disabled or no dive tableau is
/// available (reference path).
fn select_most_fractional(ctx: &Ctx<'_>, sol: &Solution) -> Option<(crate::VarId, f64)> {
    let mut branch: Option<(crate::VarId, f64)> = None;
    let mut best_dist_half = f64::INFINITY;
    for (i, &int) in ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let x = sol.values[i];
        if (x - x.round()).abs() <= ctx.cfg.int_tol {
            continue;
        }
        let dist_half = (x - x.floor() - 0.5).abs();
        if dist_half < best_dist_half {
            best_dist_half = dist_half;
            branch = Some((crate::VarId(i as u32), x));
        }
    }
    branch
}

/// Pseudocost branching with strong-branching-lite reliability
/// initialization.
///
/// Every fractional candidate is scored by the product rule
/// `max(down_est, ε) · max(up_est, ε)`, where each directional estimate is
/// the expected objective degradation of that child (per-unit pseudocost ×
/// fractional distance). Candidates whose pseudocosts are not yet reliable
/// (fewer than [`PC_RELIABLE`] observations in either direction) are
/// initialized by probing both children on a **clone of the node's dive
/// tableau** — a bound tightening plus dual repair, no reinstall — with at
/// most [`SB_PER_NODE`] probes per node, most fractional first; probe
/// degradations are recorded into the shared store, so each variable is
/// probed only a bounded number of times across the whole search. An
/// infeasible probe direction scores infinite (branching there closes a
/// whole side). Directions with no local probe and no reliable estimate
/// fall back to the store average, then to the global average.
fn select_branch_pseudocost(
    ctx: &Ctx<'_>,
    work: &Model,
    dt: &DiveTableau,
    sol: &Solution,
    raw_score: f64,
) -> Option<(crate::VarId, f64)> {
    // Fractional candidates: (var index, value, down fraction, up fraction).
    let mut cands: Vec<(usize, f64, f64, f64)> = Vec::new();
    for (i, &int) in ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let x = sol.values[i];
        if (x - x.round()).abs() <= ctx.cfg.int_tol {
            continue;
        }
        let fd = x - x.floor();
        cands.push((i, x, fd, 1.0 - fd));
    }
    if cands.is_empty() {
        return None;
    }

    // Strong-branching-lite probes for unreliable candidates, most
    // fractional first (deterministic order: distance to one half, then
    // index).
    let mut order: Vec<usize> = (0..cands.len()).collect();
    order.sort_by(|&a, &b| {
        let da = (cands[a].2 - 0.5).abs();
        let db = (cands[b].2 - 0.5).abs();
        da.total_cmp(&db).then(cands[a].0.cmp(&cands[b].0))
    });
    // Local probe estimates (total degradation per direction); NaN = none.
    let mut local: Vec<(f64, f64)> = vec![(f64::NAN, f64::NAN); cands.len()];
    let mut probes = 0usize;
    // Probe scratch tableau, allocated on the first probe and refilled by
    // `clone_from` for every direction afterwards (zero steady-state
    // allocation on the branching hot path).
    let mut scratch: Option<DiveTableau> = None;
    for &ci in &order {
        if probes >= SB_PER_NODE {
            break;
        }
        let (i, x, fd, fu) = cands[ci];
        let v = crate::VarId(i as u32);
        if ctx.pc.count(v, false) >= PC_RELIABLE && ctx.pc.count(v, true) >= PC_RELIABLE {
            continue;
        }
        probes += 1;
        ctx.strong_branch_probes.fetch_add(1, Ordering::Relaxed);
        let (lo, hi) = dt.bounds(v);
        let fl = x.floor();
        let mut probe_dir = |child_lo: f64, child_hi: f64, frac: f64, up: bool| -> f64 {
            ctx.lp_solves.fetch_add(1, Ordering::Relaxed);
            let p = match &mut scratch {
                Some(p) => {
                    p.clone_from(dt);
                    p
                }
                // First probe of the node: a fresh clone doubles as the
                // refill.
                empty => empty.insert(dt.clone()),
            };
            let before = p.work();
            let step = p.tighten_capped(&[(v, child_lo, child_hi)], work, SB_PIVOT_CAP);
            charge_dive_work(ctx, p, before);
            match step {
                DiveStep::Optimal(s) => {
                    let deg = (raw_score - ctx.dir * s.objective).max(0.0);
                    ctx.pc.record(v, up, deg / frac.max(ctx.cfg.int_tol));
                    deg
                }
                // An infeasible child is the strongest possible branching
                // signal *at this node*, scored infinite locally. The
                // store gets a large-but-finite observation (8x the
                // global average): infeasibility depends on the node's
                // bounds, so an infinite average would poison the
                // estimates — but recording nothing would leave the
                // direction unreliable forever, re-probing the variable
                // at every node where it is fractional. The biased-high
                // record keeps the "branching here tends to close a
                // side" signal while bounding total probes.
                DiveStep::Infeasible => {
                    ctx.pc.record(v, up, 8.0 * ctx.pc.global_avg());
                    f64::INFINITY
                }
                DiveStep::Stalled => {
                    // Capped-out repair: no usable estimate. A neutral
                    // observation (the store average) is recorded so the
                    // variable still converges to reliable — otherwise
                    // every subsequent node would re-probe it and pay the
                    // cap again.
                    ctx.pc.record(v, up, ctx.pc.global_avg());
                    f64::NAN
                }
            }
        };
        let down = probe_dir(lo, fl, fd, false);
        let up = probe_dir(fl + 1.0, hi, fu, true);
        local[ci] = (down, up);
    }

    // Product-rule scoring.
    let gavg = ctx.pc.global_avg();
    let mut best: Option<(f64, usize, bool)> = None;
    for (ci, &(i, _, fd, fu)) in cands.iter().enumerate() {
        let v = crate::VarId(i as u32);
        let (ld, lu) = local[ci];
        let down_est = if ld.is_nan() {
            ctx.pc.avg(v, false).unwrap_or(gavg) * fd
        } else {
            ld
        };
        let up_est = if lu.is_nan() {
            ctx.pc.avg(v, true).unwrap_or(gavg) * fu
        } else {
            lu
        };
        let trusted = ld.is_nan()
            && lu.is_nan()
            && ctx.pc.count(v, false) >= PC_RELIABLE
            && ctx.pc.count(v, true) >= PC_RELIABLE;
        let score = down_est.max(PC_SCORE_EPS) * up_est.max(PC_SCORE_EPS);
        if best.is_none_or(|(bs, _, _)| score > bs) {
            best = Some((score, ci, trusted));
        }
    }
    let (_, ci, trusted) = best.expect("candidates are nonempty");
    if trusted {
        ctx.pseudocost_branches.fetch_add(1, Ordering::Relaxed);
    }
    Some((crate::VarId(cands[ci].0 as u32), cands[ci].1))
}

/// Worker loop: drain the pool until the search completes or is stopped.
fn worker(ctx: &Ctx<'_>) {
    // Private model copy: nodes only ever change variable bounds.
    let mut work = ctx.model.clone();
    let mut processed = 0usize;
    while let Some(node) = ctx.pool.pop() {
        process_node(ctx, &mut work, &mut processed, node);
        ctx.pool.done();
    }
}

fn process_node(ctx: &Ctx<'_>, work: &mut Model, processed: &mut usize, node: Node) {
    // Node budget: the comparison is against a plain atomic counter; the
    // wall clock is sampled only every 64 nodes (checking `Instant::now`
    // per node costs more than a typical warm LP re-solve on small models).
    let prev = ctx.nodes.fetch_add(1, Ordering::Relaxed);
    if prev >= ctx.cfg.node_limit {
        ctx.nodes.fetch_sub(1, Ordering::Relaxed);
        ctx.interrupt(node.score);
        return;
    }
    *processed += 1;
    // The cancel flag is one relaxed load — cheap enough per node; the
    // wall clock stays amortized behind the 64-node mask.
    if ctx.cfg.cancel.is_set() {
        ctx.interrupt(node.score);
        return;
    }
    if *processed & TIME_CHECK_MASK == 0 {
        let expired =
            ctx.cfg.cancel.cancelled() || ctx.deadline.is_some_and(|dl| Instant::now() > dl);
        if expired {
            ctx.interrupt(node.score);
            return;
        }
    }

    // Prune by the inherited parent bound (already tightened at push time)
    // — the incumbent may have improved since this node was pushed.
    if !ctx.improves(node.score) {
        return;
    }

    // Apply node bounds over the originals, with the integral
    // bound-tightening fast path: integer domains are rounded inward, which
    // both shrinks the relaxation and detects infeasible branches without
    // an LP solve.
    for (i, &(lo, hi)) in ctx.original_bounds.iter().enumerate() {
        work.set_bounds(crate::VarId(i as u32), lo, hi);
    }
    for &(v, lo, hi) in &node.bounds {
        let (clo, chi) = work.bounds(v);
        let nlo = clo.max(lo);
        let nhi = chi.min(hi);
        if nlo > nhi {
            return;
        }
        work.set_bounds(v, nlo, nhi);
    }
    for (i, &int) in ctx.integral.iter().enumerate() {
        if !int {
            continue;
        }
        let v = crate::VarId(i as u32);
        let (lo, hi) = work.bounds(v);
        let tlo = if lo.is_finite() {
            (lo - ctx.cfg.int_tol).ceil()
        } else {
            lo
        };
        let thi = if hi.is_finite() {
            (hi + ctx.cfg.int_tol).floor()
        } else {
            hi
        };
        if tlo > thi {
            return;
        }
        if tlo != lo || thi != hi {
            work.set_bounds(v, tlo, thi);
        }
    }

    // Node relaxations are deliberately solved *cold*: a fresh two-phase
    // solve returns the same objective as a warm re-solve, but its vertex
    // (among the many degenerate optima of the big-M RS relaxations) guides
    // fractionality-based branching far better than the minimally-repaired
    // parent vertex a warm start lands on — measured tree sizes differ by
    // 100-1000x on the random-kernel corpus. On the bounded path the cold
    // tableau stays live as a DiveTableau for the strong-branching probes
    // and the periodic dive below, whose chains of pure bound tightenings
    // run in place with zero basis reinstalls.
    let (outcome, mut dt) = solve_node_lp(ctx, work);
    let sol = match outcome {
        LpOutcome::Optimal(s) => s,
        LpOutcome::Infeasible => return,
        LpOutcome::Unbounded => {
            // Unbounded relaxation at the root means unbounded MILP if a
            // feasible integer point exists; report unbounded directly
            // (our models never hit this outside tests).
            if node.depth == 0 {
                ctx.unbounded.store(true, Ordering::Relaxed);
                ctx.pool.stop();
            }
            return;
        }
        LpOutcome::PivotTooSmall => {
            // A cancelled simplex aborts with this same outcome — that is
            // an interruption, not numerical trouble, and must not taint
            // the result as `Numerical`.
            if ctx.cfg.cancel.is_set() {
                ctx.interrupt(node.score);
                return;
            }
            // Soft numerical failure: skip the node, surrender the
            // optimality proof instead of crashing or silently mispruning.
            // The skipped subtree's bound still counts against the dual
            // bound of the (now unproven) answer.
            ctx.numerical.store(true, Ordering::Relaxed);
            ctx.abandon(node.score);
            return;
        }
    };

    // Feed the shared pseudocosts: this node's relaxation is exactly the
    // child LP of the branching step that created it, so the degradation
    // against the parent's raw bound is one per-unit observation. Recorded
    // before any pruning — a pruned child is still a valid observation.
    let raw_score = ctx.dir * sol.objective;
    if let Some(b) = node.branch {
        if b.frac > 1e-9 && b.parent_score.is_finite() {
            ctx.pc.record(
                b.var,
                b.up,
                ((b.parent_score - raw_score) / b.frac).max(0.0),
            );
        }
    }

    // Bound pruning on the fresh relaxation. Children are queued under the
    // *tightened* (integer-rounded) bound: rounding loses nothing for
    // pruning, and it collapses the near-flat big-M bounds into integer
    // buckets, inside which the pool's depth tie-break dives straight to an
    // incumbent instead of ping-ponging across the frontier.
    let score = ctx.tighten_score(raw_score);
    if !ctx.improves(score) {
        return;
    }

    // Pick the branching variable: pseudocost product rule with
    // strong-branching-lite initialization when enabled and a dive tableau
    // is available, otherwise most-fractional.
    let branch = match (ctx.cfg.pseudocost, dt.as_ref()) {
        (true, Some(dt)) => select_branch_pseudocost(ctx, work, dt, &sol, raw_score),
        _ => select_most_fractional(ctx, &sol),
    };

    match branch {
        None => {
            // Integral: candidate incumbent. The rounding is gated by a
            // *real* feasibility check — `debug_assert!` alone would let an
            // infeasible rounding become the reported optimum in release
            // builds. A leaf that fails the check cannot be explored
            // further (nothing fractional to branch on), so the optimality
            // proof is surrendered instead of silently dropping the
            // subtree.
            let mut values = sol.values.clone();
            for (i, val) in values.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            if ctx.model.check_feasible(&values, ctx.feas_tol()).is_ok() {
                let objective = ctx.model.objective.eval(&values);
                ctx.incumbent
                    .offer(ctx.dir * objective, objective, values, EPS);
            } else {
                ctx.numerical.store(true, Ordering::Relaxed);
                ctx.abandon(score);
            }
        }
        Some((v, x)) => {
            // Simple-rounding primal heuristic: the big-M relaxations of
            // the register-saturation models are nearly flat, so a pure
            // dive needs hundreds of levels before its leaf is integral —
            // but naively rounding the fractional relaxation is very often
            // already feasible. An early incumbent is what turns the shared
            // bound into actual pruning.
            let mut rounded = sol.values.clone();
            for (i, val) in rounded.iter_mut().enumerate() {
                if ctx.integral[i] {
                    *val = val.round();
                }
            }
            let objective = ctx.model.objective.eval(&rounded);
            if ctx.improves(ctx.dir * objective)
                && ctx.model.check_feasible(&rounded, ctx.feas_tol()).is_ok()
            {
                ctx.incumbent
                    .offer(ctx.dir * objective, objective, rounded, EPS);
            }
            let fl = x.floor();
            let f_down = x - fl;
            let child = |lo: f64, hi: f64, frac: f64, up: bool| {
                let mut b = node.bounds.clone();
                b.push((v, lo, hi));
                Node {
                    bounds: b,
                    depth: node.depth + 1,
                    score,
                    branch: Some(BranchStep {
                        var: v,
                        frac,
                        parent_score: raw_score,
                        up,
                    }),
                }
            };
            let down = child(f64::NEG_INFINITY, fl, f_down, false);
            let up = child(fl + 1.0, f64::INFINITY, 1.0 - f_down, true);
            // Both children inherit this relaxation's bound; the side
            // nearer the fractional value is pushed first — the pool pops
            // the earlier sequence number on score/depth ties, so the
            // near side is explored first, diving towards an incumbent
            // fast.
            // A stopped pool rejects the children; their inherited bound
            // then counts as abandoned (both share `score`, one fold
            // covers the pair).
            let (first, second) = if f_down <= 0.5 {
                (down, up)
            } else {
                (up, down)
            };
            if !ctx.pool.push(first) || !ctx.pool.push(second) {
                ctx.abandon(score);
            }
            // Periodic diving restart: every `DIVE_PERIOD` nodes this worker
            // re-runs the diving heuristic from its current subproblem,
            // chaining in-place bound folds on this node's live tableau. On
            // the near-flat big-M relaxations the dual bound barely moves,
            // so pruning lives or dies by incumbent quality — a dive from a
            // deep subproblem regularly finds the incumbent that collapses
            // the remaining frontier. Extra incumbents can only tighten the
            // bound, never change the reported optimum.
            let no_incumbent = ctx.incumbent.score() == f64::NEG_INFINITY;
            let period_mask = if no_incumbent {
                DIVE_PERIOD - 1
            } else {
                4 * DIVE_PERIOD - 1
            };
            if *processed & period_mask == 1 {
                match dt.take() {
                    Some(dt) => dive_from(ctx, work, dt, sol),
                    None => {
                        // Reference path: no live tableau from the node
                        // solve; build one cold for the dive.
                        if let (LpOutcome::Optimal(s), Some(dt)) =
                            cold_dive_tableau(ctx, work, true)
                        {
                            dive_from(ctx, work, dt, s);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    #[test]
    fn integer_knapsack() {
        // max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600,
        // 2a+2b+6c <= 300, all integer >= 0. LP opt 733.33; ILP opt 732
        // (a=33, b=67): 10*33+4*67=330+268=598<=600; 33+67=100<=100;
        // 2*33+2*67=200<=300; obj=330+402=732.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1000.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1000.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1000.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::from(a) * 10.0 + (4.0, b) + (5.0, c),
            Cmp::Le,
            600.0,
        );
        m.add_constraint(LinExpr::from(a) * 2.0 + (2.0, b) + (6.0, c), Cmp::Le, 300.0);
        m.set_objective(LinExpr::from(a) * 10.0 + (6.0, b) + (4.0, c));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert_eq!(s.objective.round() as i64, 732);
    }

    #[test]
    fn binary_knapsack_matches_brute_force() {
        let weights = [4.0, 3.0, 5.0, 2.0, 7.0, 1.0];
        let values = [7.0, 4.0, 9.0, 3.0, 10.0, 1.0];
        let cap = 10.0;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0))
            .collect();
        let mut wexpr = LinExpr::new();
        let mut vexpr = LinExpr::new();
        for i in 0..6 {
            wexpr = wexpr + (weights[i], vars[i]);
            vexpr = vexpr + (values[i], vars[i]);
        }
        m.add_constraint(wexpr, Cmp::Le, cap);
        m.set_objective(vexpr);
        let s = solve(&m, &MilpConfig::default()).unwrap();

        let mut best = 0.0f64;
        for mask in 0u32..64 {
            let w: f64 = (0..6)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            if w <= cap {
                let v: f64 = (0..6)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| values[i])
                    .sum();
                best = best.max(v);
            }
        }
        assert_eq!(s.objective.round(), best);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x = 1 with x integer
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x));
        assert_eq!(
            solve(&m, &MilpConfig::default()).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn minimize_with_binaries() {
        // min x + y + z s.t. x + y >= 1, y + z >= 1, x + z >= 1 (vertex cover
        // of a triangle): optimum 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let z = m.add_var("z", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(x) + z, Cmp::Ge, 1.0);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 0.5 t, y binary gate: t <= 10 y, t <= 7.3; optimum y=1, t=7.3
        let mut m = Model::new(Sense::Maximize);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let t = m.add_var("t", VarKind::Continuous, 0.0, 100.0);
        m.add_constraint(LinExpr::from(t) + (-10.0, y), Cmp::Le, 0.0);
        m.add_constraint(LinExpr::from(t), Cmp::Le, 7.3);
        m.set_objective(LinExpr::from(y) + (0.5, t));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(
            (s.objective - (1.0 + 3.65)).abs() < 1e-5,
            "got {}",
            s.objective
        );
        assert!((s.values[1] - 7.3).abs() < 1e-5);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let mut m = Model::new(Sense::Maximize);
        // A model needing at least one node more than the budget of 0: the
        // root diving probe still finds an incumbent, which is returned as
        // a best-effort solution with the optimality proof surrendered.
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Le, 7.0);
        m.set_objective(LinExpr::from(x));
        let cfg = MilpConfig {
            node_limit: 0,
            ..MilpConfig::default()
        };
        let s = solve(&m, &cfg).unwrap();
        assert!(!s.stats.proven_optimal);
        assert_eq!(s.stats.nodes, 0);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
        // The surrendered proof still comes with a sound dual bound: the
        // true optimum (x = 3) lies between incumbent and bound.
        assert!(
            s.objective <= 3.0 + 1e-9 && s.stats.dual_bound >= 3.0 - 1e-9,
            "objective {} / dual bound {}",
            s.objective,
            s.stats.dual_bound
        );
    }

    fn knapsack_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1000.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1000.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1000.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::from(a) * 10.0 + (4.0, b) + (5.0, c),
            Cmp::Le,
            600.0,
        );
        m.add_constraint(LinExpr::from(a) * 2.0 + (2.0, b) + (6.0, c), Cmp::Le, 300.0);
        m.set_objective(LinExpr::from(a) * 10.0 + (6.0, b) + (4.0, c));
        m
    }

    #[test]
    fn proven_solve_reports_tight_dual_bound() {
        let s = solve(&knapsack_model(), &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert!(
            (s.stats.dual_bound - s.objective).abs() < 1e-9,
            "proven: bound {} must equal objective {}",
            s.stats.dual_bound,
            s.objective
        );
    }

    #[test]
    fn pre_cancelled_solve_stops_without_incumbent() {
        // A token tripped before the search starts: the root dive bails at
        // its first check and the first node interrupts the pool — no
        // incumbent exists, which surfaces as BudgetExhausted (the service
        // layer maps it to the `timeout` wire code).
        let cancel = Cancel::new();
        cancel.cancel();
        let cfg = MilpConfig {
            cancel,
            ..MilpConfig::default()
        };
        assert!(matches!(
            solve(&knapsack_model(), &cfg),
            Err(MilpError::BudgetExhausted)
        ));
    }

    #[test]
    fn interrupted_search_brackets_the_true_optimum() {
        // Stop almost immediately via the node budget: the incumbent (from
        // the root dive) and the abandoned-node dual bound must bracket the
        // known optimum 732, and the proof must be surrendered.
        let cfg = MilpConfig {
            node_limit: 2,
            ..MilpConfig::default()
        };
        let s = solve(&knapsack_model(), &cfg).unwrap();
        assert!(!s.stats.proven_optimal);
        assert!(s.objective <= 732.0 + 1e-9, "incumbent {}", s.objective);
        assert!(
            s.stats.dual_bound >= 732.0 - 1e-9,
            "dual bound {} must stay above the optimum",
            s.stats.dual_bound
        );
    }

    #[test]
    fn cancel_mid_search_keeps_soundness() {
        // Deterministic mid-search interruption via the poll countdown:
        // whenever it trips, the result must be a feasible point whose
        // objective and dual bound bracket the optimum — or, if the search
        // finished first, the proven optimum itself.
        for polls in [1, 2, 4, 16] {
            let cfg = MilpConfig {
                cancel: Cancel::after_polls(polls),
                ..MilpConfig::default()
            };
            let m = knapsack_model();
            match solve(&m, &cfg) {
                Ok(s) => {
                    assert!(m.check_feasible(&s.values, 1e-6).is_ok());
                    assert!(s.objective <= 732.0 + 1e-9);
                    assert!(s.stats.dual_bound >= 732.0 - 1e-9);
                    if s.stats.proven_optimal {
                        assert_eq!(s.objective.round() as i64, 732);
                    }
                }
                Err(e) => assert_eq!(e, MilpError::BudgetExhausted),
            }
        }
    }

    #[test]
    fn warm_starts_are_exercised() {
        // Any branching model solves child LPs from the parent basis.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 9.0))
            .collect();
        let mut e = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + ((i % 3 + 2) as f64, v);
            obj = obj + ((i % 5 + 1) as f64, v);
        }
        m.add_constraint(e, Cmp::Le, 37.5);
        m.set_objective(obj);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert!(
            s.stats.warm_solves > 0,
            "expected warm-started child solves, stats: {:?}",
            s.stats
        );
    }

    #[test]
    fn infeasible_rounding_leaf_is_rejected() {
        // Regression: the integral-leaf incumbent path was guarded only by
        // a `debug_assert!` — in release builds an infeasible rounding
        // became the reported optimum. With a loose integrality tolerance
        // the LP optimum x = 0.6 of `10x ≤ 6` counts as integral, and its
        // rounding x = 1 violates the row by 4. The leaf must be rejected
        // (surrendering the proof), never offered.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) * 10.0, Cmp::Le, 6.0);
        m.set_objective(LinExpr::from(x));
        let cfg = MilpConfig {
            int_tol: 0.45,
            // presolve would fold the singleton row into x's bounds and
            // hide the leaf this regression is about
            presolve: false,
            ..MilpConfig::default()
        };
        // Surrendering with an error is sound; claiming the infeasible
        // rounding as the optimum is the bug.
        if let Ok(s) = solve(&m, &cfg) {
            assert!(
                m.check_feasible(&s.values, 1e-6).is_ok(),
                "reported optimum is infeasible: {:?}",
                s.values
            );
        }

        // The subtler variant: the rounding violates the row by *less*
        // than int_tol (x ≤ 0.6 violated by 0.4 < 0.45). The feasibility
        // gate is capped below int_tol precisely so a loose integrality
        // tolerance cannot whitewash the violation its own rounding
        // introduced.
        let mut m2 = Model::new(Sense::Maximize);
        let x2 = m2.add_var("x", VarKind::Integer, 0.0, 1.0);
        m2.add_constraint(LinExpr::from(x2), Cmp::Le, 0.6);
        m2.set_objective(LinExpr::from(x2));
        if let Ok(s) = solve(&m2, &cfg) {
            assert!(
                m2.check_feasible(&s.values, 1e-6).is_ok(),
                "reported optimum is infeasible: {:?}",
                s.values
            );
        }
    }

    #[test]
    fn pseudocost_engine_reports_stats() {
        // A branching model: the first nodes have unreliable pseudocosts,
        // so strong-branching-lite probes must fire, and the incremental
        // dive tableau must never reinstall a basis.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 9.0))
            .collect();
        let mut e = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + ((i % 3 + 2) as f64, v);
            obj = obj + ((i % 5 + 1) as f64, v);
        }
        m.add_constraint(e, Cmp::Le, 37.5);
        m.set_objective(obj);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert_eq!(
            s.stats.dive_reinstalls, 0,
            "dive tableau must not reinstall"
        );
        assert!(
            s.stats.nodes <= 1 || s.stats.strong_branch_probes > 0,
            "branching without reliable pseudocosts must probe, stats: {:?}",
            s.stats
        );

        // Disabling pseudocost branching falls back to most-fractional and
        // must not change the objective (or touch the probe counters).
        let off = solve(
            &m,
            &MilpConfig {
                pseudocost: false,
                ..MilpConfig::default()
            },
        )
        .unwrap();
        assert_eq!(off.objective.round() as i64, s.objective.round() as i64);
        assert_eq!(off.stats.strong_branch_probes, 0);
        assert_eq!(off.stats.pseudocost_branches, 0);
    }

    #[test]
    fn thread_count_does_not_change_objective() {
        // A search tree with plenty of nodes; every thread count must agree.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 6.0))
            .collect();
        for k in 0..6 {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                e = e + (((i * 7 + k * 11) % 5 + 1) as f64, v);
            }
            m.add_constraint(e, Cmp::Le, (35 + 3 * k) as f64);
        }
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj = obj + (((i * 13) % 7 + 1) as f64, v);
        }
        m.set_objective(obj);

        let reference = solve(&m, &MilpConfig::default()).unwrap();
        assert!(reference.stats.proven_optimal);
        for threads in [2, 3, 4, 8] {
            let s = solve(&m, &MilpConfig::with_threads(threads)).unwrap();
            assert!(s.stats.proven_optimal);
            assert_eq!(
                s.objective.round() as i64,
                reference.objective.round() as i64,
                "threads={threads} changed the objective"
            );
            assert!(m.check_feasible(&s.values, 1e-6).is_ok());
        }
    }

    #[test]
    fn parallel_minimization_agrees_too() {
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<_> = (0..9)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 5.0))
            .collect();
        for k in 0..5 {
            let mut e = LinExpr::new();
            for (i, &v) in vars.iter().enumerate() {
                e = e + (((i + k) % 4 + 1) as f64, v);
            }
            m.add_constraint(e, Cmp::Ge, (12 + k) as f64);
        }
        let mut obj = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            obj = obj + ((i % 3 + 1) as f64, v);
        }
        m.set_objective(obj);
        let seq = solve(&m, &MilpConfig::default()).unwrap();
        let par = solve(&m, &MilpConfig::with_threads(4)).unwrap();
        assert!(seq.stats.proven_optimal && par.stats.proven_optimal);
        assert_eq!(seq.objective.round() as i64, par.objective.round() as i64);
    }

    mod property {
        use super::super::*;
        use crate::{Cmp, LinExpr, Model, Sense, VarKind};
        use proptest::prelude::*;

        /// Exhaustive optimum over the integer box `[0, 4]³`.
        fn brute_force(cons: &[([i64; 3], i64)], obj: &[i64; 3], sense: Sense) -> Option<i64> {
            let mut best: Option<i64> = None;
            for x in 0i64..=4 {
                for y in 0i64..=4 {
                    for z in 0i64..=4 {
                        let feasible = cons
                            .iter()
                            .all(|(c, rhs)| c[0] * x + c[1] * y + c[2] * z <= *rhs);
                        if feasible {
                            let v = obj[0] * x + obj[1] * y + obj[2] * z;
                            best = Some(match (best, sense) {
                                (None, _) => v,
                                (Some(b), Sense::Maximize) => b.max(v),
                                (Some(b), Sense::Minimize) => b.min(v),
                            });
                        }
                    }
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn milp_matches_brute_force(
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
                threads in 1usize..=4,
            ) {
                let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
                let mut m = Model::new(sense);
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                    .collect();
                for (coefs, rhs) in &cons {
                    let mut e = LinExpr::new();
                    for (i, &c) in coefs.iter().enumerate() {
                        e = e + (c as f64, vars[i]);
                    }
                    m.add_constraint(e, Cmp::Le, *rhs as f64);
                }
                let mut o = LinExpr::new();
                for (i, &c) in obj.iter().enumerate() {
                    o = o + (c as f64, vars[i]);
                }
                m.set_objective(o);

                let expected = brute_force(&cons, &obj, sense);
                // Default engine (pseudocost branching + presolve on) and
                // the stripped configuration (most-fractional, no
                // presolve) must both match the brute force — objective
                // equivalence across every knob combination.
                let configs = [
                    MilpConfig::with_threads(threads),
                    MilpConfig {
                        pseudocost: false,
                        presolve: false,
                        threads,
                        ..MilpConfig::default()
                    },
                ];
                for cfg in configs {
                    match solve(&m, &cfg) {
                        Ok(sol) => {
                            prop_assert!(sol.stats.proven_optimal);
                            let got = sol.objective.round() as i64;
                            prop_assert_eq!(Some(got), expected,
                                "solver {} vs brute force {:?} (cfg {:?})", got, expected, cfg);
                            prop_assert!(m.check_feasible(&sol.values, 1e-5).is_ok());
                        }
                        Err(MilpError::Infeasible) => {
                            prop_assert_eq!(expected, None, "solver claims infeasible");
                        }
                        Err(e) => prop_assert!(false, "unexpected solver error {e}"),
                    }
                }
            }
        }
    }

    #[test]
    fn integral_objective_rounding_still_optimal() {
        // LP bound is fractional; with rounding enabled the solver must not
        // cut off the true optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0 + (3.0, y), Cmp::Le, 12.0);
        m.set_objective(LinExpr::from(x) + (2.0, y));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        // best: y=4, x=0 -> 8
        assert_eq!(s.objective.round() as i64, 8);
    }
}
