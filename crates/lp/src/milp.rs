//! Branch-and-bound MILP solver on top of the simplex relaxation.
//!
//! Depth-first search with best-incumbent pruning; branching on the most
//! fractional integral variable; integral-objective rounding of the dual
//! bound (every objective in the register-saturation models has integer
//! coefficients, so `floor`/`ceil` of the relaxation bound is a valid
//! tightening — enabled via [`MilpConfig::integral_objective`]).

use crate::model::{Model, Sense, VarKind};
use crate::simplex::{solve_relaxation, LpOutcome, Solution};
use crate::EPS;

/// Knobs for the branch-and-bound driver.
#[derive(Clone, Debug)]
pub struct MilpConfig {
    /// Maximum number of branch-and-bound nodes before giving up.
    pub node_limit: usize,
    /// Wall-clock budget; `None` disables the check.
    pub time_limit: Option<std::time::Duration>,
    /// Declare the dual bound integral and round it when pruning (valid
    /// whenever the objective takes integer values on integer solutions).
    pub integral_objective: bool,
    /// Integrality tolerance.
    pub int_tol: f64,
}

impl Default for MilpConfig {
    fn default() -> Self {
        MilpConfig {
            node_limit: 200_000,
            time_limit: Some(std::time::Duration::from_secs(120)),
            integral_objective: true,
            int_tol: 1e-6,
        }
    }
}

/// Why no solution was returned.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MilpError {
    /// The model has no integer-feasible point.
    Infeasible,
    /// The relaxation (and hence the MILP) is unbounded.
    Unbounded,
    /// Node or time budget exhausted before proving optimality, and no
    /// incumbent was found.
    BudgetExhausted,
}

impl std::fmt::Display for MilpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "MILP infeasible"),
            MilpError::Unbounded => write!(f, "MILP unbounded"),
            MilpError::BudgetExhausted => write!(f, "MILP budget exhausted without incumbent"),
        }
    }
}

impl std::error::Error for MilpError {}

/// Solve statistics, attached to every solution.
#[derive(Clone, Copy, Debug, Default)]
pub struct MilpStats {
    /// Branch-and-bound nodes explored.
    pub nodes: usize,
    /// LP relaxations solved.
    pub lp_solves: usize,
    /// True iff optimality was proven (budget not exhausted).
    pub proven_optimal: bool,
}

/// An integer-feasible solution plus solve statistics.
#[derive(Clone, Debug)]
pub struct MilpSolution {
    /// Value per model variable.
    pub values: Vec<f64>,
    /// Objective value in the model's sense.
    pub objective: f64,
    /// Search statistics.
    pub stats: MilpStats,
}

impl From<MilpSolution> for Solution {
    fn from(s: MilpSolution) -> Solution {
        Solution {
            values: s.values,
            objective: s.objective,
        }
    }
}

/// Solves the mixed-integer program. Returns the optimal solution, or the
/// best incumbent if the budget ran out (flagged in
/// [`MilpStats::proven_optimal`]).
pub fn solve(model: &Model, cfg: &MilpConfig) -> Result<MilpSolution, MilpError> {
    let start = std::time::Instant::now();
    let mut work = model.clone();
    let mut stats = MilpStats::default();

    // Incumbent tracking; `better` compares in the model's sense.
    let mut incumbent: Option<Solution> = None;
    let sense = model.sense();
    let improves = |cand: f64, inc: f64| match sense {
        Sense::Maximize => cand > inc + EPS,
        Sense::Minimize => cand < inc - EPS,
    };

    // Explicit DFS stack of bound overrides: (var, lo, hi) lists.
    #[derive(Clone)]
    struct Node {
        bounds: Vec<(crate::VarId, f64, f64)>,
        depth: usize,
    }
    let mut stack = vec![Node {
        bounds: Vec::new(),
        depth: 0,
    }];

    let original_bounds: Vec<(f64, f64)> = (0..model.num_vars())
        .map(|i| model.bounds(crate::VarId(i as u32)))
        .collect();

    let mut budget_hit = false;
    while let Some(node) = stack.pop() {
        if stats.nodes >= cfg.node_limit {
            budget_hit = true;
            break;
        }
        if let Some(tl) = cfg.time_limit {
            if start.elapsed() > tl {
                budget_hit = true;
                break;
            }
        }
        stats.nodes += 1;

        // Apply node bounds.
        for (i, &(lo, hi)) in original_bounds.iter().enumerate() {
            work.set_bounds(crate::VarId(i as u32), lo, hi);
        }
        let mut conflict = false;
        for &(v, lo, hi) in &node.bounds {
            let (clo, chi) = work.bounds(v);
            let nlo = clo.max(lo);
            let nhi = chi.min(hi);
            if nlo > nhi {
                conflict = true;
                break;
            }
            work.set_bounds(v, nlo, nhi);
        }
        if conflict {
            continue;
        }

        stats.lp_solves += 1;
        let sol = match solve_relaxation(&work) {
            LpOutcome::Optimal(s) => s,
            LpOutcome::Infeasible => continue,
            LpOutcome::Unbounded => {
                // Unbounded relaxation at the root means unbounded MILP if a
                // feasible integer point exists; report unbounded directly
                // (our models never hit this outside tests).
                if node.depth == 0 {
                    return Err(MilpError::Unbounded);
                }
                continue;
            }
        };

        // Bound pruning.
        if let Some(ref inc) = incumbent {
            let mut bound = sol.objective;
            if cfg.integral_objective {
                bound = match sense {
                    Sense::Maximize => (bound + cfg.int_tol).floor(),
                    Sense::Minimize => (bound - cfg.int_tol).ceil(),
                };
            }
            if !improves(bound, inc.objective) {
                continue;
            }
        }

        // Branch on the most fractional integral variable (fraction closest
        // to one half).
        let mut branch: Option<(crate::VarId, f64)> = None;
        let mut best_dist_half = f64::INFINITY;
        for i in 0..model.num_vars() {
            let v = crate::VarId(i as u32);
            if matches!(model.kind(v), VarKind::Continuous) {
                continue;
            }
            let x = sol.values[i];
            if (x - x.round()).abs() <= cfg.int_tol {
                continue;
            }
            let dist_half = (x - x.floor() - 0.5).abs();
            if dist_half < best_dist_half {
                best_dist_half = dist_half;
                branch = Some((v, x));
            }
        }

        match branch {
            None => {
                // Integral: candidate incumbent.
                let mut values = sol.values.clone();
                for (i, val) in values.iter_mut().enumerate() {
                    if !matches!(model.kind(crate::VarId(i as u32)), VarKind::Continuous) {
                        *val = val.round();
                    }
                }
                let objective = model.objective.eval(&values);
                if incumbent
                    .as_ref()
                    .is_none_or(|inc| improves(objective, inc.objective))
                {
                    debug_assert!(
                        model.check_feasible(&values, 1e-5).is_ok(),
                        "incumbent must be feasible: {:?}",
                        model.check_feasible(&values, 1e-5)
                    );
                    incumbent = Some(Solution { values, objective });
                }
            }
            Some((v, x)) => {
                let fl = x.floor();
                // Explore the side nearer the relaxation value first (pushed
                // last => popped first).
                let down = Node {
                    bounds: {
                        let mut b = node.bounds.clone();
                        b.push((v, f64::NEG_INFINITY, fl));
                        b
                    },
                    depth: node.depth + 1,
                };
                let up = Node {
                    bounds: {
                        let mut b = node.bounds.clone();
                        b.push((v, fl + 1.0, f64::INFINITY));
                        b
                    },
                    depth: node.depth + 1,
                };
                if x - fl > 0.5 {
                    stack.push(down);
                    stack.push(up);
                } else {
                    stack.push(up);
                    stack.push(down);
                }
            }
        }
    }

    stats.proven_optimal = !budget_hit;
    match incumbent {
        Some(s) => Ok(MilpSolution {
            values: s.values,
            objective: s.objective,
            stats,
        }),
        None if budget_hit => Err(MilpError::BudgetExhausted),
        None => Err(MilpError::Infeasible),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    #[test]
    fn integer_knapsack() {
        // max 10a + 6b + 4c s.t. a+b+c <= 100, 10a+4b+5c <= 600,
        // 2a+2b+6c <= 300, all integer >= 0. LP opt 733.33; ILP opt 732
        // (a=32, b=67, c=0) -> 10*32+6*67 = 722? recompute: classic problem
        // has ILP optimum 732 with a=33, b=67: 10*33+4*67=330+268=598<=600;
        // 33+67=100<=100; 2*33+2*67=200<=300; obj=330+402=732.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Integer, 0.0, 1000.0);
        let b = m.add_var("b", VarKind::Integer, 0.0, 1000.0);
        let c = m.add_var("c", VarKind::Integer, 0.0, 1000.0);
        m.add_constraint(LinExpr::from(a) + b + c, Cmp::Le, 100.0);
        m.add_constraint(
            LinExpr::from(a) * 10.0 + (4.0, b) + (5.0, c),
            Cmp::Le,
            600.0,
        );
        m.add_constraint(LinExpr::from(a) * 2.0 + (2.0, b) + (6.0, c), Cmp::Le, 300.0);
        m.set_objective(LinExpr::from(a) * 10.0 + (6.0, b) + (4.0, c));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(s.stats.proven_optimal);
        assert_eq!(s.objective.round() as i64, 732);
    }

    #[test]
    fn binary_knapsack_matches_brute_force() {
        let weights = [4.0, 3.0, 5.0, 2.0, 7.0, 1.0];
        let values = [7.0, 4.0, 9.0, 3.0, 10.0, 1.0];
        let cap = 10.0;
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0))
            .collect();
        let mut wexpr = LinExpr::new();
        let mut vexpr = LinExpr::new();
        for i in 0..6 {
            wexpr = wexpr + (weights[i], vars[i]);
            vexpr = vexpr + (values[i], vars[i]);
        }
        m.add_constraint(wexpr, Cmp::Le, cap);
        m.set_objective(vexpr);
        let s = solve(&m, &MilpConfig::default()).unwrap();

        let mut best = 0.0f64;
        for mask in 0u32..64 {
            let w: f64 = (0..6)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| weights[i])
                .sum();
            if w <= cap {
                let v: f64 = (0..6)
                    .filter(|i| mask & (1 << i) != 0)
                    .map(|i| values[i])
                    .sum();
                best = best.max(v);
            }
        }
        assert_eq!(s.objective.round(), best);
        assert!(m.check_feasible(&s.values, 1e-6).is_ok());
    }

    #[test]
    fn infeasible_integer_model() {
        // 2x = 1 with x integer
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x));
        assert_eq!(
            solve(&m, &MilpConfig::default()).unwrap_err(),
            MilpError::Infeasible
        );
    }

    #[test]
    fn minimize_with_binaries() {
        // min x + y + z s.t. x + y >= 1, y + z >= 1, x + z >= 1 (vertex cover
        // of a triangle): optimum 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let z = m.add_var("z", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.0);
        m.add_constraint(LinExpr::from(x) + z, Cmp::Ge, 1.0);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 2);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max y + 0.5 t, y binary gate: t <= 10 y, t <= 7.3; optimum y=1, t=7.3
        let mut m = Model::new(Sense::Maximize);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let t = m.add_var("t", VarKind::Continuous, 0.0, 100.0);
        m.add_constraint(LinExpr::from(t) + (-10.0, y), Cmp::Le, 0.0);
        m.add_constraint(LinExpr::from(t), Cmp::Le, 7.3);
        m.set_objective(LinExpr::from(y) + (0.5, t));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert!(
            (s.objective - (1.0 + 3.65)).abs() < 1e-5,
            "got {}",
            s.objective
        );
        assert!((s.values[1] - 7.3).abs() < 1e-5);
    }

    #[test]
    fn budget_exhaustion_reports() {
        let mut m = Model::new(Sense::Maximize);
        // A model needing at least one node more than the budget of 0.
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0, Cmp::Le, 7.0);
        m.set_objective(LinExpr::from(x));
        let cfg = MilpConfig {
            node_limit: 0,
            ..MilpConfig::default()
        };
        assert_eq!(solve(&m, &cfg).unwrap_err(), MilpError::BudgetExhausted);
    }

    mod property {
        use super::super::*;
        use crate::{Cmp, LinExpr, Model, Sense, VarKind};
        use proptest::prelude::*;

        /// Exhaustive optimum over the integer box `[0, 4]³`.
        fn brute_force(cons: &[([i64; 3], i64)], obj: &[i64; 3], sense: Sense) -> Option<i64> {
            let mut best: Option<i64> = None;
            for x in 0i64..=4 {
                for y in 0i64..=4 {
                    for z in 0i64..=4 {
                        let feasible = cons
                            .iter()
                            .all(|(c, rhs)| c[0] * x + c[1] * y + c[2] * z <= *rhs);
                        if feasible {
                            let v = obj[0] * x + obj[1] * y + obj[2] * z;
                            best = Some(match (best, sense) {
                                (None, _) => v,
                                (Some(b), Sense::Maximize) => b.max(v),
                                (Some(b), Sense::Minimize) => b.min(v),
                            });
                        }
                    }
                }
            }
            best
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            #[test]
            fn milp_matches_brute_force(
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
            ) {
                let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
                let mut m = Model::new(sense);
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                    .collect();
                for (coefs, rhs) in &cons {
                    let mut e = LinExpr::new();
                    for (i, &c) in coefs.iter().enumerate() {
                        e = e + (c as f64, vars[i]);
                    }
                    m.add_constraint(e, Cmp::Le, *rhs as f64);
                }
                let mut o = LinExpr::new();
                for (i, &c) in obj.iter().enumerate() {
                    o = o + (c as f64, vars[i]);
                }
                m.set_objective(o);

                let expected = brute_force(&cons, &obj, sense);
                match solve(&m, &MilpConfig::default()) {
                    Ok(sol) => {
                        prop_assert!(sol.stats.proven_optimal);
                        let got = sol.objective.round() as i64;
                        prop_assert_eq!(Some(got), expected,
                            "solver {} vs brute force {:?}", got, expected);
                        prop_assert!(m.check_feasible(&sol.values, 1e-5).is_ok());
                    }
                    Err(MilpError::Infeasible) => {
                        prop_assert_eq!(expected, None, "solver claims infeasible");
                    }
                    Err(e) => prop_assert!(false, "unexpected solver error {e}"),
                }
            }
        }
    }

    #[test]
    fn integral_objective_rounding_still_optimal() {
        // LP bound is fractional; with rounding enabled the solver must not
        // cut off the true optimum.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x) * 2.0 + (3.0, y), Cmp::Le, 12.0);
        m.set_objective(LinExpr::from(x) + (2.0, y));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        // best: y=4, x=0 -> 8
        assert_eq!(s.objective.round() as i64, 8);
    }
}
