//! Test-only reference solver: the **explicit-bound-row** formulation.
//!
//! This is the formulation the bounded-variable simplex replaced: every
//! finite upper bound is materialized as a dense `x ≤ u − lo` row with its
//! own slack column, and all column ranges are infinite, so the bounded
//! machinery degenerates to the classic two-phase primal simplex. It shares
//! the pivot kernel and phase logic with [`crate::simplex`] — the only
//! difference is the standard form — which makes it the differential
//! baseline for the bound-handling rewrite: identical models must produce
//! the same outcome class and the same objective on both paths.
//!
//! Nothing here is exercised by the production solvers. The entry points
//! exist for differential tests and the `milp_scaling` bench's
//! before/after comparison; warm starts are deliberately unavailable (every
//! node LP is a cold solve, as in the pre-rewrite engine's fallback path).

use crate::milp::{MilpConfig, MilpError, MilpSolution};
use crate::model::Model;
use crate::simplex::{cold_solve, std_form, LpOutcome, LpStats};

/// Solves the LP relaxation with explicit bound rows (cold two-phase).
pub fn solve_relaxation(model: &Model) -> LpOutcome {
    solve_relaxation_stats(model).0
}

/// [`solve_relaxation`] with the per-solve work counters.
pub fn solve_relaxation_stats(model: &Model) -> (LpOutcome, LpStats) {
    let sf = std_form(model, true);
    let (outcome, _, stats) = cold_solve(model, &sf);
    (outcome, stats)
}

/// Tableau dimensions `(rows, structural + slack columns)` of the
/// explicit-bound-row standard form: one extra row *and* one extra slack
/// column per finite upper bound.
pub fn tableau_shape(model: &Model) -> (usize, usize) {
    crate::simplex::std_form_shape(model, true)
}

/// Solves the MILP with every node relaxation routed through the
/// explicit-bound-row reference simplex (see
/// [`MilpConfig::reference_lp`]) — same branch-and-bound driver, no warm
/// starts, doubled tableaux.
pub fn solve_milp(model: &Model, cfg: &MilpConfig) -> Result<MilpSolution, MilpError> {
    let cfg = MilpConfig {
        reference_lp: true,
        ..cfg.clone()
    };
    crate::milp::solve(model, &cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Sense, VarKind};

    #[test]
    fn reference_emits_bound_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 4.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 6.0);
        m.set_objective(LinExpr::from(x) + y);
        // one structural row + one bound row for x (y is unbounded above)
        assert_eq!(tableau_shape(&m), (2, 2 + 2));
        assert_eq!(crate::simplex::tableau_shape(&m), (1, 2 + 1));
    }

    mod differential {
        use super::super::*;
        use crate::milp::MilpConfig;
        use crate::simplex;
        use crate::{Cmp, LinExpr, Sense, VarKind};
        use proptest::prelude::*;

        /// Random LP: 3 variables with assorted finite/infinite upper
        /// bounds, up to 4 rows with small integer data.
        fn build_lp(
            bounds: &[(i64, i64); 3],
            cons: &[([i64; 3], i64, u8)],
            obj: &[i64; 3],
            maximize: bool,
        ) -> Model {
            let sense = if maximize {
                Sense::Maximize
            } else {
                Sense::Minimize
            };
            let mut m = Model::new(sense);
            let vars: Vec<_> = bounds
                .iter()
                .enumerate()
                .map(|(i, &(lo, width))| {
                    // width 7 stands in for "no upper bound"
                    let hi = if width == 7 {
                        f64::INFINITY
                    } else {
                        (lo + width) as f64
                    };
                    m.add_var(format!("x{i}"), VarKind::Continuous, lo as f64, hi)
                })
                .collect();
            for (coefs, rhs, cmp) in cons {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                let cmp = match cmp % 3 {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                };
                m.add_constraint(e, cmp, *rhs as f64);
            }
            let mut o = LinExpr::new();
            for (i, &c) in obj.iter().enumerate() {
                o = o + (c as f64, vars[i]);
            }
            m.set_objective(o);
            m
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// The bounded-variable simplex and the explicit-bound-row
            /// reference must agree on the outcome class and (when optimal)
            /// the objective of random LPs.
            #[test]
            fn lp_relaxation_matches_reference(
                bounds in proptest::array::uniform3((-4i64..=4, 0i64..=7)),
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -8i64..=16, 0u8..=8), 1..5),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
            ) {
                let m = build_lp(&bounds, &cons, &obj, maximize);
                let b = simplex::solve_relaxation(&m);
                let r = solve_relaxation(&m);
                match (&b, &r) {
                    (LpOutcome::Optimal(x), LpOutcome::Optimal(y)) => prop_assert!(
                        (x.objective - y.objective).abs() < 1e-6,
                        "objectives diverge: bounded {} vs reference {}",
                        x.objective, y.objective
                    ),
                    (LpOutcome::Infeasible, LpOutcome::Infeasible) => {}
                    (LpOutcome::Unbounded, LpOutcome::Unbounded) => {}
                    (a, b) => prop_assert!(
                        false,
                        "outcome classes diverge: bounded {a:?} vs reference {b:?}"
                    ),
                }
                if let LpOutcome::Optimal(x) = &b {
                    prop_assert!(m.check_feasible(&x.values, 1e-5).is_ok());
                }
            }

            /// Full MILP differential on small random integer programs: the
            /// bounded-variable engine and the reference-LP engine must
            /// agree on feasibility and the optimal objective.
            #[test]
            fn milp_matches_reference(
                cons in proptest::collection::vec(
                    (proptest::array::uniform3(-3i64..=3), -5i64..=20), 1..4),
                obj in proptest::array::uniform3(-4i64..=4),
                maximize in any::<bool>(),
            ) {
                let sense = if maximize { Sense::Maximize } else { Sense::Minimize };
                let mut m = Model::new(sense);
                let vars: Vec<_> = (0..3)
                    .map(|i| m.add_var(format!("x{i}"), VarKind::Integer, 0.0, 4.0))
                    .collect();
                for (coefs, rhs) in &cons {
                    let mut e = LinExpr::new();
                    for (i, &c) in coefs.iter().enumerate() {
                        e = e + (c as f64, vars[i]);
                    }
                    m.add_constraint(e, Cmp::Le, *rhs as f64);
                }
                let mut o = LinExpr::new();
                for (i, &c) in obj.iter().enumerate() {
                    o = o + (c as f64, vars[i]);
                }
                m.set_objective(o);

                // Raw-formulation differential: presolve off, so the
                // tableau-shape invariants are about the standard forms
                // themselves.
                let cfg = MilpConfig {
                    presolve: false,
                    ..MilpConfig::default()
                };
                let bounded = crate::milp::solve(&m, &cfg);
                match (&bounded, solve_milp(&m, &cfg)) {
                    (Ok(a), Ok(b)) => {
                        prop_assert!(a.stats.proven_optimal && b.stats.proven_optimal);
                        prop_assert!(
                            (a.objective - b.objective).abs() < 1e-6,
                            "objectives diverge: bounded {} vs reference {}",
                            a.objective, b.objective
                        );
                        // zero bound rows on the bounded path, one per
                        // finite upper bound on the reference path; both
                        // paths may also carry their own appended cut rows
                        prop_assert_eq!(a.stats.rows, m.num_constraints() + a.stats.cuts_added);
                        prop_assert_eq!(b.stats.rows, m.num_constraints() + b.stats.cuts_added + 3);
                    }
                    (Err(a), Err(b)) => prop_assert_eq!(a.clone(), b),
                    (a, b) => prop_assert!(
                        false,
                        "outcome classes diverge: bounded {:?} vs reference {:?}",
                        a.as_ref().map(|s| s.objective), b.map(|s| s.objective)
                    ),
                }
                // The default path (presolve wired into `milp::solve`) must
                // agree with the presolve-free solve on the objective.
                match (crate::milp::solve(&m, &MilpConfig::default()), bounded) {
                    (Ok(p), Ok(raw)) => prop_assert!(
                        (p.objective - raw.objective).abs() < 1e-6,
                        "presolve changed the objective: {} vs {}",
                        p.objective, raw.objective
                    ),
                    (Err(p), Err(raw)) => prop_assert_eq!(p, raw),
                    (p, raw) => prop_assert!(
                        false,
                        "presolve changed the outcome class: {:?} vs {:?}",
                        p.map(|s| s.objective), raw.map(|s| s.objective)
                    ),
                }
            }
        }
    }

    #[test]
    fn reference_agrees_on_simple_lp() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y));
        let (LpOutcome::Optimal(a), LpOutcome::Optimal(b)) =
            (solve_relaxation(&m), crate::simplex::solve_relaxation(&m))
        else {
            panic!("both paths must be optimal");
        };
        assert!((a.objective - b.objective).abs() < 1e-6);
    }
}
