//! Shared node pool and incumbent store for the parallel branch-and-bound
//! driver.
//!
//! The pool is a best-bound priority queue drained by `std::thread::scope`
//! workers: each worker pops the open node with the most promising dual
//! bound, solves its relaxation, and pushes the two children. Termination
//! is detected with an in-flight counter — the search is over exactly when
//! the queue is empty *and* no worker still holds a node (a held node may
//! yet push children).
//!
//! The incumbent is shared through a mutex plus an atomic snapshot of its
//! score so workers can prune without taking the lock. Incumbent selection
//! is deterministic: a candidate replaces the incumbent only when it is
//! strictly better, and ties on the objective are broken by lexicographic
//! comparison of the value vectors, so the reported optimal objective never
//! depends on the number of worker threads or their interleaving.

use crate::VarId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// The branching step that created a node, kept so the child's relaxation
/// can feed the shared pseudocost estimates: branching variable, the
/// fractional distance the bound moved (`x − ⌊x⌋` down, `⌈x⌉ − x` up), the
/// parent relaxation's raw (un-rounded) score, and the direction.
#[derive(Clone, Copy)]
pub(crate) struct BranchStep {
    pub var: VarId,
    pub frac: f64,
    pub parent_score: f64,
    pub up: bool,
}

/// An open branch-and-bound node: the bound overrides along its path from
/// the root plus ordering metadata. Nodes carry no simplex basis — node
/// relaxations solve cold on purpose (see `milp::process_node`); the warm
/// machinery serves the diving heuristic instead.
pub(crate) struct Node {
    /// `(var, lo, hi)` overrides accumulated from the root.
    pub bounds: Vec<(VarId, f64, f64)>,
    pub depth: usize,
    /// Dual bound inherited from the parent relaxation, normalized so that
    /// larger is always better (the root uses `+∞`).
    pub score: f64,
    /// Branching step that created this node (`None` for the root), for
    /// pseudocost bookkeeping.
    pub branch: Option<BranchStep>,
}

struct Entry {
    node: Node,
    /// Push sequence number; among equal bounds and depths, older nodes
    /// pop first, so the child a worker pushes first (the nearer branching
    /// side — see the child-push order in `milp::process_node`) is the one
    /// explored first.
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher score wins. Score ties (common —
        // both children inherit the parent's bound, and the big-M RS
        // relaxations are flat near the root) break towards the deeper
        // node (best-bound search with depth-first tie-breaking, which
        // dives to an incumbent as fast as plain DFS instead of enumerating
        // a frontier breadth-first), and among equal depths towards the
        // *earlier* sequence number — the max-heap must therefore order
        // seq *descending*, so `other.seq` is compared against `self.seq`.
        // That makes the sibling pushed first (the nearer branching side)
        // pop first, matching the child-push order in `milp`.
        self.node
            .score
            .total_cmp(&other.node.score)
            .then_with(|| self.node.depth.cmp(&other.node.depth))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    /// Nodes popped but not yet reported done.
    in_flight: usize,
    /// Budget exhausted or error: drain immediately.
    stopped: bool,
}

/// Best-bound node pool shared by the workers.
pub(crate) struct NodePool {
    inner: Mutex<Inner>,
    cv: Condvar,
    seq: AtomicU64,
}

impl NodePool {
    pub fn new(root: Node) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(Entry { node: root, seq: 0 });
        NodePool {
            inner: Mutex::new(Inner {
                heap,
                in_flight: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
            seq: AtomicU64::new(1),
        }
    }

    /// Offers a node to the pool. Returns `false` when the pool is stopped
    /// and the node was dropped — the caller must then fold the node's
    /// score into its abandoned-bound accounting, or the dual bound
    /// reported after a budget/deadline stop would be unsound.
    #[must_use]
    pub fn push(&self, node: Node) -> bool {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if inner.stopped {
            return false;
        }
        inner.heap.push(Entry { node, seq });
        drop(inner);
        self.cv.notify_one();
        true
    }

    /// Pops the best open node, blocking while the queue is empty but other
    /// workers still hold nodes. Returns `None` when the search is complete
    /// or stopped. Every `Some` must be matched by a [`NodePool::done`]
    /// call once the node's children (if any) have been pushed.
    pub fn pop(&self) -> Option<Node> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.stopped {
                return None;
            }
            if let Some(e) = inner.heap.pop() {
                inner.in_flight += 1;
                return Some(e.node);
            }
            if inner.in_flight == 0 {
                // Queue empty and nobody can produce more: wake the others.
                self.cv.notify_all();
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Reports a popped node fully processed.
    pub fn done(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.in_flight -= 1;
        if inner.in_flight == 0 && inner.heap.is_empty() {
            drop(inner);
            self.cv.notify_all();
        }
    }

    /// Stops the search: waiting workers wake up and drain. Returns the
    /// best (largest) score among the open nodes being discarded — `-∞`
    /// when the heap was already empty — so the caller can fold it into
    /// the dual bound of an interrupted solve.
    pub fn stop(&self) -> f64 {
        let mut inner = self.inner.lock().unwrap();
        inner.stopped = true;
        let best_open = inner
            .heap
            .peek()
            .map_or(f64::NEG_INFINITY, |e| e.node.score);
        inner.heap.clear();
        drop(inner);
        self.cv.notify_all();
        best_open
    }
}

/// Shared incumbent with an atomic score snapshot for lock-free pruning.
pub(crate) struct Incumbent {
    /// `(objective, values)` of the best integer-feasible point.
    best: Mutex<Option<(f64, Vec<f64>)>>,
    /// Score (`dir · objective`) of the incumbent; `-∞` while empty.
    score_bits: AtomicU64,
}

impl Incumbent {
    pub fn new() -> Self {
        Incumbent {
            best: Mutex::new(None),
            score_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Current incumbent score (larger is better), `-∞` if none.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits.load(Ordering::Relaxed))
    }

    /// Offers a candidate. Replaces the incumbent when strictly better (by
    /// more than `eps`), or on an objective tie when the value vector is
    /// lexicographically smaller — a deterministic, order-independent
    /// selection rule.
    pub fn offer(&self, score: f64, objective: f64, values: Vec<f64>, eps: f64) {
        let mut best = self.best.lock().unwrap();
        let replace = match &*best {
            None => true,
            Some((inc_obj, inc_vals)) => {
                let inc_score = self.score();
                if score > inc_score + eps {
                    true
                } else if score < inc_score - eps {
                    false
                } else {
                    let _ = inc_obj;
                    lex_less(&values, inc_vals)
                }
            }
        };
        if replace {
            self.score_bits.store(score.to_bits(), Ordering::Relaxed);
            *best = Some((objective, values));
        }
    }

    /// Takes the final incumbent.
    pub fn into_best(self) -> Option<(f64, Vec<f64>)> {
        self.best.into_inner().unwrap()
    }
}

/// Shared per-variable pseudocost estimates: the average objective
/// degradation per unit of fractional distance observed when branching a
/// variable up or down. Workers update the store lock-free (CAS loops on
/// the `f64` bit patterns); the estimates steer branching only, so the
/// interleaving of updates can change the tree shape but never the
/// reported optimum (pruning stays strict-improvement-only).
pub(crate) struct Pseudocosts {
    up: Vec<PcCell>,
    down: Vec<PcCell>,
    glob_sum: AtomicU64,
    glob_cnt: AtomicUsize,
}

struct PcCell {
    sum: AtomicU64,
    cnt: AtomicUsize,
}

impl PcCell {
    fn new() -> Self {
        PcCell {
            sum: AtomicU64::new(0.0f64.to_bits()),
            cnt: AtomicUsize::new(0),
        }
    }
}

/// Lock-free `f64` accumulation via compare-and-swap on the bit pattern.
fn atomic_f64_add(cell: &AtomicU64, x: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let new = (f64::from_bits(cur) + x).to_bits();
        match cell.compare_exchange_weak(cur, new, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

impl Pseudocosts {
    pub fn new(num_vars: usize) -> Self {
        Pseudocosts {
            up: (0..num_vars).map(|_| PcCell::new()).collect(),
            down: (0..num_vars).map(|_| PcCell::new()).collect(),
            glob_sum: AtomicU64::new(0.0f64.to_bits()),
            glob_cnt: AtomicUsize::new(0),
        }
    }

    fn cell(&self, v: VarId, up: bool) -> &PcCell {
        if up {
            &self.up[v.index()]
        } else {
            &self.down[v.index()]
        }
    }

    /// Records one observed per-unit degradation for `v` in the given
    /// direction (from a child relaxation or a strong-branching probe).
    pub fn record(&self, v: VarId, up: bool, per_unit: f64) {
        if !per_unit.is_finite() || per_unit < 0.0 {
            return;
        }
        let cell = self.cell(v, up);
        atomic_f64_add(&cell.sum, per_unit);
        cell.cnt.fetch_add(1, Ordering::Relaxed);
        atomic_f64_add(&self.glob_sum, per_unit);
        self.glob_cnt.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations for `v` in the given direction.
    pub fn count(&self, v: VarId, up: bool) -> usize {
        self.cell(v, up).cnt.load(Ordering::Relaxed)
    }

    /// Average per-unit degradation for `v` in the given direction, `None`
    /// while uninitialized.
    pub fn avg(&self, v: VarId, up: bool) -> Option<f64> {
        let cell = self.cell(v, up);
        let cnt = cell.cnt.load(Ordering::Relaxed);
        if cnt == 0 {
            return None;
        }
        Some(f64::from_bits(cell.sum.load(Ordering::Relaxed)) / cnt as f64)
    }

    /// Average per-unit degradation across every variable and direction —
    /// the fallback estimate for directions with no data yet. `1.0` while
    /// the store is completely empty (reduces the product score to plain
    /// fractionality).
    pub fn global_avg(&self) -> f64 {
        let cnt = self.glob_cnt.load(Ordering::Relaxed);
        if cnt == 0 {
            return 1.0;
        }
        let avg = f64::from_bits(self.glob_sum.load(Ordering::Relaxed)) / cnt as f64;
        if avg > 0.0 {
            avg
        } else {
            1.0
        }
    }
}

fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(score: f64) -> Node {
        Node {
            bounds: Vec::new(),
            depth: 0,
            score,
            branch: None,
        }
    }

    #[test]
    fn pool_pops_best_bound_first() {
        let pool = NodePool::new(node(1.0));
        assert!(pool.push(node(5.0)));
        assert!(pool.push(node(3.0)));
        let a = pool.pop().unwrap();
        let b = pool.pop().unwrap();
        let c = pool.pop().unwrap();
        assert_eq!(a.score, 5.0);
        assert_eq!(b.score, 3.0);
        assert_eq!(c.score, 1.0);
        pool.done();
        pool.done();
        pool.done();
        assert!(pool.pop().is_none());
    }

    #[test]
    fn pool_ties_dive_depth_first() {
        // Equal scores: the deeper node pops first (dive), and among equal
        // depths the earlier sequence number wins (push order).
        let pool = NodePool::new(Node {
            depth: 7,
            ..node(2.0)
        });
        assert!(pool.push(Node {
            depth: 8,
            ..node(2.0)
        }));
        assert!(pool.push(Node {
            depth: 7,
            ..node(2.0)
        }));
        assert_eq!(pool.pop().unwrap().depth, 8);
        // among the two depth-7 nodes, the root (seq 0) precedes the pushed
        // one (seq 2)
        assert_eq!(pool.pop().unwrap().depth, 7);
        assert_eq!(pool.pop().unwrap().depth, 7);
    }

    #[test]
    fn siblings_pop_in_push_order() {
        // Regression for the inverted seq tie-break: two children pushed by
        // the same worker share score and depth, and the one pushed first
        // (the branching side nearer the fractional value — see
        // `milp::process_node`) must pop first. The old `Ord` popped the
        // *larger* seq, the exact opposite of both its doc comment and the
        // child-push logic.
        let pool = NodePool::new(node(9.0));
        let root = pool.pop().unwrap();
        drop(root);
        let child = |v: u32| Node {
            bounds: vec![(VarId(v), 0.0, 0.0)],
            depth: 1,
            score: 5.0,
            branch: None,
        };
        assert!(pool.push(child(0))); // near side, pushed first
        assert!(pool.push(child(1))); // far side, pushed second
        pool.done();
        let first = pool.pop().unwrap();
        let second = pool.pop().unwrap();
        assert_eq!(
            first.bounds[0].0,
            VarId(0),
            "near-side child must pop first"
        );
        assert_eq!(second.bounds[0].0, VarId(1));
    }

    #[test]
    fn pseudocosts_accumulate_per_direction() {
        let pc = Pseudocosts::new(3);
        let v = VarId(1);
        assert_eq!(pc.count(v, true), 0);
        assert!(pc.avg(v, true).is_none());
        assert_eq!(pc.global_avg(), 1.0);
        pc.record(v, true, 2.0);
        pc.record(v, true, 4.0);
        pc.record(v, false, 1.0);
        assert_eq!(pc.count(v, true), 2);
        assert_eq!(pc.count(v, false), 1);
        assert!((pc.avg(v, true).unwrap() - 3.0).abs() < 1e-12);
        assert!((pc.avg(v, false).unwrap() - 1.0).abs() < 1e-12);
        assert!((pc.global_avg() - 7.0 / 3.0).abs() < 1e-12);
        // other vars untouched
        assert_eq!(pc.count(VarId(0), true), 0);
        // non-finite and negative observations are dropped
        pc.record(v, true, f64::INFINITY);
        pc.record(v, true, -1.0);
        assert_eq!(pc.count(v, true), 2);
    }

    #[test]
    fn pool_blocks_until_holder_finishes() {
        let pool = NodePool::new(node(0.0));
        let seen = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(n) = pool.pop() {
                        seen.fetch_add(1, Ordering::Relaxed);
                        if n.depth < 3 {
                            assert!(pool.push(Node {
                                depth: n.depth + 1,
                                ..node(0.0)
                            }));
                            assert!(pool.push(Node {
                                depth: n.depth + 1,
                                ..node(0.0)
                            }));
                        }
                        pool.done();
                    }
                });
            }
        });
        // Full binary tree of depth 3: 1 + 2 + 4 + 8 nodes.
        assert_eq!(seen.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn stop_drains_waiters() {
        let pool = NodePool::new(node(0.0));
        let n = pool.pop().unwrap();
        drop(n);
        pool.stop();
        pool.done();
        assert!(pool.pop().is_none());
        assert!(!pool.push(node(1.0)), "push after stop reports the drop");
    }

    #[test]
    fn stop_reports_best_open_score() {
        let pool = NodePool::new(node(2.0));
        assert!(pool.push(node(7.0)));
        assert!(pool.push(node(4.0)));
        assert_eq!(pool.stop(), 7.0);
        // Stopping an empty pool yields -inf (nothing was abandoned).
        let empty = NodePool::new(node(1.0));
        let n = empty.pop().unwrap();
        drop(n);
        assert_eq!(empty.stop(), f64::NEG_INFINITY);
    }

    #[test]
    fn incumbent_keeps_strictly_better_and_lex_ties() {
        let inc = Incumbent::new();
        inc.offer(5.0, 5.0, vec![2.0, 1.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // worse: ignored
        inc.offer(4.0, 4.0, vec![0.0, 0.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // tie with lexicographically smaller values: replaces
        inc.offer(5.0, 5.0, vec![1.0, 2.0], 1e-7);
        let (obj, vals) = inc.into_best().unwrap();
        assert_eq!(obj, 5.0);
        assert_eq!(vals, vec![1.0, 2.0]);
    }
}
