//! Shared node pool and incumbent store for the parallel branch-and-bound
//! driver.
//!
//! The pool is a best-bound priority queue drained by `std::thread::scope`
//! workers: each worker pops the open node with the most promising dual
//! bound, solves its relaxation, and pushes the two children. Termination
//! is detected with an in-flight counter — the search is over exactly when
//! the queue is empty *and* no worker still holds a node (a held node may
//! yet push children).
//!
//! The incumbent is shared through a mutex plus an atomic snapshot of its
//! score so workers can prune without taking the lock. Incumbent selection
//! is deterministic: a candidate replaces the incumbent only when it is
//! strictly better, and ties on the objective are broken by lexicographic
//! comparison of the value vectors, so the reported optimal objective never
//! depends on the number of worker threads or their interleaving.

use crate::VarId;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// An open branch-and-bound node: the bound overrides along its path from
/// the root plus ordering metadata. Nodes carry no simplex basis — node
/// relaxations solve cold on purpose (see `milp::process_node`); the warm
/// machinery serves the diving heuristic instead.
pub(crate) struct Node {
    /// `(var, lo, hi)` overrides accumulated from the root.
    pub bounds: Vec<(VarId, f64, f64)>,
    pub depth: usize,
    /// Dual bound inherited from the parent relaxation, normalized so that
    /// larger is always better (the root uses `+∞`).
    pub score: f64,
}

struct Entry {
    node: Node,
    /// Push sequence number; among equal bounds, older nodes first.
    seq: u64,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher score wins. Score ties (common —
        // both children inherit the parent's bound, and the big-M RS
        // relaxations are flat near the root) break towards the deeper,
        // most recently pushed node: best-bound search with depth-first
        // tie-breaking, which dives to an incumbent as fast as plain DFS
        // instead of enumerating a frontier breadth-first.
        self.node
            .score
            .total_cmp(&other.node.score)
            .then_with(|| self.node.depth.cmp(&other.node.depth))
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

struct Inner {
    heap: BinaryHeap<Entry>,
    /// Nodes popped but not yet reported done.
    in_flight: usize,
    /// Budget exhausted or error: drain immediately.
    stopped: bool,
}

/// Best-bound node pool shared by the workers.
pub(crate) struct NodePool {
    inner: Mutex<Inner>,
    cv: Condvar,
    seq: AtomicU64,
}

impl NodePool {
    pub fn new(root: Node) -> Self {
        let mut heap = BinaryHeap::new();
        heap.push(Entry { node: root, seq: 0 });
        NodePool {
            inner: Mutex::new(Inner {
                heap,
                in_flight: 0,
                stopped: false,
            }),
            cv: Condvar::new(),
            seq: AtomicU64::new(1),
        }
    }

    pub fn push(&self, node: Node) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap();
        if inner.stopped {
            return;
        }
        inner.heap.push(Entry { node, seq });
        drop(inner);
        self.cv.notify_one();
    }

    /// Pops the best open node, blocking while the queue is empty but other
    /// workers still hold nodes. Returns `None` when the search is complete
    /// or stopped. Every `Some` must be matched by a [`NodePool::done`]
    /// call once the node's children (if any) have been pushed.
    pub fn pop(&self) -> Option<Node> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.stopped {
                return None;
            }
            if let Some(e) = inner.heap.pop() {
                inner.in_flight += 1;
                return Some(e.node);
            }
            if inner.in_flight == 0 {
                // Queue empty and nobody can produce more: wake the others.
                self.cv.notify_all();
                return None;
            }
            inner = self.cv.wait(inner).unwrap();
        }
    }

    /// Reports a popped node fully processed.
    pub fn done(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.in_flight -= 1;
        if inner.in_flight == 0 && inner.heap.is_empty() {
            drop(inner);
            self.cv.notify_all();
        }
    }

    /// Stops the search: waiting workers wake up and drain.
    pub fn stop(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.stopped = true;
        inner.heap.clear();
        drop(inner);
        self.cv.notify_all();
    }
}

/// Shared incumbent with an atomic score snapshot for lock-free pruning.
pub(crate) struct Incumbent {
    /// `(objective, values)` of the best integer-feasible point.
    best: Mutex<Option<(f64, Vec<f64>)>>,
    /// Score (`dir · objective`) of the incumbent; `-∞` while empty.
    score_bits: AtomicU64,
}

impl Incumbent {
    pub fn new() -> Self {
        Incumbent {
            best: Mutex::new(None),
            score_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }

    /// Current incumbent score (larger is better), `-∞` if none.
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits.load(Ordering::Relaxed))
    }

    /// Offers a candidate. Replaces the incumbent when strictly better (by
    /// more than `eps`), or on an objective tie when the value vector is
    /// lexicographically smaller — a deterministic, order-independent
    /// selection rule.
    pub fn offer(&self, score: f64, objective: f64, values: Vec<f64>, eps: f64) {
        let mut best = self.best.lock().unwrap();
        let replace = match &*best {
            None => true,
            Some((inc_obj, inc_vals)) => {
                let inc_score = self.score();
                if score > inc_score + eps {
                    true
                } else if score < inc_score - eps {
                    false
                } else {
                    let _ = inc_obj;
                    lex_less(&values, inc_vals)
                }
            }
        };
        if replace {
            self.score_bits.store(score.to_bits(), Ordering::Relaxed);
            *best = Some((objective, values));
        }
    }

    /// Takes the final incumbent.
    pub fn into_best(self) -> Option<(f64, Vec<f64>)> {
        self.best.into_inner().unwrap()
    }
}

fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(score: f64) -> Node {
        Node {
            bounds: Vec::new(),
            depth: 0,
            score,
        }
    }

    #[test]
    fn pool_pops_best_bound_first() {
        let pool = NodePool::new(node(1.0));
        pool.push(node(5.0));
        pool.push(node(3.0));
        let a = pool.pop().unwrap();
        let b = pool.pop().unwrap();
        let c = pool.pop().unwrap();
        assert_eq!(a.score, 5.0);
        assert_eq!(b.score, 3.0);
        assert_eq!(c.score, 1.0);
        pool.done();
        pool.done();
        pool.done();
        assert!(pool.pop().is_none());
    }

    #[test]
    fn pool_ties_dive_depth_first() {
        // Equal scores: the deeper node pops first (dive), and among equal
        // depths the most recently pushed (LIFO, like DFS).
        let pool = NodePool::new(Node {
            depth: 7,
            ..node(2.0)
        });
        pool.push(Node {
            depth: 8,
            ..node(2.0)
        });
        pool.push(Node {
            depth: 7,
            ..node(2.0)
        });
        assert_eq!(pool.pop().unwrap().depth, 8);
        // among the two depth-7 nodes, the pushed one (seq 2) beats the root (seq 0)
        assert_eq!(pool.pop().unwrap().depth, 7);
        assert_eq!(pool.pop().unwrap().depth, 7);
    }

    #[test]
    fn pool_blocks_until_holder_finishes() {
        let pool = NodePool::new(node(0.0));
        let seen = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..3 {
                s.spawn(|| {
                    while let Some(n) = pool.pop() {
                        seen.fetch_add(1, Ordering::Relaxed);
                        if n.depth < 3 {
                            pool.push(Node {
                                depth: n.depth + 1,
                                ..node(0.0)
                            });
                            pool.push(Node {
                                depth: n.depth + 1,
                                ..node(0.0)
                            });
                        }
                        pool.done();
                    }
                });
            }
        });
        // Full binary tree of depth 3: 1 + 2 + 4 + 8 nodes.
        assert_eq!(seen.load(Ordering::Relaxed), 15);
    }

    #[test]
    fn stop_drains_waiters() {
        let pool = NodePool::new(node(0.0));
        let n = pool.pop().unwrap();
        drop(n);
        pool.stop();
        pool.done();
        assert!(pool.pop().is_none());
    }

    #[test]
    fn incumbent_keeps_strictly_better_and_lex_ties() {
        let inc = Incumbent::new();
        inc.offer(5.0, 5.0, vec![2.0, 1.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // worse: ignored
        inc.offer(4.0, 4.0, vec![0.0, 0.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // tie with lexicographically smaller values: replaces
        inc.offer(5.0, 5.0, vec![1.0, 2.0], 1e-7);
        let (obj, vals) = inc.into_best().unwrap();
        assert_eq!(obj, 5.0);
        assert_eq!(vals, vec![1.0, 2.0]);
    }
}
