//! Deterministic frontier, incumbent store, and pseudocost store for the
//! round-based branch-and-bound driver.
//!
//! The search in [`crate::milp`] is organized as bulk-synchronous rounds:
//! the driver pops a fixed-size batch of open nodes from the [`Frontier`],
//! the batch is processed against *frozen* round-start state (possibly in
//! parallel), and the results are committed sequentially in batch order.
//! Nothing in this module is shared mutably between threads, so every
//! structure here is plain data — which is exactly what makes the open
//! frontier, the incumbent, and the pseudocost store serializable into a
//! [`crate::milp::SearchCheckpoint`].
//!
//! Node identity is the **branch path**: the sequence of near/far child
//! choices from the root. The frontier's total order — score, then depth,
//! then lexicographic path — depends only on that identity, never on push
//! timing or pop races, so node counts and traces are identical at any
//! `threads` value. Best-bound ordering is a performance hint here, not a
//! semantic one.

use crate::VarId;
use std::collections::BinaryHeap;

/// The branching step that created a node, kept so the child's relaxation
/// can feed the shared pseudocost estimates: branching variable, the
/// fractional distance the bound moved (`x − ⌊x⌋` down, `⌈x⌉ − x` up), the
/// parent relaxation's raw (un-rounded) score, and the direction.
#[derive(Clone, Copy)]
pub(crate) struct BranchStep {
    pub var: VarId,
    pub frac: f64,
    pub parent_score: f64,
    pub up: bool,
}

/// An open branch-and-bound node: the bound overrides along its path from
/// the root plus ordering metadata. Nodes carry no simplex basis — node
/// relaxations solve cold on purpose (see `milp`); the warm machinery
/// serves the diving heuristic instead.
#[derive(Clone)]
pub(crate) struct Node {
    /// `(var, lo, hi)` overrides accumulated from the root.
    pub bounds: Vec<(VarId, f64, f64)>,
    pub depth: usize,
    /// Dual bound inherited from the parent relaxation, normalized so that
    /// larger is always better (the root uses `+∞`).
    pub score: f64,
    /// Branching step that created this node (`None` for the root), for
    /// pseudocost bookkeeping.
    pub branch: Option<BranchStep>,
    /// Branch path from the root: one element per branching step, `0` for
    /// the near-side child (the one the old push-order tie-break explored
    /// first), `1` for the far side. The path is the node's deterministic
    /// identity — it names the same subproblem in every run — and doubles
    /// as the frontier's final tie-break and the trace-digest input.
    pub path: Vec<u8>,
}

impl Node {
    /// The root subproblem (no overrides, empty path, bound `+∞`).
    pub fn root() -> Node {
        Node {
            bounds: Vec::new(),
            depth: 0,
            score: f64::INFINITY,
            branch: None,
            path: Vec::new(),
        }
    }
}

struct Entry(Node);

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap: higher score wins. Score ties (common —
        // both children inherit the parent's bound, and the big-M RS
        // relaxations are flat near the root) break towards the deeper
        // node (best-bound search with depth-first tie-breaking, which
        // dives to an incumbent as fast as plain DFS instead of enumerating
        // a frontier breadth-first), and among equal depths towards the
        // lexicographically *smaller* branch path — the near-side child
        // (`0`) pops before its far-side sibling (`1`), recovering the old
        // push-order behavior without depending on push order. Paths are
        // unique per node, so the order is total and pop order is a pure
        // function of the frontier's contents.
        self.0
            .score
            .total_cmp(&other.0.score)
            .then_with(|| self.0.depth.cmp(&other.0.depth))
            .then_with(|| other.0.path.cmp(&self.0.path))
    }
}

/// Deterministic best-bound frontier, owned by the round driver. Pop order
/// depends only on the nodes it holds (score, then depth, then branch
/// path) — never on insertion order or thread interleaving.
pub(crate) struct Frontier {
    heap: BinaryHeap<Entry>,
}

impl Frontier {
    pub fn new() -> Self {
        Frontier {
            heap: BinaryHeap::new(),
        }
    }

    /// A frontier holding only the root subproblem.
    pub fn seeded() -> Self {
        let mut f = Frontier::new();
        f.push(Node::root());
        f
    }

    pub fn push(&mut self, node: Node) {
        self.heap.push(Entry(node));
    }

    pub fn pop(&mut self) -> Option<Node> {
        self.heap.pop().map(|e| e.0)
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Best (largest) open score, `-∞` when empty — the open frontier's
    /// contribution to the dual bound of an interrupted search.
    pub fn best_score(&self) -> f64 {
        self.heap.peek().map_or(f64::NEG_INFINITY, |e| e.0.score)
    }

    /// Drains the frontier in pop order (best first) — the canonical node
    /// sequence a checkpoint records.
    pub fn drain_sorted(&mut self) -> Vec<Node> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some(e) = self.heap.pop() {
            out.push(e.0);
        }
        out
    }
}

/// The incumbent store, owned by the round driver and updated only at
/// commit time. Incumbent selection is deterministic: a candidate replaces
/// the incumbent only when it is strictly better, and ties on the objective
/// are broken by lexicographic comparison of the value vectors, so the
/// reported optimum never depends on the number of worker threads.
pub(crate) struct Incumbent {
    /// `(objective, values)` of the best integer-feasible point.
    best: Option<(f64, Vec<f64>)>,
    /// Score (`dir · objective`) of the incumbent; `-∞` while empty.
    score: f64,
}

impl Incumbent {
    pub fn new() -> Self {
        Incumbent {
            best: None,
            score: f64::NEG_INFINITY,
        }
    }

    /// Restores an incumbent from checkpointed parts.
    pub fn from_parts(objective: f64, values: Vec<f64>, score: f64) -> Self {
        Incumbent {
            best: Some((objective, values)),
            score,
        }
    }

    /// Current incumbent score (larger is better), `-∞` if none.
    pub fn score(&self) -> f64 {
        self.score
    }

    /// The incumbent's `(objective, values)`, if any.
    pub fn peek(&self) -> Option<&(f64, Vec<f64>)> {
        self.best.as_ref()
    }

    /// Offers a candidate. Replaces the incumbent when strictly better (by
    /// more than `eps`), or on an objective tie when the value vector is
    /// lexicographically smaller — a deterministic, order-independent
    /// selection rule.
    pub fn offer(&mut self, score: f64, objective: f64, values: Vec<f64>, eps: f64) {
        let replace = match &self.best {
            None => true,
            Some((_, inc_vals)) => {
                if score > self.score + eps {
                    true
                } else if score < self.score - eps {
                    false
                } else {
                    lex_less(&values, inc_vals)
                }
            }
        };
        if replace {
            self.score = score;
            self.best = Some((objective, values));
        }
    }

    /// Takes the final incumbent.
    pub fn into_best(self) -> Option<(f64, Vec<f64>)> {
        self.best
    }
}

/// Per-variable pseudocost estimates: the average objective degradation per
/// unit of fractional distance observed when branching a variable up or
/// down. The store is plain data: workers read a frozen snapshot during a
/// round and log their observations, which the driver replays in batch
/// order at commit time — so the estimates (and therefore the branching
/// decisions they steer) are identical at every thread count, and the
/// whole store serializes into a checkpoint.
#[derive(Clone)]
pub(crate) struct PcStore {
    up_sum: Vec<f64>,
    up_cnt: Vec<usize>,
    down_sum: Vec<f64>,
    down_cnt: Vec<usize>,
    glob_sum: f64,
    glob_cnt: usize,
}

impl PcStore {
    pub fn new(num_vars: usize) -> Self {
        PcStore {
            up_sum: vec![0.0; num_vars],
            up_cnt: vec![0; num_vars],
            down_sum: vec![0.0; num_vars],
            down_cnt: vec![0; num_vars],
            glob_sum: 0.0,
            glob_cnt: 0,
        }
    }

    /// Records one observed per-unit degradation for `v` in the given
    /// direction (from a child relaxation or a strong-branching probe).
    pub fn record(&mut self, v: VarId, up: bool, per_unit: f64) {
        if !per_unit.is_finite() || per_unit < 0.0 {
            return;
        }
        let i = v.index();
        if up {
            self.up_sum[i] += per_unit;
            self.up_cnt[i] += 1;
        } else {
            self.down_sum[i] += per_unit;
            self.down_cnt[i] += 1;
        }
        self.glob_sum += per_unit;
        self.glob_cnt += 1;
    }

    /// Number of observations for `v` in the given direction.
    pub fn count(&self, v: VarId, up: bool) -> usize {
        if up {
            self.up_cnt[v.index()]
        } else {
            self.down_cnt[v.index()]
        }
    }

    /// Average per-unit degradation for `v` in the given direction, `None`
    /// while uninitialized.
    pub fn avg(&self, v: VarId, up: bool) -> Option<f64> {
        let (sum, cnt) = if up {
            (self.up_sum[v.index()], self.up_cnt[v.index()])
        } else {
            (self.down_sum[v.index()], self.down_cnt[v.index()])
        };
        if cnt == 0 {
            return None;
        }
        Some(sum / cnt as f64)
    }

    /// Average per-unit degradation across every variable and direction —
    /// the fallback estimate for directions with no data yet. `1.0` while
    /// the store is completely empty (reduces the product score to plain
    /// fractionality).
    pub fn global_avg(&self) -> f64 {
        if self.glob_cnt == 0 {
            return 1.0;
        }
        let avg = self.glob_sum / self.glob_cnt as f64;
        if avg > 0.0 {
            avg
        } else {
            1.0
        }
    }

    /// Checkpoint serialization parts (sums as `f64`, bit-converted by the
    /// caller).
    #[allow(clippy::type_complexity)]
    pub fn parts(&self) -> (&[f64], &[usize], &[f64], &[usize], f64, usize) {
        (
            &self.up_sum,
            &self.up_cnt,
            &self.down_sum,
            &self.down_cnt,
            self.glob_sum,
            self.glob_cnt,
        )
    }

    /// Rebuilds a store from checkpointed parts.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        up_sum: Vec<f64>,
        up_cnt: Vec<usize>,
        down_sum: Vec<f64>,
        down_cnt: Vec<usize>,
        glob_sum: f64,
        glob_cnt: usize,
    ) -> Self {
        PcStore {
            up_sum,
            up_cnt,
            down_sum,
            down_cnt,
            glob_sum,
            glob_cnt,
        }
    }

    /// Number of variables the store covers.
    #[cfg(test)]
    pub fn num_vars(&self) -> usize {
        self.up_sum.len()
    }
}

/// Deduplicating pool of globally valid cutting planes with activity-based
/// aging.
///
/// The pool is part of the search's deterministic state: cuts are inserted
/// in commit order, kept in insertion order, and serialized into the
/// checkpoint in that order, so a resumed search rebuilds the identical row
/// set. Workers read the pool (via [`CutPool::contains`]) against the
/// frozen round-start snapshot; only the sequential commit loop mutates it.
#[derive(Clone, Default)]
pub(crate) struct CutPool {
    cuts: Vec<crate::cuts::Cut>,
    // lint:allow(D-01) membership-only dedup index; iteration order is never observed, ordered state lives in `cuts`
    keys: std::collections::HashSet<u64>,
    age: Vec<u32>,
}

impl CutPool {
    pub fn new() -> Self {
        CutPool::default()
    }

    /// Inserts a cut unless its content key is already pooled. Returns
    /// whether the cut was actually added.
    pub fn insert(&mut self, cut: crate::cuts::Cut) -> bool {
        if !self.keys.insert(cut.key()) {
            return false;
        }
        self.cuts.push(cut);
        self.age.push(0);
        true
    }

    pub fn contains(&self, key: u64) -> bool {
        self.keys.contains(&key)
    }

    pub fn cuts(&self) -> &[crate::cuts::Cut] {
        &self.cuts
    }

    /// Ages the pool against a relaxation solution: a cut slack at `point`
    /// (not within ~1e-6 of binding) gains a year, a tight cut resets to
    /// zero, and cuts older than `max_age` are retired. Returns the number
    /// retired; the caller rebuilds its models when that is non-zero.
    pub fn age_and_retire(&mut self, point: &[f64], max_age: u32) -> usize {
        for (cut, age) in self.cuts.iter().zip(self.age.iter_mut()) {
            if cut.violation(point) < -1e-6 {
                *age += 1;
            } else {
                *age = 0;
            }
        }
        let before = self.cuts.len();
        let mut keep = self.age.iter().map(|&a| a <= max_age);
        let keys = &mut self.keys;
        self.cuts.retain(|c| {
            let k = keep.next().unwrap();
            if !k {
                keys.remove(&c.key());
            }
            k
        });
        self.age.retain(|&a| a <= max_age);
        before - self.cuts.len()
    }
}

pub(crate) fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            std::cmp::Ordering::Less => return true,
            std::cmp::Ordering::Greater => return false,
            std::cmp::Ordering::Equal => {}
        }
    }
    a.len() < b.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(score: f64) -> Node {
        Node {
            score,
            ..Node::root()
        }
    }

    #[test]
    fn frontier_pops_best_bound_first() {
        let mut f = Frontier::new();
        f.push(node(1.0));
        f.push(node(5.0));
        f.push(node(3.0));
        assert_eq!(f.pop().unwrap().score, 5.0);
        assert_eq!(f.pop().unwrap().score, 3.0);
        assert_eq!(f.pop().unwrap().score, 1.0);
        assert!(f.pop().is_none());
    }

    #[test]
    fn frontier_ties_dive_depth_first() {
        // Equal scores: the deeper node pops first (dive).
        let mut f = Frontier::new();
        f.push(Node {
            depth: 7,
            path: vec![0; 7],
            ..node(2.0)
        });
        f.push(Node {
            depth: 8,
            path: vec![0; 8],
            ..node(2.0)
        });
        f.push(Node {
            depth: 7,
            path: vec![1; 7],
            ..node(2.0)
        });
        assert_eq!(f.pop().unwrap().depth, 8);
        assert_eq!(f.pop().unwrap().depth, 7);
        assert_eq!(f.pop().unwrap().depth, 7);
    }

    #[test]
    fn siblings_pop_in_path_order_regardless_of_push_order() {
        // Two children share score and depth; the near side (path bit 0)
        // must pop first even when pushed second — pop order is a function
        // of node identity, never of insertion order.
        let child = |bit: u8| Node {
            bounds: vec![(VarId(bit as u32), 0.0, 0.0)],
            depth: 1,
            score: 5.0,
            branch: None,
            path: vec![bit],
        };
        for order in [[0u8, 1], [1, 0]] {
            let mut f = Frontier::new();
            f.push(child(order[0]));
            f.push(child(order[1]));
            assert_eq!(
                f.pop().unwrap().path,
                vec![0],
                "near-side child must pop first (push order {order:?})"
            );
            assert_eq!(f.pop().unwrap().path, vec![1]);
        }
    }

    #[test]
    fn drain_sorted_yields_pop_order() {
        let mut f = Frontier::new();
        f.push(node(1.0));
        f.push(node(9.0));
        f.push(node(4.0));
        assert_eq!(f.best_score(), 9.0);
        let scores: Vec<f64> = f.drain_sorted().iter().map(|n| n.score).collect();
        assert_eq!(scores, vec![9.0, 4.0, 1.0]);
        assert_eq!(f.best_score(), f64::NEG_INFINITY);
    }

    #[test]
    fn pseudocosts_accumulate_per_direction() {
        let mut pc = PcStore::new(3);
        let v = VarId(1);
        assert_eq!(pc.count(v, true), 0);
        assert!(pc.avg(v, true).is_none());
        assert_eq!(pc.global_avg(), 1.0);
        pc.record(v, true, 2.0);
        pc.record(v, true, 4.0);
        pc.record(v, false, 1.0);
        assert_eq!(pc.count(v, true), 2);
        assert_eq!(pc.count(v, false), 1);
        assert!((pc.avg(v, true).unwrap() - 3.0).abs() < 1e-12);
        assert!((pc.avg(v, false).unwrap() - 1.0).abs() < 1e-12);
        assert!((pc.global_avg() - 7.0 / 3.0).abs() < 1e-12);
        // other vars untouched
        assert_eq!(pc.count(VarId(0), true), 0);
        // non-finite and negative observations are dropped
        pc.record(v, true, f64::INFINITY);
        pc.record(v, true, -1.0);
        assert_eq!(pc.count(v, true), 2);
    }

    #[test]
    fn pseudocosts_roundtrip_through_parts() {
        let mut pc = PcStore::new(2);
        pc.record(VarId(0), true, 1.5);
        pc.record(VarId(1), false, 0.25);
        let (us, uc, ds, dc, gs, gc) = pc.parts();
        let back = PcStore::from_parts(us.to_vec(), uc.to_vec(), ds.to_vec(), dc.to_vec(), gs, gc);
        assert_eq!(back.count(VarId(0), true), 1);
        assert_eq!(back.avg(VarId(1), false), Some(0.25));
        assert_eq!(back.global_avg(), pc.global_avg());
        assert_eq!(back.num_vars(), 2);
    }

    #[test]
    fn incumbent_keeps_strictly_better_and_lex_ties() {
        let mut inc = Incumbent::new();
        inc.offer(5.0, 5.0, vec![2.0, 1.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // worse: ignored
        inc.offer(4.0, 4.0, vec![0.0, 0.0], 1e-7);
        assert_eq!(inc.score(), 5.0);
        // tie with lexicographically smaller values: replaces
        inc.offer(5.0, 5.0, vec![1.0, 2.0], 1e-7);
        let (obj, vals) = inc.into_best().unwrap();
        assert_eq!(obj, 5.0);
        assert_eq!(vals, vec![1.0, 2.0]);
    }
}
