//! Linear encodings of logical operators (`max`, `⟹`, `⟺`, `∨`).
//!
//! Section 3 of the paper: *"Our intLP formulation use the linear writing of
//! logical formulas (⟹, ⟺, ∨) and the max operator by introducing extra
//! binary variables, as previously described in \[15\]. However, that linear
//! writing requires to bound the domain set of the integer variables."*
//!
//! Every helper here derives its big-M constants from the **finite variable
//! bounds** recorded in the model ([`Model::expr_bounds`]), exactly as the
//! thesis prescribes. `strict_step` is the granularity used to negate an
//! inequality (`¬(x ≥ r)` becomes `x ≤ r − step`); all register-saturation
//! models are integral, so the step is `1`.

use crate::expr::LinExpr;
use crate::model::{Cmp, Model, VarId, VarKind};

/// Scratch buffer for constraint emission: a row is assembled here and
/// handed to [`Model::add_constraint_terms`], which copies it once into
/// the model. Helpers that emit several rows (`max_of`) reuse one buffer
/// across all of them, so emission avoids the `LinExpr` operator chains of
/// the old path, which reallocated the term vector at every `+`/`clone`
/// (several allocations per row; now the stored copy plus one amortized
/// assembly buffer).
#[derive(Default)]
struct RowBuf {
    terms: Vec<(VarId, f64)>,
}

impl RowBuf {
    fn start(&mut self) -> &mut Self {
        self.terms.clear();
        self
    }

    fn push(&mut self, var: VarId, coef: f64) -> &mut Self {
        self.terms.push((var, coef));
        self
    }

    /// Appends `sign · e`'s terms and returns `sign · constant` for the
    /// caller to fold into the right-hand side.
    fn push_expr(&mut self, e: &LinExpr, sign: f64) -> f64 {
        for &(v, c) in &e.terms {
            self.terms.push((v, sign * c));
        }
        sign * e.constant
    }

    /// Emits the assembled row. Rows that collapse to a single variable
    /// (common when a big-M constant is zero: the guard term vanishes and
    /// the condition holds unconditionally) are folded into that variable's
    /// bounds instead of materializing a constraint — the bounded-variable
    /// simplex carries bounds for free, so such rows would only grow the
    /// tableau. See [`Model::add_bound_or_constraint`].
    fn emit(&mut self, m: &mut Model, cmp: Cmp, rhs: f64) {
        m.add_bound_or_constraint(&self.terms, cmp, rhs);
    }
}

/// Adds `k = max(terms)` and returns `k`.
///
/// Encoding: `k ≥ tᵢ` for all `i`; `k ≤ tᵢ + Mᵢ·(1 − yᵢ)` with one binary
/// `yᵢ` per term and `Σ yᵢ = 1` (some term attains the max).
pub fn max_of(m: &mut Model, name: &str, terms: &[LinExpr]) -> VarId {
    assert!(!terms.is_empty(), "max over an empty set");
    let bounds: Vec<(f64, f64)> = terms.iter().map(|t| m.expr_bounds(t)).collect();
    let k_lo = bounds.iter().map(|b| b.0).fold(f64::NEG_INFINITY, f64::max);
    let k_hi = bounds.iter().map(|b| b.1).fold(f64::NEG_INFINITY, f64::max);
    assert!(
        k_lo.is_finite() && k_hi.is_finite(),
        "max_of requires finite term bounds"
    );
    let k = m.add_named_var(name, VarKind::Integer, k_lo, k_hi);

    let mut buf = RowBuf::default();
    let mut selector_sum = LinExpr::new();
    for (i, t) in terms.iter().enumerate() {
        // k >= t_i  <=>  k - t_i >= t_i.constant (terms only)
        let c0 = buf.start().push(k, 1.0).push_expr(t, -1.0);
        buf.emit(m, Cmp::Ge, -c0);
        // k <= t_i + M_i (1 - y_i), M_i = k_hi - lo(t_i)
        let y = m.add_named_var(format!("{name}.y{i}"), VarKind::Binary, 0.0, 1.0);
        let big_m = (k_hi - bounds[i].0).max(0.0);
        let c0 = buf.start().push(k, 1.0).push_expr(t, -1.0);
        buf.push(y, big_m);
        buf.emit(m, Cmp::Le, big_m - c0);
        selector_sum = selector_sum + y;
    }
    // A single-term max degenerates to `y0 = 1`, which folds into the
    // selector's bounds like any other single-variable row.
    m.add_bound_or_constraint(&selector_sum.terms, Cmp::Eq, 1.0);
    k
}

/// `guard = 1 ⟹ expr ≥ rhs`.
pub fn indicator_ge(m: &mut Model, guard: VarId, expr: &LinExpr, rhs: f64) {
    let (lo, _) = m.expr_bounds(expr);
    assert!(lo.is_finite(), "indicator_ge requires a finite lower bound");
    let big_m = (rhs - lo).max(0.0);
    // expr >= rhs - M(1-g)  <=>  expr - M g >= rhs - M
    let mut buf = RowBuf::default();
    let c0 = buf.start().push_expr(expr, 1.0);
    buf.push(guard, -big_m);
    buf.emit(m, Cmp::Ge, rhs - big_m - c0);
}

/// `guard = 1 ⟹ expr ≤ rhs`.
pub fn indicator_le(m: &mut Model, guard: VarId, expr: &LinExpr, rhs: f64) {
    let (_, hi) = m.expr_bounds(expr);
    assert!(hi.is_finite(), "indicator_le requires a finite upper bound");
    let big_m = (hi - rhs).max(0.0);
    // expr <= rhs + M(1-g)  <=>  expr + M g <= rhs + M
    let mut buf = RowBuf::default();
    let c0 = buf.start().push_expr(expr, 1.0);
    buf.push(guard, big_m);
    buf.emit(m, Cmp::Le, rhs + big_m - c0);
}

/// `expr ≥ rhs ⟹ guard = 1`, i.e. `guard = 0 ⟹ expr ≤ rhs − strict_step`.
pub fn reverse_indicator_ge(
    m: &mut Model,
    guard: VarId,
    expr: &LinExpr,
    rhs: f64,
    strict_step: f64,
) {
    indicator_le_on_zero(m, guard, expr, rhs - strict_step);
}

/// `guard = 0 ⟹ expr ≤ rhs`.
pub fn indicator_le_on_zero(m: &mut Model, guard: VarId, expr: &LinExpr, rhs: f64) {
    let (_, hi) = m.expr_bounds(expr);
    assert!(
        hi.is_finite(),
        "indicator_le_on_zero requires a finite upper bound"
    );
    let big_m = (hi - rhs).max(0.0);
    // expr <= rhs + M g
    let mut buf = RowBuf::default();
    let c0 = buf.start().push_expr(expr, 1.0);
    buf.push(guard, -big_m);
    buf.emit(m, Cmp::Le, rhs - c0);
}

/// Adds the disjunction `(a ≥ ra) ∨ (b ≥ rb)` with a fresh selector binary,
/// which is returned (`1` selects the first disjunct).
pub fn disjunction_ge(
    m: &mut Model,
    name: &str,
    a: &LinExpr,
    ra: f64,
    b: &LinExpr,
    rb: f64,
) -> VarId {
    let d = m.add_named_var(name, VarKind::Binary, 0.0, 1.0);
    // d = 1 -> a >= ra
    indicator_ge(m, d, a, ra);
    // d = 0 -> b >= rb: b >= rb - M d  <=>  b + M d >= rb
    let (lo_b, _) = m.expr_bounds(b);
    assert!(lo_b.is_finite());
    let big_m = (rb - lo_b).max(0.0);
    let mut buf = RowBuf::default();
    let c0 = buf.start().push_expr(b, 1.0);
    buf.push(d, big_m);
    buf.emit(m, Cmp::Ge, rb - c0);
    d
}

/// Full equivalence `s = 1 ⟺ ⋀ᵢ (exprᵢ ≥ rhsᵢ)`.
///
/// Forward direction: `s = 1 ⟹ exprᵢ ≥ rhsᵢ` via [`indicator_ge`].
/// Backward direction (the paper's
/// `(P ∧ Q ∧ S) ∨ (¬P ∧ ¬Q) ∨ (¬P ∧ ¬S)` expansion): when `s = 0`, at least
/// one conjunct must *strictly* fail, chosen by fresh selector binaries.
pub fn iff_conjunction_ge(
    m: &mut Model,
    name: &str,
    s: VarId,
    conjuncts: &[(LinExpr, f64)],
    strict_step: f64,
) {
    assert!(!conjuncts.is_empty());
    for (e, r) in conjuncts {
        indicator_ge(m, s, e, *r);
    }
    // s = 0 -> ∨_i (expr_i <= rhs_i - step), via selectors d_i:
    //   d_i = 1 -> expr_i <= rhs_i - step; Σ d_i + s >= 1.
    let mut sum = LinExpr::from(s);
    for (i, (e, r)) in conjuncts.iter().enumerate() {
        let d = m.add_named_var(format!("{name}.d{i}"), VarKind::Binary, 0.0, 1.0);
        indicator_le(m, d, e, *r - strict_step);
        sum = sum + d;
    }
    m.add_constraint(sum, Cmp::Ge, 1.0);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::milp::{solve, MilpConfig};
    use crate::model::Sense;

    #[test]
    fn max_of_two_fixed() {
        // x = 3, y = 7 fixed; k = max(x, y) must be 7 even when minimized.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 3.0, 3.0);
        let y = m.add_var("y", VarKind::Integer, 7.0, 7.0);
        let k = max_of(&mut m, "k", &[LinExpr::from(x), LinExpr::from(y)]);
        m.set_objective(LinExpr::from(k));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[k.index()].round() as i64, 7);
    }

    #[test]
    fn max_of_pushes_down_to_largest_term() {
        // free x,y in [0,10]; minimize k = max(x+2, y) with x >= 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 4.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        let k = max_of(&mut m, "k", &[LinExpr::from(x) + 2.0, LinExpr::from(y)]);
        m.set_objective(LinExpr::from(k));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[k.index()].round() as i64, 6); // x=4 -> 6, y<=6
    }

    #[test]
    fn indicator_ge_binds_only_when_set() {
        // g=1 must force x >= 5; maximize g with x <= 3 -> g must be 0.
        let mut m = Model::new(Sense::Maximize);
        let g = m.add_var("g", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 0.0, 3.0);
        indicator_ge(&mut m, g, &LinExpr::from(x), 5.0);
        m.set_objective(LinExpr::from(g));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[g.index()].round() as i64, 0);

        // with x allowed up to 10 the guard can be 1
        let mut m = Model::new(Sense::Maximize);
        let g = m.add_var("g", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        indicator_ge(&mut m, g, &LinExpr::from(x), 5.0);
        m.set_objective(LinExpr::from(g));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[g.index()].round() as i64, 1);
        assert!(s.values[x.index()] >= 5.0 - 1e-6);
    }

    #[test]
    fn indicator_le_binds_only_when_set() {
        let mut m = Model::new(Sense::Maximize);
        let g = m.add_var("g", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 4.0, 10.0);
        indicator_le(&mut m, g, &LinExpr::from(x), 2.0);
        m.set_objective(LinExpr::from(g) + (0.001, x));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        // g=1 would force x <= 2, impossible with x >= 4
        assert_eq!(s.values[g.index()].round() as i64, 0);
        assert_eq!(s.values[x.index()].round() as i64, 10);
    }

    #[test]
    fn reverse_indicator_forces_guard() {
        // x fixed at 8, rhs 5: x >= 5 so guard must be 1 even if we minimize it.
        let mut m = Model::new(Sense::Minimize);
        let g = m.add_var("g", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 8.0, 8.0);
        reverse_indicator_ge(&mut m, g, &LinExpr::from(x), 5.0, 1.0);
        m.set_objective(LinExpr::from(g));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[g.index()].round() as i64, 1);

        // x fixed at 4 < 5: guard free, minimized to 0.
        let mut m = Model::new(Sense::Minimize);
        let g = m.add_var("g", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 4.0, 4.0);
        reverse_indicator_ge(&mut m, g, &LinExpr::from(x), 5.0, 1.0);
        m.set_objective(LinExpr::from(g));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[g.index()].round() as i64, 0);
    }

    #[test]
    fn disjunction_requires_one_side() {
        // (x >= 6) ∨ (y >= 6) with x,y ∈ [0,10]; minimize x + y -> 6.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        disjunction_ge(&mut m, "d", &LinExpr::from(x), 6.0, &LinExpr::from(y), 6.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.objective.round() as i64, 6);
        assert!(s.values[x.index()] >= 6.0 - 1e-6 || s.values[y.index()] >= 6.0 - 1e-6);
    }

    #[test]
    fn iff_both_directions() {
        // s <=> (x >= 3 ∧ y >= 4), x,y integer in [0,10].
        // Case A: x,y fixed high, minimize s -> s forced to 1.
        let mut m = Model::new(Sense::Minimize);
        let s_var = m.add_var("s", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 5.0, 5.0);
        let y = m.add_var("y", VarKind::Integer, 9.0, 9.0);
        iff_conjunction_ge(
            &mut m,
            "s",
            s_var,
            &[(LinExpr::from(x), 3.0), (LinExpr::from(y), 4.0)],
            1.0,
        );
        m.set_objective(LinExpr::from(s_var));
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(sol.values[s_var.index()].round() as i64, 1);

        // Case B: y too small, maximize s -> s forced to 0.
        let mut m = Model::new(Sense::Maximize);
        let s_var = m.add_var("s", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 5.0, 5.0);
        let y = m.add_var("y", VarKind::Integer, 2.0, 2.0);
        iff_conjunction_ge(
            &mut m,
            "s",
            s_var,
            &[(LinExpr::from(x), 3.0), (LinExpr::from(y), 4.0)],
            1.0,
        );
        m.set_objective(LinExpr::from(s_var));
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(sol.values[s_var.index()].round() as i64, 0);

        // Case C: free x, y; maximize s: solver must raise x and y.
        let mut m = Model::new(Sense::Maximize);
        let s_var = m.add_var("s", VarKind::Binary, 0.0, 1.0);
        let x = m.add_var("x", VarKind::Integer, 0.0, 10.0);
        let y = m.add_var("y", VarKind::Integer, 0.0, 10.0);
        iff_conjunction_ge(
            &mut m,
            "s",
            s_var,
            &[(LinExpr::from(x), 3.0), (LinExpr::from(y), 4.0)],
            1.0,
        );
        m.set_objective(LinExpr::from(s_var));
        let sol = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(sol.values[s_var.index()].round() as i64, 1);
        assert!(sol.values[x.index()] >= 3.0 - 1e-6);
        assert!(sol.values[y.index()] >= 4.0 - 1e-6);
    }

    #[test]
    fn max_of_many_terms() {
        let mut m = Model::new(Sense::Minimize);
        let vals = [2.0, 9.0, 4.0, 9.0, 1.0];
        let vars: Vec<LinExpr> = vals
            .iter()
            .enumerate()
            .map(|(i, &v)| LinExpr::from(m.add_var(format!("v{i}"), VarKind::Integer, v, v)))
            .collect();
        let k = max_of(&mut m, "k", &vars);
        m.set_objective(LinExpr::from(k));
        let s = solve(&m, &MilpConfig::default()).unwrap();
        assert_eq!(s.values[k.index()].round() as i64, 9);
    }
}
