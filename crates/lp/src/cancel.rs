//! Cooperative cancellation: a cheap, cloneable token threaded from the
//! service layer down through branch-and-bound and the simplex pivot
//! loops.
//!
//! A [`Cancel`] is a shared flag plus an optional wall-clock deadline.
//! Long-running loops *poll* it at amortized points ([`Cancel::is_set`] is
//! one relaxed atomic load; [`Cancel::cancelled`] adds a clock read and
//! should be called every few dozen iterations, not per iteration) and
//! unwind cooperatively: solvers return their best incumbent with
//! `proven_optimal: false` instead of failing, the engine keeps its
//! scratch reusable, and the service layer turns the expiry into a typed
//! `timeout` response.
//!
//! The token never expires by default ([`Cancel::new`]), so call sites can
//! thread it unconditionally. For deterministic interruption in tests
//! there is a poll-countdown mode ([`Cancel::after_polls`]) that trips
//! after a fixed number of [`Cancel::cancelled`] observations, independent
//! of wall time.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    /// Remaining [`Cancel::cancelled`] polls before the token trips on its
    /// own; `u64::MAX` disables the countdown (the normal mode).
    polls_left: AtomicU64,
}

/// A shared cancellation token: explicit flag + optional deadline.
///
/// Clones share one underlying state — cancelling any clone cancels them
/// all. The default token never cancels.
///
/// ```
/// use rs_lp::Cancel;
///
/// let c = Cancel::new();
/// assert!(!c.cancelled());
/// c.cancel();
/// assert!(c.is_set() && c.cancelled());
/// ```
#[derive(Clone, Debug)]
pub struct Cancel {
    inner: Arc<Inner>,
}

impl Default for Cancel {
    fn default() -> Self {
        Self::new()
    }
}

impl Cancel {
    fn with_inner(deadline: Option<Instant>, polls: u64) -> Self {
        Cancel {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline,
                polls_left: AtomicU64::new(polls),
            }),
        }
    }

    /// A token that never cancels on its own (it can still be
    /// [`Cancel::cancel`]led explicitly).
    pub fn new() -> Self {
        Self::with_inner(None, u64::MAX)
    }

    /// A token that trips once the wall clock passes `deadline`.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::with_inner(Some(deadline), u64::MAX)
    }

    /// A token that trips `timeout` from now.
    pub fn after(timeout: Duration) -> Self {
        Self::with_deadline(Instant::now() + timeout)
    }

    /// A token that trips after `polls` calls to [`Cancel::cancelled`] —
    /// deterministic interruption for tests and the fault-injection
    /// harness, independent of machine speed.
    pub fn after_polls(polls: u64) -> Self {
        Self::with_inner(None, polls)
    }

    /// Trips the token explicitly (idempotent).
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Relaxed);
    }

    /// The wall-clock deadline, when one was set.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// Whether the token has been *observed* tripped: set explicitly, or
    /// latched by an earlier [`Cancel::cancelled`] poll that saw the
    /// deadline pass. One relaxed atomic load — safe in per-iteration hot
    /// loops.
    pub fn is_set(&self) -> bool {
        self.inner.flag.load(Ordering::Relaxed)
    }

    /// Full poll: flag, deadline, and the test-mode poll countdown. Once
    /// any source trips, the flag latches so later [`Cancel::is_set`]
    /// checks observe it without re-reading the clock.
    pub fn cancelled(&self) -> bool {
        if self.is_set() {
            return true;
        }
        if let Some(dl) = self.inner.deadline {
            if Instant::now() >= dl {
                self.cancel();
                return true;
            }
        }
        let polls = &self.inner.polls_left;
        if polls.load(Ordering::Relaxed) != u64::MAX {
            // Count the poll down; the transition 1 -> 0 trips the token.
            let prev = polls.fetch_sub(1, Ordering::Relaxed);
            if prev <= 1 {
                polls.store(0, Ordering::Relaxed);
                self.cancel();
                return true;
            }
        }
        false
    }
}

/// The earlier of two optional deadlines — how callers merge a request
/// deadline with a solver-local time limit.
pub fn min_deadline(a: Option<Instant>, b: Option<Instant>) -> Option<Instant> {
    match (a, b) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (x, None) | (None, x) => x,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_token_never_cancels() {
        let c = Cancel::new();
        for _ in 0..1000 {
            assert!(!c.cancelled());
        }
        assert!(!c.is_set());
    }

    #[test]
    fn explicit_cancel_is_shared_across_clones() {
        let c = Cancel::new();
        let c2 = c.clone();
        c2.cancel();
        assert!(c.is_set());
        assert!(c.cancelled());
    }

    #[test]
    fn expired_deadline_latches_the_flag() {
        let c = Cancel::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(!c.is_set(), "deadline alone does not set the flag");
        assert!(c.cancelled());
        assert!(c.is_set(), "a cancelled() observation latches");
    }

    #[test]
    fn poll_countdown_trips_deterministically() {
        let c = Cancel::after_polls(3);
        assert!(!c.cancelled());
        assert!(!c.cancelled());
        assert!(c.cancelled(), "third poll trips");
        assert!(c.cancelled(), "stays tripped");
        assert!(c.is_set());
    }

    #[test]
    fn zero_polls_trips_immediately() {
        let c = Cancel::after_polls(0);
        assert!(c.cancelled());
    }

    #[test]
    fn min_deadline_picks_the_earlier() {
        let now = Instant::now();
        let a = now + Duration::from_secs(1);
        let b = now + Duration::from_secs(2);
        assert_eq!(min_deadline(Some(a), Some(b)), Some(a));
        assert_eq!(min_deadline(None, Some(b)), Some(b));
        assert_eq!(min_deadline(None, None), None);
    }
}
