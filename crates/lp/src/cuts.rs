//! Cutting planes for the binary-heavy register-saturation intLPs: lifted
//! cover cuts and clique cuts separated from knapsack relaxations of the
//! model rows.
//!
//! The RS linearizations are dominated by flat big-M rows over binaries,
//! so the LP relaxation's dual bound is weak and branch-and-bound leans
//! almost entirely on incumbent diving to prune. Cuts attack the bound
//! directly. Every cut produced here is **globally valid**: it is derived
//! from one model row plus the *global* variable bounds only — never from
//! a node's tightened bounds — so a cut separated anywhere in the tree can
//! be appended to every node's relaxation (and serialized into a search
//! checkpoint) without restricting the integer feasible set.
//!
//! ## Derivation
//!
//! Each row `Σ aⱼxⱼ ≤ b` (and each `≥`/`=` row, sign-flipped) is first
//! reduced to a pure **0-1 knapsack surrogate** `Σ wⱼzⱼ ≤ c` with `wⱼ > 0`:
//!
//! - a binary with `aⱼ > 0` enters directly (`zⱼ = xⱼ`, `wⱼ = aⱼ`);
//! - a binary with `aⱼ < 0` enters complemented (`zⱼ = 1 − xⱼ`,
//!   `wⱼ = −aⱼ`, `c ← c − aⱼ`);
//! - every other term — continuous, general integer, or a fixed binary —
//!   is folded into `c` at its **minimum contribution over the global
//!   box** (the surrogate relaxation). This is what makes the big-M rows
//!   eligible at all: the M-carrying integer term folds away and the
//!   binary gate structure is exposed.
//!
//! The surrogate is implied by the row, so anything valid for the
//! surrogate's 0-1 solutions is valid for the model. From it we separate:
//!
//! - **lifted (extended) cover cuts**: a minimal cover `C`
//!   (`Σ_C wⱼ > c`) yields `Σ_C zⱼ ≤ |C| − 1`, extended by every item at
//!   least as heavy as the heaviest cover item;
//! - **clique cuts**: a maximal weight-sorted prefix `K` whose two
//!   lightest items already overflow `c` yields `Σ_K zⱼ ≤ 1`.
//!
//! Separation is deterministic end to end — rows in index order, item
//! orderings broken by variable index, a violation-sorted cap with a
//! stable sort — which is what lets the MILP driver commit cut decisions
//! per round and keep its trace digest thread-count invariant.

use crate::model::{Cmp, Model, VarId};
use crate::EPS;

/// A globally valid cutting plane `Σ terms ≤ rhs`, with terms sorted by
/// variable index.
#[derive(Clone, Debug)]
pub struct Cut {
    /// `(variable, coefficient)` pairs, strictly increasing in variable.
    pub terms: Vec<(VarId, f64)>,
    /// Right-hand side of the `≤` inequality.
    pub rhs: f64,
}

impl Cut {
    /// Amount by which `point` violates the cut (`> 0` = violated).
    pub fn violation(&self, point: &[f64]) -> f64 {
        let lhs: f64 = self.terms.iter().map(|&(v, a)| a * point[v.index()]).sum();
        lhs - self.rhs
    }

    /// FNV-1a content key over the canonical term list and rhs — the cut
    /// pool's dedup identity. Terms are kept sorted by variable, so two
    /// derivations of the same inequality collide exactly.
    pub fn key(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
        };
        eat(self.terms.len() as u64);
        for &(v, a) in &self.terms {
            eat(v.0 as u64);
            eat(a.to_bits());
        }
        eat(self.rhs.to_bits());
        h
    }

    /// Appends the cut to `model` as a `≤` row.
    pub fn append_to(&self, model: &mut Model) {
        model.add_constraint_terms(&self.terms, Cmp::Le, self.rhs);
    }
}

/// One item of the 0-1 knapsack surrogate of a row.
#[derive(Clone, Copy)]
struct Item {
    var: VarId,
    /// Surrogate weight (always `> 0`).
    weight: f64,
    /// `z = 1 − x` instead of `z = x`.
    complemented: bool,
    /// Value of `z` at the fractional point being separated.
    z: f64,
}

/// Builds the 0-1 knapsack surrogate `Σ wⱼzⱼ ≤ c` of the row
/// `terms cmp rhs` under the *global* `bounds`. Returns `None` when the
/// row has no useful all-binary surrogate (fewer than two binary items,
/// an unbounded fold, or a capacity the items cannot overflow).
fn knapsack_surrogate(
    terms: &[(VarId, f64)],
    rhs: f64,
    bounds: &[(f64, f64)],
    integral: &[bool],
    point: &[f64],
) -> Option<(Vec<Item>, f64)> {
    let mut c = rhs;
    let mut items: Vec<Item> = Vec::new();
    for &(v, a) in terms {
        if a.abs() <= EPS {
            continue;
        }
        let j = v.index();
        let (lo, hi) = bounds[j];
        let free_binary = integral[j] && lo >= -EPS && hi <= 1.0 + EPS && hi - lo > 0.5;
        if free_binary {
            if a > 0.0 {
                items.push(Item {
                    var: v,
                    weight: a,
                    complemented: false,
                    z: point[j].clamp(0.0, 1.0),
                });
            } else {
                // x = 1 − z:  a·x = a − a·z  →  weight −a on z, capacity −a.
                c -= a;
                items.push(Item {
                    var: v,
                    weight: -a,
                    complemented: true,
                    z: (1.0 - point[j]).clamp(0.0, 1.0),
                });
            }
        } else {
            // Fold at the minimum contribution over the global box.
            let min_contrib = if a > 0.0 { a * lo } else { a * hi };
            if !min_contrib.is_finite() {
                return None;
            }
            c -= min_contrib;
        }
    }
    if items.len() < 2 {
        return None;
    }
    let total: f64 = items.iter().map(|it| it.weight).sum();
    // Capacity must bind: if every item fits simultaneously no cover or
    // clique exists; a negative capacity means the surrogate already
    // proves the row tight through its fold, not worth cutting from.
    if c < -EPS || total <= c + EPS {
        return None;
    }
    Some((items, c))
}

/// Converts a z-space inequality `Σ_{j∈sel} zⱼ ≤ k` back to x-space.
fn to_x_space(items: &[Item], sel: &[usize], k: f64) -> Cut {
    let mut rhs = k;
    let mut terms: Vec<(VarId, f64)> = Vec::with_capacity(sel.len());
    for &i in sel {
        let it = &items[i];
        if it.complemented {
            // z = 1 − x contributes (1 − x): move the 1 to the rhs.
            terms.push((it.var, -1.0));
            rhs -= 1.0;
        } else {
            terms.push((it.var, 1.0));
        }
    }
    terms.sort_by_key(|&(v, _)| v);
    Cut { terms, rhs }
}

/// Separates a lifted (extended) cover cut from one knapsack surrogate at
/// the fractional point already stored in the items. Returns the cut and
/// its z-space violation when one is found.
fn cover_cut(items: &[Item], c: f64) -> Option<(Cut, f64)> {
    // Greedy cover targeting violation: take items by fractional value
    // (descending, variable index ascending on ties) until the weights
    // overflow the capacity.
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .z
            .total_cmp(&items[a].z)
            .then(items[a].var.cmp(&items[b].var))
    });
    let mut cover: Vec<usize> = Vec::new();
    let mut wsum = 0.0;
    for &i in &order {
        cover.push(i);
        wsum += items[i].weight;
        if wsum > c + EPS {
            break;
        }
    }
    if wsum <= c + EPS {
        return None;
    }
    // Minimality: drop items lightest-first while the rest still covers.
    let mut drop_order = cover.clone();
    drop_order.sort_by(|&a, &b| {
        items[a]
            .weight
            .total_cmp(&items[b].weight)
            .then(items[a].var.cmp(&items[b].var))
    });
    for i in drop_order {
        let w = items[i].weight;
        if wsum - w > c + EPS {
            cover.retain(|&x| x != i);
            wsum -= w;
        }
    }
    // Extension (the lifting step): every out-of-cover item at least as
    // heavy as the heaviest cover item joins with coefficient 1 — the
    // classic extended-cover inequality E(C) = C ∪ {j : wⱼ ≥ max_C wᵢ}.
    let w_max = cover
        .iter()
        .map(|&i| items[i].weight)
        .fold(f64::NEG_INFINITY, f64::max);
    let k = (cover.len() - 1) as f64;
    let mut sel = cover.clone();
    for i in 0..items.len() {
        if !cover.contains(&i) && items[i].weight >= w_max - EPS {
            sel.push(i);
        }
    }
    let violation: f64 = sel.iter().map(|&i| items[i].z).sum::<f64>() - k;
    if violation <= 0.0 {
        return None;
    }
    Some((to_x_space(items, &sel, k), violation))
}

/// Separates a clique cut from one knapsack surrogate: the maximal
/// weight-descending prefix whose two lightest members overflow the
/// capacity is pairwise conflicting, so at most one of its items can be 1.
fn clique_cut(items: &[Item], c: f64) -> Option<(Cut, f64)> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by(|&a, &b| {
        items[b]
            .weight
            .total_cmp(&items[a].weight)
            .then(items[a].var.cmp(&items[b].var))
    });
    // Extend the prefix while the two lightest members (the last two, by
    // the descending sort) still exceed the capacity together.
    let mut take = 0usize;
    for len in 2..=order.len() {
        let w_a = items[order[len - 2]].weight;
        let w_b = items[order[len - 1]].weight;
        if w_a + w_b > c + EPS {
            take = len;
        } else {
            break;
        }
    }
    if take < 2 {
        return None;
    }
    let sel: Vec<usize> = order[..take].to_vec();
    let violation: f64 = sel.iter().map(|&i| items[i].z).sum::<f64>() - 1.0;
    if violation <= 0.0 {
        return None;
    }
    Some((to_x_space(items, &sel, 1.0), violation))
}

/// Separates up to `max_cuts` cuts violated by `point` from the rows of
/// `model` under the **global** `bounds`/`integral` maps, skipping cuts
/// whose content key the `known` predicate claims (the active cut pool).
///
/// Fully deterministic: rows are scanned in index order, candidate cuts
/// are capped by a stable sort on violation (descending), and every
/// internal ordering breaks ties by variable index.
pub(crate) fn separate<F: Fn(u64) -> bool>(
    model: &Model,
    bounds: &[(f64, f64)],
    integral: &[bool],
    point: &[f64],
    max_cuts: usize,
    min_violation: f64,
    known: F,
) -> Vec<Cut> {
    let mut cands: Vec<(Cut, f64, u64)> = Vec::new();
    let mut seen_this_round: Vec<u64> = Vec::new();
    let mut offer = |cut: Cut, violation: f64, cands: &mut Vec<(Cut, f64, u64)>| {
        if violation < min_violation {
            return;
        }
        // The z-space violation equals the x-space violation (the
        // complementation shifts both sides identically), but re-check in
        // x-space to be safe against clamping.
        if cut.violation(point) < min_violation {
            return;
        }
        let key = cut.key();
        if known(key) || seen_this_round.contains(&key) {
            return;
        }
        seen_this_round.push(key);
        cands.push((cut, violation, key));
    };
    for ci in 0..model.num_constraints() {
        let (terms, cmp, rhs) = model.constraint(ci);
        // One knapsack view per inequality direction: Le as-is, Ge
        // sign-flipped, Eq both ways.
        let views: &[f64] = match cmp {
            Cmp::Le => &[1.0],
            Cmp::Ge => &[-1.0],
            Cmp::Eq => &[1.0, -1.0],
        };
        for &sign in views {
            let signed: Vec<(VarId, f64)> = terms.iter().map(|&(v, a)| (v, sign * a)).collect();
            let Some((items, c)) = knapsack_surrogate(&signed, sign * rhs, bounds, integral, point)
            else {
                continue;
            };
            if let Some((cut, violation)) = cover_cut(&items, c) {
                offer(cut, violation, &mut cands);
            }
            if let Some((cut, violation)) = clique_cut(&items, c) {
                offer(cut, violation, &mut cands);
            }
        }
    }
    // Most violated first; the generation order above is deterministic
    // and the sort is stable, so the cap is deterministic too.
    cands.sort_by(|a, b| b.1.total_cmp(&a.1));
    cands.truncate(max_cuts);
    cands.into_iter().map(|(cut, _, _)| cut).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::LinExpr;
    use crate::model::{Sense, VarKind};
    use proptest::prelude::*;

    fn maps(m: &Model) -> (Vec<(f64, f64)>, Vec<bool>) {
        let n = m.num_vars();
        (
            (0..n).map(|i| m.bounds(VarId(i as u32))).collect(),
            (0..n).map(|i| m.is_integral(VarId(i as u32))).collect(),
        )
    }

    fn separate_all(m: &Model, point: &[f64]) -> Vec<Cut> {
        let (bounds, integral) = maps(m);
        separate(m, &bounds, &integral, point, 64, 1e-6, |_| false)
    }

    #[test]
    fn cover_cut_on_fractional_knapsack() {
        // 3x + 3y + 3z ≤ 5: any two items overflow, so {x,y,z} pairwise
        // conflict; the point (5/9, 5/9, 5/9) satisfies the row but sums
        // to 5/3 > 1 — both a cover and a clique must catch it.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Binary, 0.0, 1.0);
        let y = m.add_var("y", VarKind::Binary, 0.0, 1.0);
        let z = m.add_var("z", VarKind::Binary, 0.0, 1.0);
        m.add_constraint(LinExpr::from(x) * 3.0 + (3.0, y) + (3.0, z), Cmp::Le, 5.0);
        let p = [5.0 / 9.0, 5.0 / 9.0, 5.0 / 9.0];
        let cuts = separate_all(&m, &p);
        assert!(!cuts.is_empty(), "must separate a cut");
        for cut in &cuts {
            assert!(cut.violation(&p) > 1e-6);
            // Validity on every integer point feasible for the row.
            for mask in 0u32..8 {
                let q = [
                    (mask & 1) as f64,
                    ((mask >> 1) & 1) as f64,
                    ((mask >> 2) & 1) as f64,
                ];
                if 3.0 * (q[0] + q[1] + q[2]) <= 5.0 {
                    assert!(
                        cut.violation(&q) <= 1e-9,
                        "cut {cut:?} cuts off integer point {q:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn big_m_row_yields_complemented_cover() {
        // t ≤ 4a + 4b with t ∈ [0, 8] continuous: folding t at its minimum
        // (0 · nothing — t has positive coefficient 1 on the ≤ side after
        // sign-flip…) — use the direct form −4a − 4b + t ≤ 0. Binaries
        // enter complemented; with t folded at its max on the negative
        // side nothing survives, so use the Ge orientation instead:
        // 4a + 4b − t ≥ 0 with t ≤ 8 forces a + b ≥ … — exercise simply
        // that separation never panics and produces only valid cuts.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var("a", VarKind::Binary, 0.0, 1.0);
        let b = m.add_var("b", VarKind::Binary, 0.0, 1.0);
        let t = m.add_var("t", VarKind::Continuous, 0.0, 8.0);
        m.add_constraint(LinExpr::from(t) + (-4.0, a) + (-4.0, b), Cmp::Le, 0.0);
        m.set_objective(LinExpr::from(t));
        let p = [0.5, 0.5, 4.0];
        for cut in separate_all(&m, &p) {
            for mask in 0u32..4 {
                let av = (mask & 1) as f64;
                let bv = ((mask >> 1) & 1) as f64;
                for tv in [0.0, 4.0, 8.0] {
                    if tv - 4.0 * av - 4.0 * bv <= 1e-9 {
                        assert!(
                            cut.violation(&[av, bv, tv]) <= 1e-9,
                            "cut {cut:?} cuts feasible ({av},{bv},{tv})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn key_is_content_based() {
        let c1 = Cut {
            terms: vec![(VarId(0), 1.0), (VarId(2), -1.0)],
            rhs: 1.0,
        };
        let c2 = Cut {
            terms: vec![(VarId(0), 1.0), (VarId(2), -1.0)],
            rhs: 1.0,
        };
        let c3 = Cut {
            terms: vec![(VarId(0), 1.0), (VarId(2), -1.0)],
            rhs: 2.0,
        };
        assert_eq!(c1.key(), c2.key());
        assert_ne!(c1.key(), c3.key());
    }

    #[test]
    fn separation_is_deterministic() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..6)
            .map(|i| m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0))
            .collect();
        let w = [4.0, 3.0, 5.0, 2.0, 7.0, 1.0];
        let mut e = LinExpr::new();
        for (i, &v) in vars.iter().enumerate() {
            e = e + (w[i], v);
        }
        m.add_constraint(e, Cmp::Le, 10.0);
        let p = [0.6, 0.7, 0.55, 0.9, 0.45, 1.0];
        let a = separate_all(&m, &p);
        let b = separate_all(&m, &p);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.key(), y.key());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every separated cut is satisfied by every integer-feasible
        /// point of a random binary model — global validity, exhaustively
        /// checked over the full 0-1 box.
        #[test]
        fn cuts_never_exclude_integer_points(
            rows in proptest::collection::vec(
                (proptest::array::uniform5(-4i64..=4), -6i64..=12), 1..4),
            point_pct in proptest::array::uniform5(0u32..=100),
        ) {
            let point: Vec<f64> = point_pct.iter().map(|&p| p as f64 / 100.0).collect();
            let mut m = Model::new(Sense::Maximize);
            let vars: Vec<_> = (0..5)
                .map(|i| m.add_var(format!("b{i}"), VarKind::Binary, 0.0, 1.0))
                .collect();
            for (coefs, rhs) in &rows {
                let mut e = LinExpr::new();
                for (i, &c) in coefs.iter().enumerate() {
                    e = e + (c as f64, vars[i]);
                }
                m.add_constraint(e, Cmp::Le, *rhs as f64);
            }
            let cuts = separate_all(&m, &point);
            for mask in 0u32..32 {
                let q: Vec<f64> = (0..5).map(|i| ((mask >> i) & 1) as f64).collect();
                let feasible = rows.iter().all(|(coefs, rhs)| {
                    let lhs: i64 = (0..5)
                        .map(|i| coefs[i] * ((mask >> i) & 1) as i64)
                        .sum();
                    lhs <= *rhs
                });
                if feasible {
                    for cut in &cuts {
                        prop_assert!(
                            cut.violation(&q) <= 1e-9,
                            "cut {:?} excludes feasible integer point {:?}",
                            cut, q
                        );
                    }
                }
            }
        }
    }
}
