//! Two-phase dense primal simplex.
//!
//! The models produced by the register-saturation formulations are small
//! (hundreds of rows and columns), dense-tableau simplex is the simplest
//! correct implementation at that scale, and determinism falls out for free.
//!
//! Conversion to standard form:
//! 1. every variable is shifted by its (finite) lower bound, so all
//!    structural variables are `≥ 0`;
//! 2. finite upper bounds become explicit `x ≤ range` rows;
//! 3. `≤` / `≥` rows receive slack / surplus variables, negative right-hand
//!    sides are negated, and rows without a ready basic column receive an
//!    artificial variable;
//! 4. phase 1 minimizes the artificial sum (infeasible iff it stays
//!    positive), phase 2 optimizes the true objective.
//!
//! Anti-cycling: Dantzig pricing normally, with a permanent switch to
//! Bland's rule after an iteration budget proportional to the tableau size.

use crate::model::{Cmp, Model, Sense};
use crate::EPS;

/// A feasible (optimal) LP solution.
#[derive(Clone, Debug)]
pub struct Solution {
    /// Value per model variable, indexed by `VarId::index()`.
    pub values: Vec<f64>,
    /// Objective value in the model's own sense.
    pub objective: f64,
}

/// Result of an LP relaxation solve.
#[derive(Clone, Debug)]
pub enum LpOutcome {
    /// Proven optimal solution.
    Optimal(Solution),
    /// No feasible point exists.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
}

struct Tableau {
    /// (m + 1) rows × (ncols + 1) columns, row-major; last row is the cost
    /// row, last column the right-hand side.
    t: Vec<f64>,
    m: usize,
    ncols: usize,
    basis: Vec<usize>,
    /// Columns that may enter the basis (artificials are disabled after
    /// phase 1).
    allowed: Vec<bool>,
}

impl Tableau {
    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.t[r * (self.ncols + 1) + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.t[r * (self.ncols + 1) + c] = v;
    }

    #[inline]
    fn rhs(&self, r: usize) -> f64 {
        self.at(r, self.ncols)
    }

    fn pivot(&mut self, row: usize, col: usize) {
        let w = self.ncols + 1;
        let piv = self.at(row, col);
        debug_assert!(piv.abs() > 1e-12, "pivot too small: {piv}");
        // Normalize pivot row.
        let inv = 1.0 / piv;
        let (rs, re) = (row * w, (row + 1) * w);
        for x in &mut self.t[rs..re] {
            *x *= inv;
        }
        // Eliminate the column elsewhere.
        for r in 0..=self.m {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor.abs() <= 1e-12 {
                continue;
            }
            let (or_s, _or_e) = (r * w, (r + 1) * w);
            for j in 0..w {
                let v = self.t[rs + j];
                self.t[or_s + j] -= factor * v;
            }
            // Force exact zero in the pivot column for stability.
            self.t[or_s + col] = 0.0;
        }
        self.basis[row] = col;
    }

    /// Runs the simplex loop on the current cost row (minimization).
    /// Returns `false` if unbounded.
    fn optimize(&mut self) -> bool {
        let iter_budget = 50 * (self.m + self.ncols) + 1000;
        let mut iters = 0usize;
        loop {
            iters += 1;
            let bland = iters > iter_budget;
            // Entering column.
            let mut enter: Option<usize> = None;
            let mut best = -EPS;
            for j in 0..self.ncols {
                if !self.allowed[j] {
                    continue;
                }
                let rc = self.at(self.m, j);
                if bland {
                    if rc < -EPS {
                        enter = Some(j);
                        break;
                    }
                } else if rc < best {
                    best = rc;
                    enter = Some(j);
                }
            }
            let Some(col) = enter else {
                return true; // optimal
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for r in 0..self.m {
                let a = self.at(r, col);
                if a > 1e-9 {
                    let ratio = self.rhs(r) / a;
                    let better = if bland {
                        // Bland: smallest ratio; ties by smallest basis index.
                        ratio < best_ratio - 1e-12
                            || (ratio < best_ratio + 1e-12
                                && leave.is_some_and(|lr| self.basis[r] < self.basis[lr]))
                    } else {
                        // Prefer strictly better ratio; on ties take the
                        // larger pivot element for numerical stability.
                        ratio < best_ratio - 1e-12
                            || (ratio < best_ratio + 1e-12
                                && leave.is_some_and(|lr| a.abs() > self.at(lr, col).abs()))
                    };
                    if leave.is_none() || better {
                        best_ratio = ratio;
                        leave = Some(r);
                    }
                }
            }
            let Some(row) = leave else {
                return false; // unbounded
            };
            self.pivot(row, col);
        }
    }
}

/// Solves the LP relaxation of `model` (integrality is ignored).
pub fn solve_relaxation(model: &Model) -> LpOutcome {
    let n = model.num_vars();

    // Shifted variables: x = lo + x', x' >= 0; remember ranges.
    let lo: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).0)
        .collect();
    let hi: Vec<f64> = (0..n)
        .map(|i| model.bounds(crate::VarId(i as u32)).1)
        .collect();

    // Assemble rows: (coeffs over structural vars, cmp, rhs).
    struct Row {
        coeffs: Vec<(usize, f64)>,
        cmp: Cmp,
        rhs: f64,
    }
    let mut rows: Vec<Row> = Vec::with_capacity(model.num_constraints() + n);
    for c in &model.constraints {
        let mut rhs = c.rhs;
        let mut coeffs = Vec::with_capacity(c.expr.terms.len());
        for &(v, coef) in &c.expr.terms {
            rhs -= coef * lo[v.index()];
            coeffs.push((v.index(), coef));
        }
        rows.push(Row {
            coeffs,
            cmp: c.cmp,
            rhs,
        });
    }
    for i in 0..n {
        if hi[i].is_finite() {
            rows.push(Row {
                coeffs: vec![(i, 1.0)],
                cmp: Cmp::Le,
                rhs: hi[i] - lo[i],
            });
        }
    }

    let m = rows.len();
    // Column layout: [0, n) structural; then one slack/surplus per Le/Ge
    // row; then artificials as needed.
    let mut n_slack = 0usize;
    for r in &rows {
        if !matches!(r.cmp, Cmp::Eq) {
            n_slack += 1;
        }
    }

    // First pass to decide artificials: a row ends with +1 slack and
    // nonnegative rhs iff it can seed the basis.
    // Build a dense matrix incrementally.
    let mut slack_of_row: Vec<Option<(usize, f64)>> = Vec::with_capacity(m);
    {
        let mut next = n;
        for r in &rows {
            match r.cmp {
                Cmp::Le => {
                    slack_of_row.push(Some((next, 1.0)));
                    next += 1;
                }
                Cmp::Ge => {
                    slack_of_row.push(Some((next, -1.0)));
                    next += 1;
                }
                Cmp::Eq => slack_of_row.push(None),
            }
        }
        debug_assert_eq!(next, n + n_slack);
    }

    // Negate rows with negative rhs (flips slack signs too).
    let mut needs_artificial: Vec<bool> = vec![false; m];
    let mut row_sign: Vec<f64> = vec![1.0; m];
    for (i, r) in rows.iter().enumerate() {
        let s = if r.rhs < 0.0 { -1.0 } else { 1.0 };
        row_sign[i] = s;
        let slack_coef = slack_of_row[i].map(|(_, c)| c * s);
        needs_artificial[i] = slack_coef != Some(1.0);
    }
    let n_art = needs_artificial.iter().filter(|&&b| b).count();
    let ncols = n + n_slack + n_art;

    let w = ncols + 1;
    let mut t = vec![0.0f64; (m + 1) * w];
    let mut basis = vec![usize::MAX; m];
    {
        let mut art_next = n + n_slack;
        for (i, r) in rows.iter().enumerate() {
            let s = row_sign[i];
            for &(j, c) in &r.coeffs {
                t[i * w + j] += c * s;
            }
            if let Some((sj, sc)) = slack_of_row[i] {
                t[i * w + sj] = sc * s;
            }
            t[i * w + ncols] = r.rhs * s;
            if needs_artificial[i] {
                t[i * w + art_next] = 1.0;
                basis[i] = art_next;
                art_next += 1;
            } else {
                basis[i] = slack_of_row[i]
                    .expect("row without slack needs artificial")
                    .0;
            }
        }
    }

    let mut tab = Tableau {
        t,
        m,
        ncols,
        basis,
        allowed: vec![true; ncols],
    };

    // Phase 1: minimize the artificial sum. Cost row: 1 on artificials,
    // reduce against the artificial basis rows.
    if n_art > 0 {
        for j in 0..ncols {
            tab.set(m, j, if j >= n + n_slack { 1.0 } else { 0.0 });
        }
        tab.set(m, ncols, 0.0);
        for r in 0..m {
            if tab.basis[r] >= n + n_slack {
                // subtract row r from cost row
                for j in 0..=ncols {
                    let v = tab.at(m, j) - tab.at(r, j);
                    tab.set(m, j, v);
                }
            }
        }
        let ok = tab.optimize();
        debug_assert!(ok, "phase 1 cannot be unbounded");
        let art_sum = -tab.rhs(m);
        if art_sum > 1e-6 {
            return LpOutcome::Infeasible;
        }
        // Drive remaining (degenerate) artificials out of the basis.
        for r in 0..m {
            if tab.basis[r] >= n + n_slack {
                let mut pivot_col = None;
                for j in 0..n + n_slack {
                    if tab.at(r, j).abs() > 1e-9 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                if let Some(j) = pivot_col {
                    tab.pivot(r, j);
                }
                // else: the row is redundant; the artificial stays basic at 0
                // and its column stays disallowed, which is harmless.
            }
        }
        // Artificials may never re-enter.
        for j in n + n_slack..ncols {
            tab.allowed[j] = false;
        }
    }

    // Phase 2 cost row: minimize (negate objective if maximizing), over the
    // shifted variables.
    let minimize_sign = match model.sense() {
        Sense::Minimize => 1.0,
        Sense::Maximize => -1.0,
    };
    for j in 0..=ncols {
        tab.set(m, j, 0.0);
    }
    for &(v, c) in &model.objective.terms {
        let j = v.index();
        let cur = tab.at(m, j);
        tab.set(m, j, cur + minimize_sign * c);
    }
    // Reduce the cost row against the current basis.
    for r in 0..m {
        let b = tab.basis[r];
        let coef = tab.at(m, b);
        if coef.abs() > 1e-12 {
            for j in 0..=ncols {
                let v = tab.at(m, j) - coef * tab.at(r, j);
                tab.set(m, j, v);
            }
            tab.set(m, b, 0.0);
        }
    }
    if !tab.optimize() {
        return LpOutcome::Unbounded;
    }

    // Extract structural values.
    let mut shifted = vec![0.0f64; ncols];
    for r in 0..m {
        let b = tab.basis[r];
        if b < ncols {
            shifted[b] = tab.rhs(r);
        }
    }
    let values: Vec<f64> = (0..n).map(|i| lo[i] + shifted[i]).collect();
    let objective = model.objective.eval(&values);
    LpOutcome::Optimal(Solution { values, objective })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cmp, LinExpr, Model, Sense, VarKind};

    fn optimal(m: &Model) -> Solution {
        match solve_relaxation(m) {
            LpOutcome::Optimal(s) => s,
            other => panic!("expected optimal, got {:?}", other),
        }
    }

    #[test]
    fn simple_max() {
        // max 3x + 2y s.t. x + y <= 4, x <= 2; optimum at (2, 2) = 10
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) * 3.0 + (2.0, y));
        let s = optimal(&m);
        assert!((s.objective - 10.0).abs() < 1e-6, "got {}", s.objective);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn simple_min_with_ge() {
        // min x + y s.t. x + 2y >= 6, 3x + y >= 6 -> (1.2, 2.4), obj 3.6
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + (2.0, y), Cmp::Ge, 6.0);
        m.add_constraint(LinExpr::from(x) * 3.0 + y, Cmp::Ge, 6.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 3.6).abs() < 1e-6, "got {}", s.objective);
    }

    #[test]
    fn equality_constraints() {
        // min x + y s.t. x + y = 5, x - y = 1 -> (3, 2)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Eq, 5.0);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Eq, 1.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 3.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 10.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Le, 3.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Infeasible));
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) - y, Cmp::Le, 1.0);
        m.set_objective(LinExpr::from(x));
        assert!(matches!(solve_relaxation(&m), LpOutcome::Unbounded));
    }

    #[test]
    fn negative_lower_bounds() {
        // min x s.t. x >= -3 with x in [-5, 5]
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var("x", VarKind::Continuous, -5.0, 5.0);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, -3.0);
        m.set_objective(LinExpr::from(x));
        let s = optimal(&m);
        assert!((s.values[0] + 3.0).abs() < 1e-6, "got {}", s.values[0]);
    }

    #[test]
    fn negative_rhs_rows() {
        // x + y >= -1 is vacuous for x,y >= 0; max x + y <= 2
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, f64::INFINITY);
        let y = m.add_var("y", VarKind::Continuous, 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Ge, -1.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 2.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 2.0, 2.0);
        let y = m.add_var("y", VarKind::Continuous, 0.0, 3.0);
        m.add_constraint(LinExpr::from(x) + y, Cmp::Le, 4.0);
        m.set_objective(LinExpr::from(x) + y);
        let s = optimal(&m);
        assert!((s.values[0] - 2.0).abs() < 1e-6);
        assert!((s.values[1] - 2.0).abs() < 1e-6);
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Klee-Minty-like degenerate structure; mostly a termination test.
        let mut m = Model::new(Sense::Maximize);
        let n = 6;
        let vars: Vec<_> = (0..n)
            .map(|i| m.add_var(format!("x{i}"), VarKind::Continuous, 0.0, f64::INFINITY))
            .collect();
        for i in 0..n {
            let mut e = LinExpr::new();
            for (j, item) in vars.iter().enumerate().take(i) {
                e = e + (2.0f64.powi((i - j) as i32 + 1), *item);
            }
            e = e + vars[i];
            m.add_constraint(e, Cmp::Le, 5.0f64.powi(i as i32 + 1));
        }
        let mut obj = LinExpr::new();
        for (j, v) in vars.iter().enumerate() {
            obj = obj + (2.0f64.powi((n - 1 - j) as i32), *v);
        }
        m.set_objective(obj);
        let s = optimal(&m);
        assert!((s.objective - 5.0f64.powi(n as i32)).abs() / 5.0f64.powi(n as i32) < 1e-6);
    }

    #[test]
    fn solution_satisfies_model() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var("x", VarKind::Continuous, 0.0, 7.5);
        let y = m.add_var("y", VarKind::Continuous, 1.0, 4.0);
        let z = m.add_var("z", VarKind::Continuous, -2.0, 2.0);
        m.add_constraint(LinExpr::from(x) + (2.0, y) + (-1.0, z), Cmp::Le, 9.0);
        m.add_constraint(LinExpr::from(y) + z, Cmp::Ge, 1.5);
        m.set_objective(LinExpr::from(x) + y + z);
        let s = optimal(&m);
        assert!(m.check_feasible(&s.values, 1e-5).is_ok());
    }
}
